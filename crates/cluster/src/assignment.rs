//! The persisted user → cluster artifact.

use knn_store::backend::{read_pairs, write_pairs};
use knn_store::{StorageBackend, StreamId};

use crate::ClusterError;

/// A complete user → cluster labeling: one label per user, labels
/// dense in `0..num_clusters` (individual clusters may be empty — the
/// consumers only group by label).
///
/// Persisted through any [`StorageBackend`] as `(user, label)` pair
/// rows under [`StreamId::Clusters`], in ascending user order, so the
/// bytes are identical wherever and however often it is written — the
/// property the engine's cross-backend/shard equivalence suites pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterAssignment {
    labels: Vec<u32>,
    num_clusters: u32,
}

impl ClusterAssignment {
    /// Builds an assignment, validating every label against
    /// `num_clusters`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Config`] if `num_clusters` is zero or
    /// any label is out of range.
    pub fn new(labels: Vec<u32>, num_clusters: u32) -> Result<Self, ClusterError> {
        if num_clusters == 0 {
            return Err(ClusterError::config("num_clusters must be positive"));
        }
        if let Some((u, &c)) = labels.iter().enumerate().find(|(_, &c)| c >= num_clusters) {
            return Err(ClusterError::config(format!(
                "user {u} labeled {c} but num_clusters={num_clusters}"
            )));
        }
        Ok(ClusterAssignment {
            labels,
            num_clusters,
        })
    }

    /// Number of users covered.
    pub fn num_users(&self) -> usize {
        self.labels.len()
    }

    /// The cluster-count bound (labels are `< num_clusters`).
    pub fn num_clusters(&self) -> u32 {
        self.num_clusters
    }

    /// The label of one user.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn label_of(&self, user: u32) -> u32 {
        self.labels[user as usize]
    }

    /// The raw label vector (index = user id).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The member users of every cluster, ascending within each
    /// cluster (index = cluster label; empty clusters yield empty
    /// vectors).
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut members = vec![Vec::new(); self.num_clusters as usize];
        for (u, &c) in self.labels.iter().enumerate() {
            members[c as usize].push(u as u32);
        }
        members
    }

    /// Writes the assignment to `backend` under
    /// [`StreamId::Clusters`].
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn persist(&self, backend: &dyn StorageBackend) -> Result<(), ClusterError> {
        let rows: Vec<(u32, u32)> = self
            .labels
            .iter()
            .enumerate()
            .map(|(u, &c)| (u as u32, c))
            .collect();
        write_pairs(backend, StreamId::Clusters, &rows)?;
        Ok(())
    }

    /// Reads an assignment previously written by
    /// [`persist`](ClusterAssignment::persist), validating it covers
    /// exactly `expected_users` users with labels below
    /// `num_clusters`.
    ///
    /// # Errors
    ///
    /// Returns a storage error if the stream is missing or corrupt,
    /// and [`ClusterError::Config`] on coverage or range violations.
    pub fn load(
        backend: &dyn StorageBackend,
        expected_users: usize,
        num_clusters: u32,
    ) -> Result<Self, ClusterError> {
        let rows = read_pairs(backend, StreamId::Clusters)?;
        if rows.len() != expected_users {
            return Err(ClusterError::config(format!(
                "cluster assignment covers {} users, expected {expected_users}",
                rows.len()
            )));
        }
        let mut labels = vec![u32::MAX; expected_users];
        for (user, label) in rows {
            let slot = labels.get_mut(user as usize).ok_or_else(|| {
                ClusterError::config(format!("cluster row for unknown user {user}"))
            })?;
            if *slot != u32::MAX {
                return Err(ClusterError::config(format!(
                    "cluster assignment names user {user} twice"
                )));
            }
            *slot = label;
        }
        ClusterAssignment::new(labels, num_clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_store::MemBackend;

    #[test]
    fn new_validates_labels() {
        assert!(ClusterAssignment::new(vec![0, 1, 2], 3).is_ok());
        assert!(ClusterAssignment::new(vec![0, 3], 3).is_err());
        assert!(ClusterAssignment::new(vec![], 0).is_err());
    }

    #[test]
    fn members_group_and_sort() {
        let a = ClusterAssignment::new(vec![1, 0, 1, 2], 4).unwrap();
        let members = a.members();
        assert_eq!(members.len(), 4);
        assert_eq!(members[0], vec![1]);
        assert_eq!(members[1], vec![0, 2]);
        assert_eq!(members[2], vec![3]);
        assert!(members[3].is_empty());
        assert_eq!(a.label_of(3), 2);
    }

    #[test]
    fn persist_load_round_trips() {
        let backend = MemBackend::new();
        let a = ClusterAssignment::new(vec![2, 0, 1, 1, 2], 3).unwrap();
        a.persist(&backend).unwrap();
        let b = ClusterAssignment::load(&backend, 5, 3).unwrap();
        assert_eq!(a, b);
        // Wrong expectations are rejected loudly.
        assert!(ClusterAssignment::load(&backend, 4, 3).is_err());
        assert!(ClusterAssignment::load(&backend, 5, 2).is_err());
    }

    #[test]
    fn load_missing_stream_errors() {
        let backend = MemBackend::new();
        assert!(ClusterAssignment::load(&backend, 3, 2).is_err());
    }
}
