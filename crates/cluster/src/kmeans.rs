//! Deterministic seeded mini-batch k-means over sketch embeddings.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use knn_sim::SKETCH_BLOCKS;

/// Mini-batch rounds (Sculley 2010). The embeddings are 32-dim and
/// unit-length, so centroids settle fast; more rounds buy nothing the
/// downstream partitioner can observe.
const ROUNDS: usize = 16;

/// Mini-batch size floor; the batch also scales with `8·k` so every
/// centroid sees a handful of samples per round.
const MIN_BATCH: usize = 256;

fn dist2(a: &[f32; SKETCH_BLOCKS], b: &[f32; SKETCH_BLOCKS]) -> f32 {
    let mut d = 0.0f32;
    for i in 0..SKETCH_BLOCKS {
        let diff = a[i] - b[i];
        d += diff * diff;
    }
    d
}

/// Index of the nearest centroid (strict `<`, so ties resolve to the
/// lowest index — deterministic regardless of float noise).
fn nearest(x: &[f32; SKETCH_BLOCKS], centroids: &[[f32; SKETCH_BLOCKS]]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist2(x, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Labels every embedding with one of `k` clusters. Deterministic in
/// `seed`; single-threaded (thread-count invariance by construction).
///
/// Centroids initialize from `k` seeded-shuffled distinct users, then
/// `ROUNDS` mini-batch rounds pull each centroid toward its sampled
/// members with the per-centroid `1/count` learning rate; a final full
/// pass assigns every user to its nearest centroid.
pub(crate) fn kmeans_labels(embeddings: &[[f32; SKETCH_BLOCKS]], k: usize, seed: u64) -> Vec<u32> {
    let n = embeddings.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n).max(1);
    let mut rng = StdRng::seed_from_u64(seed);

    // Farthest-point init (deterministic k-means++ flavor): a seeded
    // random non-zero first centroid, then each next centroid is the
    // point farthest from all chosen ones (ties → lowest user id).
    // Well-separated clusters each receive exactly one centroid, which
    // is what lets the planted structure survive the mini-batch pass.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    order.sort_by_key(|&u| embeddings[u].iter().all(|&x| x == 0.0));
    let mut centroids: Vec<[f32; SKETCH_BLOCKS]> = vec![embeddings[order[0]]];
    let mut min_d: Vec<f32> = embeddings.iter().map(|x| dist2(x, &centroids[0])).collect();
    while centroids.len() < k {
        let mut far = 0usize;
        let mut far_d = -1.0f32;
        for (u, &d) in min_d.iter().enumerate() {
            if d > far_d {
                far_d = d;
                far = u;
            }
        }
        let next = embeddings[far];
        for (u, d) in min_d.iter_mut().enumerate() {
            *d = d.min(dist2(&embeddings[u], &next));
        }
        centroids.push(next);
    }
    let mut counts = vec![1u64; k];

    let batch = MIN_BATCH.max(8 * k).min(n);
    for _ in 0..ROUNDS {
        for _ in 0..batch {
            let u = rng.random_range(0..n);
            let x = embeddings[u];
            let c = nearest(&x, &centroids);
            counts[c] += 1;
            let lr = 1.0 / counts[c] as f32;
            for i in 0..SKETCH_BLOCKS {
                centroids[c][i] += lr * (x[i] - centroids[c][i]);
            }
        }
    }

    embeddings
        .iter()
        .map(|x| nearest(x, &centroids) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner(block: usize) -> [f32; SKETCH_BLOCKS] {
        let mut v = [0.0; SKETCH_BLOCKS];
        v[block] = 1.0;
        v
    }

    #[test]
    fn separable_points_land_in_separate_clusters() {
        // 30 points at block 0, 30 at block 17: k=2 must split them.
        let mut pts = Vec::new();
        for _ in 0..30 {
            pts.push(corner(0));
        }
        for _ in 0..30 {
            pts.push(corner(17));
        }
        let labels = kmeans_labels(&pts, 2, 42);
        assert!(labels[..30].iter().all(|&c| c == labels[0]));
        assert!(labels[30..].iter().all(|&c| c == labels[30]));
        assert_ne!(labels[0], labels[30]);
    }

    #[test]
    fn deterministic_in_seed() {
        let pts: Vec<[f32; SKETCH_BLOCKS]> = (0..50).map(|i| corner(i % SKETCH_BLOCKS)).collect();
        assert_eq!(kmeans_labels(&pts, 4, 7), kmeans_labels(&pts, 4, 7));
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert!(kmeans_labels(&[], 3, 1).is_empty());
        let one = vec![corner(0)];
        assert_eq!(kmeans_labels(&one, 5, 1), vec![0]);
        // All-identical points: everything in one cluster label range.
        let same = vec![corner(3); 10];
        let labels = kmeans_labels(&same, 3, 2);
        assert_eq!(labels.len(), 10);
        assert!(labels.iter().all(|&c| c < 3));
        // Identical points are indistinguishable: one shared label.
        assert!(labels.windows(2).all(|w| w[0] == w[1]));
    }
}
