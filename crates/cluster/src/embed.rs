//! Profile → dense sketch embedding.

use knn_sim::{ProfileStats, ProfileStore, SKETCH_BLOCKS};

/// A user's dense embedding: the unit-normalized per-block L2 norms of
/// its profile's 32-block [`BoundSketch`](knn_sim::BoundSketch).
///
/// Two users whose ratings mass lands in the same item blocks get
/// nearby embeddings — exactly the signal every similarity measure in
/// the workspace keys on (cosine/Jaccard/overlap all grow with shared
/// item blocks), at 32 floats per user instead of a sparse vector.
/// Normalizing to unit length makes the embedding scale-invariant, so
/// heavy raters and light raters with the same taste cluster together.
///
/// The all-zero profile embeds to the zero vector.
pub fn sketch_embedding(entries: &[(knn_sim::ItemId, f32)]) -> [f32; SKETCH_BLOCKS] {
    let (_, sketch) = ProfileStats::with_sketch_of_entries(entries);
    let mut v = sketch.block_norms;
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// Embeds every user of `profiles`, indexed by user id.
pub fn embed_profiles(profiles: &ProfileStore) -> Vec<[f32; SKETCH_BLOCKS]> {
    (0..profiles.num_users())
        .map(|u| sketch_embedding(profiles.get(knn_graph::UserId::new(u as u32)).entries()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::UserId;
    use knn_sim::Profile;

    #[test]
    fn embedding_is_unit_length_or_zero() {
        let p = Profile::from_unsorted_pairs(vec![(1, 2.0), (70, 1.0), (900, 3.0)]).unwrap();
        let v = sketch_embedding(p.entries());
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        let empty = sketch_embedding(&[]);
        assert!(empty.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scaling_a_profile_does_not_move_its_embedding() {
        let a = Profile::from_unsorted_pairs(vec![(3, 1.0), (200, 2.0)]).unwrap();
        let b = Profile::from_unsorted_pairs(vec![(3, 5.0), (200, 10.0)]).unwrap();
        let va = sketch_embedding(a.entries());
        let vb = sketch_embedding(b.entries());
        for (x, y) in va.iter().zip(vb.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn embed_profiles_covers_every_user() {
        let mut store = ProfileStore::new(3);
        store.set(
            UserId::new(1),
            Profile::from_unsorted_pairs(vec![(7, 1.0)]).unwrap(),
        );
        let embedded = embed_profiles(&store);
        assert_eq!(embedded.len(), 3);
        assert!(embedded[0].iter().all(|&x| x == 0.0));
        assert!(embedded[1].iter().any(|&x| x > 0.0));
    }
}
