//! Locality pre-pass for the out-of-core KNN engine.
//!
//! Hash, random, and greedy partitioners look only at the *interaction
//! graph*, so on realistic workloads nearly every phase-2 tuple crosses
//! partitions and the random `G(0)` spends early iterations scoring
//! hopeless pairs. This crate clusters users by their **profiles**
//! before the engine starts, following the Cluster-and-Conquer
//! observation that a cheap clustering pass shrinks cross-partition
//! traffic and cuts iterations-to-convergence:
//!
//! * [`sketch_embedding`] — a fixed 32-dimensional dense embedding per
//!   user, derived from the per-block L2 norms of the `knn-sim`
//!   [`BoundSketch`](knn_sim::BoundSketch) (no new profile pass: the
//!   same one-shot aggregation phase 4 already uses);
//! * [`ClusterMethod::KMeans`] — deterministic seeded mini-batch
//!   k-means over those embeddings (the quality option);
//! * [`ClusterMethod::RandomBuckets`] — the Cluster-and-Conquer
//!   random-hyperplane bucket trick (the cheap fallback: one pass, no
//!   iteration);
//! * [`ClusterAssignment`] — the persisted artifact (one label per
//!   user), round-tripped through any
//!   [`StorageBackend`](knn_store::StorageBackend) under
//!   [`StreamId::Clusters`](knn_store::StreamId::Clusters) so `resume`
//!   recovers it;
//! * [`cluster_seeded_graph`] — a `G(0)` built from intra-cluster
//!   edges (filled to `K` with seeded random), the alternative to
//!   [`KnnGraph::random_init`](knn_graph::KnnGraph::random_init).
//!
//! Exactness is untouched: clustering only changes *placement and
//! initialization*. The converged graph is the same mathematical
//! object either way; only the route there (spill bytes, cross-shard
//! exchange volume, iteration count) improves. Everything here is
//! single-threaded and seeded, so outputs are identical at every
//! thread count and on every platform — the determinism contract the
//! engine extends over these artifacts.
//!
//! ```
//! use knn_cluster::{cluster_profiles, ClusterMethod};
//! use knn_sim::generators::{clustered_profiles, ClusteredConfig};
//!
//! let (profiles, _) = clustered_profiles(
//!     ClusteredConfig::new(60, 7).with_clusters(3).with_ratings(12, 2),
//! );
//! let assignment =
//!     cluster_profiles(&profiles, ClusterMethod::KMeans, 3, 7).unwrap();
//! assert_eq!(assignment.num_users(), 60);
//! assert!(assignment.labels().iter().all(|&c| c < 3));
//! ```

mod assignment;
mod buckets;
mod embed;
mod error;
mod kmeans;
mod seed_graph;

pub use assignment::ClusterAssignment;
pub use embed::{embed_profiles, sketch_embedding};
pub use error::ClusterError;
pub use seed_graph::cluster_seeded_graph;

use knn_sim::ProfileStore;

/// Selector for the clustering algorithm of the pre-pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClusterMethod {
    /// Deterministic seeded mini-batch k-means over sketch embeddings
    /// (default; best locality).
    #[default]
    KMeans,
    /// Random-hyperplane sign buckets over sketch embeddings — the
    /// Cluster-and-Conquer cheap variant: one pass, no iteration,
    /// coarser clusters.
    RandomBuckets,
}

impl ClusterMethod {
    /// Stable numeric code for metadata persistence.
    pub fn code(self) -> u64 {
        match self {
            ClusterMethod::KMeans => 0,
            ClusterMethod::RandomBuckets => 1,
        }
    }

    /// Inverse of [`code`](ClusterMethod::code).
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(ClusterMethod::KMeans),
            1 => Some(ClusterMethod::RandomBuckets),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClusterMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ClusterMethod::KMeans => "kmeans",
            ClusterMethod::RandomBuckets => "random-buckets",
        })
    }
}

/// The default cluster count for `n` users: `⌈√n⌉`, clamped to
/// `[1, n]` — balanced cluster sizes of about `√n` keep both the
/// k-means pass and the downstream partition packing cheap.
pub fn default_num_clusters(n: usize) -> usize {
    ((n as f64).sqrt().ceil() as usize).clamp(1, n.max(1))
}

/// Runs the clustering pre-pass: embeds every profile into sketch
/// space and labels it with one of `num_clusters` clusters using
/// `method`. Deterministic in `seed`; independent of thread count by
/// construction (the pass is single-threaded — it is a once-per-run
/// setup cost, not an iteration hot path).
///
/// # Errors
///
/// Returns [`ClusterError::Config`] if `num_clusters` is zero or
/// exceeds the number of users.
pub fn cluster_profiles(
    profiles: &ProfileStore,
    method: ClusterMethod,
    num_clusters: usize,
    seed: u64,
) -> Result<ClusterAssignment, ClusterError> {
    let n = profiles.num_users();
    if num_clusters == 0 || num_clusters > n {
        return Err(ClusterError::config(format!(
            "num_clusters must be in 1..={n}, got {num_clusters}"
        )));
    }
    let embeddings = embed_profiles(profiles);
    let labels = match method {
        ClusterMethod::KMeans => kmeans::kmeans_labels(&embeddings, num_clusters, seed),
        ClusterMethod::RandomBuckets => buckets::bucket_labels(&embeddings, num_clusters, seed),
    };
    ClusterAssignment::new(labels, num_clusters as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_sim::generators::{clustered_profiles, ClusteredConfig};

    fn planted(n: usize, clusters: usize, seed: u64) -> (ProfileStore, Vec<u32>) {
        clustered_profiles(
            ClusteredConfig::new(n, seed)
                .with_clusters(clusters)
                .with_ratings(12, 2),
        )
    }

    /// Fraction of user pairs on which `labels` agrees with `truth`
    /// about co-membership (Rand index).
    fn rand_index(labels: &[u32], truth: &[u32]) -> f64 {
        let n = labels.len();
        let mut agree = 0u64;
        let mut total = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                total += 1;
                let same_label = labels[a] == labels[b];
                let same_truth = truth[a] == truth[b];
                if same_label == same_truth {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn kmeans_recovers_planted_clusters() {
        let (profiles, truth) = planted(120, 4, 11);
        let a = cluster_profiles(&profiles, ClusterMethod::KMeans, 4, 11).unwrap();
        let ri = rand_index(a.labels(), &truth);
        assert!(ri > 0.9, "rand index {ri} too low for planted clusters");
    }

    #[test]
    fn methods_are_deterministic_in_seed() {
        let (profiles, _) = planted(80, 3, 5);
        for method in [ClusterMethod::KMeans, ClusterMethod::RandomBuckets] {
            let a = cluster_profiles(&profiles, method, 5, 9).unwrap();
            let b = cluster_profiles(&profiles, method, 5, 9).unwrap();
            assert_eq!(a, b, "{method} not deterministic");
        }
    }

    #[test]
    fn random_buckets_cover_label_range() {
        let (profiles, _) = planted(200, 4, 3);
        let a = cluster_profiles(&profiles, ClusterMethod::RandomBuckets, 8, 3).unwrap();
        assert_eq!(a.num_users(), 200);
        assert!(a.labels().iter().all(|&c| c < 8));
    }

    #[test]
    fn invalid_cluster_counts_rejected() {
        let (profiles, _) = planted(10, 2, 1);
        assert!(cluster_profiles(&profiles, ClusterMethod::KMeans, 0, 1).is_err());
        assert!(cluster_profiles(&profiles, ClusterMethod::KMeans, 11, 1).is_err());
        assert!(cluster_profiles(&profiles, ClusterMethod::KMeans, 10, 1).is_ok());
    }

    #[test]
    fn method_codes_round_trip() {
        for method in [ClusterMethod::KMeans, ClusterMethod::RandomBuckets] {
            assert_eq!(ClusterMethod::from_code(method.code()), Some(method));
            assert!(!method.to_string().is_empty());
        }
        assert_eq!(ClusterMethod::from_code(99), None);
    }

    #[test]
    fn default_num_clusters_is_sane() {
        assert_eq!(default_num_clusters(0), 1);
        assert_eq!(default_num_clusters(1), 1);
        assert_eq!(default_num_clusters(100), 10);
        assert_eq!(default_num_clusters(101), 11);
        assert!(default_num_clusters(2) <= 2);
    }
}
