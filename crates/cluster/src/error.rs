//! Error type of the clustering pre-pass.

use knn_store::StoreError;

/// Errors produced while clustering or (de)serializing assignments.
#[derive(Debug)]
pub enum ClusterError {
    /// An invalid parameter or an inconsistent persisted artifact.
    Config(String),
    /// A storage failure while persisting or loading an assignment.
    Store(StoreError),
}

impl ClusterError {
    pub(crate) fn config(msg: impl Into<String>) -> Self {
        ClusterError::Config(msg.into())
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(msg) => write!(f, "cluster config error: {msg}"),
            ClusterError::Store(e) => write!(f, "cluster storage error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Config(_) => None,
            ClusterError::Store(e) => Some(e),
        }
    }
}

impl From<StoreError> for ClusterError {
    fn from(e: StoreError) -> Self {
        ClusterError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = ClusterError::config("bad k");
        assert!(e.to_string().contains("bad k"));
    }
}
