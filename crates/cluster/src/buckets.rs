//! The Cluster-and-Conquer random-bucket variant: random-hyperplane
//! sign hashing over sketch embeddings. One pass, no iteration —
//! coarser locality than k-means, but essentially free.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use knn_sim::SKETCH_BLOCKS;

/// Labels every embedding with one of `k` buckets: `⌈log₂ k⌉` seeded
/// random hyperplanes turn each embedding into a sign bit-pattern,
/// folded into `0..k`. Users on the same side of every hyperplane
/// (similar sketch direction) share a bucket. Deterministic in `seed`.
pub(crate) fn bucket_labels(embeddings: &[[f32; SKETCH_BLOCKS]], k: usize, seed: u64) -> Vec<u32> {
    let k = k.max(1);
    let bits = usize::BITS - (k - 1).leading_zeros(); // ⌈log₂ k⌉, 0 for k=1
    let mut rng = StdRng::seed_from_u64(seed);
    let planes: Vec<[f32; SKETCH_BLOCKS]> = (0..bits)
        .map(|_| {
            let mut p = [0.0f32; SKETCH_BLOCKS];
            for x in &mut p {
                *x = rng.random_range(-1.0f32..1.0);
            }
            p
        })
        .collect();
    embeddings
        .iter()
        .map(|e| {
            let mut code = 0usize;
            for (b, plane) in planes.iter().enumerate() {
                let dot: f32 = e.iter().zip(plane.iter()).map(|(x, y)| x * y).sum();
                if dot >= 0.0 {
                    code |= 1 << b;
                }
            }
            (code % k) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corner(block: usize, scale: f32) -> [f32; SKETCH_BLOCKS] {
        let mut v = [0.0; SKETCH_BLOCKS];
        v[block] = scale;
        v
    }

    #[test]
    fn identical_embeddings_share_a_bucket() {
        let pts = vec![corner(5, 1.0); 20];
        let labels = bucket_labels(&pts, 8, 3);
        assert!(labels.windows(2).all(|w| w[0] == w[1]));
        assert!(labels[0] < 8);
    }

    #[test]
    fn same_direction_shares_a_bucket() {
        // Hyperplane sign hashing only sees direction, not magnitude.
        let labels = bucket_labels(&[corner(2, 0.1), corner(2, 9.0)], 16, 1);
        assert_eq!(labels[0], labels[1]);
    }

    #[test]
    fn deterministic_and_in_range() {
        let pts: Vec<[f32; SKETCH_BLOCKS]> = (0..64)
            .map(|i| corner(i % SKETCH_BLOCKS, 1.0 + i as f32))
            .collect();
        let a = bucket_labels(&pts, 6, 11);
        let b = bucket_labels(&pts, 6, 11);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c < 6));
        // Different seeds hash differently (with overwhelming odds).
        assert_ne!(a, bucket_labels(&pts, 6, 12));
    }

    #[test]
    fn single_bucket_needs_no_planes() {
        let labels = bucket_labels(&[corner(0, 1.0), corner(9, 1.0)], 1, 5);
        assert_eq!(labels, vec![0, 0]);
    }
}
