//! Cluster-seeded initial graphs: `G(0)` built from intra-cluster
//! edges instead of uniform random ones.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use knn_graph::{KnnGraph, Neighbor, UserId};

use crate::ClusterAssignment;

/// Builds the cluster-seeded initial graph `G(0)`: every vertex
/// receives `min(k, n-1)` distinct out-neighbors — most drawn from its
/// **own cluster** (seeded shuffle), with `⌈k/3⌉` slots reserved for
/// seeded random users from the full population. All edges carry the
/// [`Neighbor::unscored`] sentinel, exactly like
/// [`KnnGraph::random_init`], so iteration 1's real similarities
/// displace them.
///
/// Seeding `G(0)` inside clusters starts NN-Descent's
/// neighbor-of-neighbor walk where the answers actually live, which is
/// what cuts iterations-to-convergence. The reserved explore slots are
/// load-bearing, not a fallback: a *purely* intra-cluster `G(0)` can be
/// disconnected along cluster boundaries, and since iteration only
/// proposes neighbors-of-neighbors, a vertex whose component holds none
/// of its true neighbors could never find them — the random edges keep
/// the walk mixing across clusters (and also top up small clusters).
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn cluster_seeded_graph(assignment: &ClusterAssignment, k: usize, seed: u64) -> KnnGraph {
    assert!(k > 0, "K must be positive");
    let n = assignment.num_users();
    let mut g = KnnGraph::new(n, k);
    if n <= 1 {
        return g;
    }
    let take = k.min(n - 1);
    // Reserve ~a third of the degree for cross-population edges (at
    // least one whenever the vertex has any intra candidates to
    // displace). A third keeps unstructured workloads — where the
    // clusters carry little signal — no slower to converge than a
    // random G(0).
    let explore = k.div_ceil(3).min(take.saturating_sub(1));
    let intra_take = take - explore;
    let members = assignment.members();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<u32> = (0..n as u32).collect();
    let mut local: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        let mut list: Vec<Neighbor> = Vec::with_capacity(take);
        // Intra-cluster first: a fresh seeded shuffle per vertex, like
        // random_init's per-vertex pool shuffle.
        local.clear();
        local.extend_from_slice(&members[assignment.label_of(v) as usize]);
        local.shuffle(&mut rng);
        for &c in local.iter() {
            if c != v {
                list.push(Neighbor::unscored(UserId::new(c)));
                if list.len() == intra_take {
                    break;
                }
            }
        }
        // Explore slots plus top-up (small clusters, or k larger than
        // the cluster) from the whole population.
        if list.len() < take {
            pool.shuffle(&mut rng);
            for &c in pool.iter() {
                if c != v && !list.iter().any(|nb| nb.id.raw() == c) {
                    list.push(Neighbor::unscored(UserId::new(c)));
                    if list.len() == take {
                        break;
                    }
                }
            }
        }
        g.set_neighbors(UserId::new(v), list)
            .expect("cluster-seeded list upholds the KNN invariants");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(labels: Vec<u32>, k: u32) -> ClusterAssignment {
        ClusterAssignment::new(labels, k).unwrap()
    }

    #[test]
    fn respects_knn_invariants() {
        let a = assignment((0..60).map(|u| u % 3).collect(), 3);
        let g = cluster_seeded_graph(&a, 5, 9);
        assert_eq!(g.num_edges(), 60 * 5);
        for v in 0..60u32 {
            let u = UserId::new(v);
            let list = g.neighbors(u);
            assert_eq!(list.len(), 5);
            assert!(list.iter().all(|nb| nb.id != u), "no self-loops");
            assert!(list.iter().all(|nb| nb.is_unscored()));
            let mut ids: Vec<u32> = list.iter().map(|nb| nb.id.raw()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "no duplicates");
        }
    }

    #[test]
    fn prefers_intra_cluster_edges_but_keeps_exploring() {
        // 3 clusters of 20, k=5: explore = ⌈5/3⌉ = 2, so at least 3 of
        // every vertex's 5 edges stay inside its cluster, and across
        // the graph some edge must leave its cluster (the mixing edges
        // that keep G(0) connected).
        let a = assignment((0..60).map(|u| u / 20).collect(), 3);
        let g = cluster_seeded_graph(&a, 5, 4);
        let mut cross_total = 0usize;
        for v in 0..60u32 {
            let cross = g
                .neighbors(UserId::new(v))
                .iter()
                .filter(|nb| a.label_of(nb.id.raw()) != a.label_of(v))
                .count();
            assert!(cross <= 2, "vertex {v} has {cross} cross edges, > explore");
            cross_total += cross;
        }
        assert!(cross_total > 0, "no mixing edges at all");
    }

    #[test]
    fn tops_up_when_cluster_is_too_small() {
        // Cluster 0 = {0}, cluster 1 = everyone else. User 0 has no
        // intra-cluster candidates and must still get k neighbors.
        let mut labels = vec![1u32; 30];
        labels[0] = 0;
        let g = cluster_seeded_graph(&assignment(labels, 2), 4, 8);
        assert_eq!(g.neighbors(UserId::new(0)).len(), 4);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = assignment((0..40).map(|u| u % 4).collect(), 4);
        assert_eq!(
            cluster_seeded_graph(&a, 3, 5),
            cluster_seeded_graph(&a, 3, 5)
        );
        assert_ne!(
            cluster_seeded_graph(&a, 3, 5),
            cluster_seeded_graph(&a, 3, 6)
        );
    }

    #[test]
    fn small_populations_cap_at_n_minus_one() {
        let a = assignment(vec![0, 0, 1], 2);
        let g = cluster_seeded_graph(&a, 10, 1);
        for v in 0..3u32 {
            assert_eq!(g.neighbors(UserId::new(v)).len(), 2);
        }
        let lone = cluster_seeded_graph(&assignment(vec![0], 1), 4, 1);
        assert_eq!(lone.num_edges(), 0);
    }
}
