//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian cursor subset `knn-store`'s codec uses:
//! [`Buf`] (reading, implemented for `&[u8]` and [`Bytes`]), [`BufMut`]
//! (writing, implemented for [`BytesMut`] and `Vec<u8>`), and the two
//! owned buffer types. No shared-arena zero-copy machinery — `Bytes`
//! here is a plain owned vector with a read offset, which is all the
//! record codec needs.

use std::ops::{Deref, DerefMut};

/// Sequential little-endian reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst` (must have at least `n` remaining).
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer, mirroring `bytes::BytesMut`.
///
/// Dereferences to `[u8]` so `&buf` works anywhere a byte slice is
/// expected (e.g. `std::fs::write`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts into an immutable, readable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            inner: self.inner,
            pos: 0,
        }
    }

    /// Consumes the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

/// An immutable byte buffer with a read cursor, mirroring
/// `bytes::Bytes` far enough for [`Buf`] reads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: data.to_vec(),
            pos: 0,
        }
    }

    /// The unread tail.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.inner.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.inner[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(-1.5);
        buf.put_f64_le(std::f64::consts::PI);
        buf.put_slice(b"xyz");

        let mut rd = &buf[..];
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u16_le(), 0xBEEF);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), u64::MAX - 1);
        assert_eq!(rd.get_f32_le(), -1.5);
        assert_eq!(rd.get_f64_le(), std::f64::consts::PI);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!rd.has_remaining());
    }

    #[test]
    fn freeze_reads_from_start() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(42);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 4);
        assert_eq!(b.get_u32_le(), 42);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1, 2];
        rd.get_u32_le();
    }

    #[test]
    fn vec_is_a_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u16_le(513);
        assert_eq!(v, vec![1, 2]);
    }
}
