//! Offline stand-in for the `crossbeam` crate.
//!
//! Supplies [`channel::unbounded`] with crossbeam-channel's semantics
//! as used by the phase-4 worker pool: cloneable multi-producer
//! multi-consumer endpoints, blocking `recv`, and disconnect errors
//! once the opposite side is fully dropped. The implementation is a
//! `Mutex<VecDeque>` + `Condvar` — not lock-free, but correct, and the
//! engine only crosses it once per multi-thousand-tuple chunk.

pub mod channel {
    //! MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value back, like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending side; clone freely across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving side; clone freely across threads.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value, waking one blocked receiver.
        ///
        /// # Errors
        ///
        /// Returns the value back if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }

        /// Non-blocking receive: `None` when currently empty (even if
        /// senders remain).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Blocked receivers must observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_within_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(5).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn work_pool_pattern_drains_fully() {
        // The exact shape phase 4 uses: N workers compete on one task
        // queue and push to one result queue; dropping the main task
        // sender shuts the pool down.
        let (task_tx, task_rx) = channel::unbounded::<u64>();
        let (result_tx, result_rx) = channel::unbounded::<u64>();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let task_rx = task_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok(task) = task_rx.recv() {
                        let _ = result_tx.send(task * 2);
                    }
                });
            }
            drop(task_rx);
            drop(result_tx);
            for i in 0..1000u64 {
                task_tx.send(i).unwrap();
            }
            let mut total = 0u64;
            for _ in 0..1000 {
                total += result_rx.recv().unwrap();
            }
            assert_eq!(total, (0..1000u64).map(|i| i * 2).sum());
            drop(task_tx);
            assert_eq!(result_rx.recv(), Err(channel::RecvError));
        });
    }
}
