//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map`
//! / `prop_filter`, range and tuple strategies, [`collection::vec`],
//! [`bool::ANY`], [`Just`], the `prop_assert*` family, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated
//!   input (`Debug`-formatted) and the RNG seed, but does not minimize.
//! * **Deterministic seeding.** Cases derive from a fixed per-test
//!   seed (hash of the test name), so CI runs are reproducible.

use std::fmt;

pub use config::ProptestConfig;
pub use strategy::{Just, Strategy};

/// Outcome of one generated case: pass, fail with message, or reject
/// (assumption not met — the case is skipped, not failed).
pub type CaseResult = Result<(), CaseError>;

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// A `prop_assert*` failed.
    Fail(String),
    /// A `prop_assume!` was not satisfied.
    Reject,
}

impl CaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }
}

impl fmt::Display for CaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseError::Fail(msg) => write!(f, "{msg}"),
            CaseError::Reject => f.write_str("case rejected by prop_assume!"),
        }
    }
}

pub mod config {
    //! Runner configuration.

    /// The subset of proptest's config the tests use.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Consecutive rejections tolerated before the test errors.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // engine property tests fast while still exploring.
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }
}

pub mod test_runner {
    //! Case generation driver.

    use super::config::ProptestConfig;
    use super::strategy::Strategy;
    use super::CaseError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Runs `config.cases` cases of `body` over values drawn from
    /// `strategy`, panicking with the offending input on failure.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when rejection sampling starves.
    pub fn run<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), CaseError>,
    {
        let mut hasher = DefaultHasher::new();
        test_name.hash(&mut hasher);
        let base_seed = hasher.finish();

        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut draw = 0u64;
        while case < config.cases {
            let seed = base_seed.wrapping_add(draw);
            draw += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            let Some(value) = strategy.generate(&mut rng) else {
                rejects += 1;
                assert!(
                    rejects < config.max_global_rejects,
                    "proptest shim: {test_name} rejected {rejects} inputs in a row \
                     (filter too strict?)"
                );
                continue;
            };
            let rendered = format!("{value:?}");
            match body(value) {
                Ok(()) => {
                    rejects = 0;
                    case += 1;
                }
                Err(CaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects < config.max_global_rejects,
                        "proptest shim: {test_name} rejected {rejects} cases in a row \
                         (prop_assume! too strict?)"
                    );
                }
                Err(CaseError::Fail(msg)) => {
                    panic!(
                        "proptest shim: {test_name} failed at case {case} (seed {seed:#x})\n\
                         input: {rendered}\n{msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A recipe for generating `Value`s.
    ///
    /// `generate` returns `None` when a filter rejects the draw; the
    /// runner then retries with fresh randomness.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value, or `None` on filter rejection.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the
        /// strategy `f` builds from it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values for which `pred` is false; `reason` is kept
        /// for API parity with proptest (the shim does not report it).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                _reason: reason,
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let intermediate = self.inner.generate(rng)?;
            (self.f)(intermediate).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        _reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(&self.pred)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.random_range(self.clone()))
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates `Vec`s whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.random_bool(0.5))
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use super::config::ProptestConfig;
    pub use super::strategy::{Just, Strategy};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::config::ProptestConfig = $cfg;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    &($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::config::ProptestConfig::default()) $($rest)*
        );
    };
}

/// `assert!` that reports the generated input on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::CaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports the generated input on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}: {:?} == {:?} failed",
            format!($($fmt)*), l, r
        );
    }};
}

/// `assert_ne!` that reports the generated input on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::CaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 5u32..10, f in -2.0f32..2.0) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_dependent_values(
            (n, idx) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..n)),
        ) {
            prop_assert!(idx < n);
        }

        #[test]
        fn filters_apply((a, b) in (0u32..10, 0u32..10).prop_filter("distinct", |(a, b)| a != b)) {
            prop_assert_ne!(a, b);
        }

        #[test]
        fn bools_vary(flags in crate::collection::vec(crate::bool::ANY, 64..65)) {
            // 64 fair coins virtually never agree unanimously.
            prop_assert!(flags.iter().any(|&b| b) && !flags.iter().all(|&b| b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_caps_cases(x in 0u64..1000) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_input() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "always_fails",
            &(0u32..10,),
            |(_x,)| Err(crate::CaseError::fail("boom")),
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::test_runner::run(
                &ProptestConfig::with_cases(10),
                "determinism_probe",
                &(0u64..1_000_000,),
                |(x,)| {
                    out.push(x);
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
    }
}
