//! Offline stand-in for the `criterion` crate.
//!
//! Gives the workspace's `#[bench]`-style binaries (declared with
//! `harness = false`) a compile-compatible subset of criterion's API:
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it runs a short warmup,
//! then `sample_size` timed samples, and prints median and mean
//! nanoseconds per iteration — honest numbers with none of the
//! confidence machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup, mirroring criterion's enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// One setup per sample batch.
    SmallInput,
    /// Alias of `SmallInput` in this shim.
    LargeInput,
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Label `"{function}/{parameter}"`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", function.into()),
        }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per iteration, one entry per sample.
    results: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over warmup plus `samples` batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the per-sample iteration count on one warmup run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.results
                .push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Times `routine` with un-timed `setup` before each invocation.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.results.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored; present for API parity.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        let samples = self.sample_size;
        self.criterion.run_one(&label, samples, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        let samples = self.sample_size;
        self.criterion.run_one(&label, samples, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; groups have no shared state here).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Hook for criterion's CLI configuration; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 30,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, 30, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, samples: usize, mut f: F) {
        let mut bencher = Bencher {
            samples,
            results: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.results.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(f64::NAN);
        let mean = if sorted.is_empty() {
            f64::NAN
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        println!(
            "{label}: median {median:.0} ns/iter, mean {mean:.0} ns/iter ({} samples)",
            sorted.len()
        );
    }

    /// Hook for criterion's summary output; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the harness `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion =
                <$crate::Criterion as ::core::default::Default>::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.bench_function("add", |b| b.iter(|| black_box(1u64 + 2)));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(benches, bench_addition);

    #[test]
    fn harness_runs_groups() {
        let mut c = Criterion::default();
        benches(&mut c);
    }

    #[test]
    fn iter_batched_times_every_sample() {
        let mut b = Bencher {
            samples: 4,
            results: Vec::new(),
        };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::PerIteration,
        );
        assert_eq!(setups, 4);
        assert_eq!(b.results.len(), 4);
    }
}
