//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the *subset* of the rand 0.9 API its sources actually use:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::random_range`] over half-open integer and float ranges
//! * [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic
//! in the seed and identical on every platform, which is all the
//! engine's reproducibility contract requires. It is **not** the same
//! stream as the real `rand`'s `StdRng` (ChaCha12), so seeds produce
//! different (but equally valid) random structures.

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample (the shim's analogue of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire's widening-multiply map; the modulo bias over a
                // 128-bit draw is far below anything a test could see.
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let offset = draw % span;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded through SplitMix64 exactly as its authors
    /// recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices, mirroring
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u32> = (0..32)
            .map(|_| StdRng::seed_from_u64(7).random_range(0..u32::MAX))
            .collect();
        let other: Vec<u32> = (0..32).map(|_| c.random_range(0..u32::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.random_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn range_samples_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
