//! Property-based tests for the storage substrate: arbitrary data
//! round-trips exactly, and arbitrary corruption yields typed errors —
//! never panics, never silently wrong data.

use knn_store::record_file::{
    read_meta, read_pairs, read_scored_pairs, read_user_lists, write_meta, write_pairs,
    write_scored_pairs, write_user_lists,
};
use knn_store::{IoStats, RecordKind, StoreError, WorkingDir};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1.0e6f32..1.0e6).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #[test]
    fn pair_files_round_trip(rows in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 0..200)) {
        let wd = WorkingDir::temp("store_prop_pairs").unwrap();
        let stats = IoStats::new();
        let path = wd.tuples_path(0, 0);
        write_pairs(&path, RecordKind::Tuples, &rows, &stats).unwrap();
        prop_assert_eq!(read_pairs(&path, RecordKind::Tuples, &stats).unwrap(), rows);
        wd.destroy().unwrap();
    }

    #[test]
    fn scored_pair_files_round_trip(
        rows in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX, -1.0e6f32..1.0e6), 0..200),
    ) {
        let wd = WorkingDir::temp("store_prop_scored").unwrap();
        let stats = IoStats::new();
        let path = wd.knn_path(0);
        write_scored_pairs(&path, &rows, &stats).unwrap();
        let back = read_scored_pairs(&path, &stats).unwrap();
        prop_assert_eq!(back.len(), rows.len());
        for (a, b) in back.iter().zip(rows.iter()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1, b.1);
            prop_assert_eq!(a.2.to_bits(), b.2.to_bits(), "f32 must round-trip bit-exactly");
        }
        wd.destroy().unwrap();
    }

    #[test]
    fn user_list_files_round_trip(
        rows in proptest::collection::vec(
            (0u32..100_000, proptest::collection::vec((0u32..100_000, finite_f32()), 0..20)),
            0..40,
        ),
    ) {
        let wd = WorkingDir::temp("store_prop_lists").unwrap();
        let stats = IoStats::new();
        let path = wd.profiles_path(3);
        write_user_lists(&path, RecordKind::Profiles, &rows, &stats).unwrap();
        prop_assert_eq!(read_user_lists(&path, RecordKind::Profiles, &stats).unwrap(), rows);
        wd.destroy().unwrap();
    }

    #[test]
    fn meta_files_round_trip(entries in proptest::collection::vec((0u32..u32::MAX, 0u64..u64::MAX), 0..50)) {
        let wd = WorkingDir::temp("store_prop_meta").unwrap();
        let stats = IoStats::new();
        let path = wd.meta_path();
        write_meta(&path, &entries, &stats).unwrap();
        prop_assert_eq!(read_meta(&path, &stats).unwrap(), entries);
        wd.destroy().unwrap();
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error(
        rows in proptest::collection::vec((0u32..1000, 0u32..1000), 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let wd = WorkingDir::temp("store_prop_trunc").unwrap();
        let stats = IoStats::new();
        let path = wd.tuples_path(1, 2);
        write_pairs(&path, RecordKind::Tuples, &rows, &stats).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(keep < bytes.len());
        std::fs::write(&path, &bytes[..keep]).unwrap();
        match read_pairs(&path, RecordKind::Tuples, &stats) {
            Err(StoreError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(_) => prop_assert!(false, "truncated file parsed successfully"),
        }
        wd.destroy().unwrap();
    }

    #[test]
    fn any_single_bit_flip_is_detected(
        rows in proptest::collection::vec((0u32..1000, 0u32..1000), 1..50),
        byte_seed in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let wd = WorkingDir::temp("store_prop_flip").unwrap();
        let stats = IoStats::new();
        let path = wd.tuples_path(4, 4);
        write_pairs(&path, RecordKind::Tuples, &rows, &stats).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = byte_seed % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        // Either the CRC catches it or (if the flip hits the header)
        // the header validation does — silent acceptance is the bug.
        match read_pairs(&path, RecordKind::Tuples, &stats) {
            Err(_) => {}
            Ok(back) => prop_assert!(
                false,
                "bit flip at byte {idx} bit {bit} went undetected ({} rows read)",
                back.len()
            ),
        }
        wd.destroy().unwrap();
    }
}

/// Canonicalizes arbitrary generated rows into what the tuple table
/// feeds the codec: strictly ascending canonical pairs (`u < v`) with
/// meta nibbles OR-combined across duplicates.
fn canonical_rows(raw: Vec<(u32, u32, u8)>) -> Vec<(u32, u32, u8)> {
    let mut map = std::collections::BTreeMap::new();
    for (a, b, meta) in raw {
        if a == b {
            continue;
        }
        *map.entry((a.min(b), a.max(b))).or_insert(0u8) |= meta & 0x0F;
    }
    map.into_iter().map(|((u, v), m)| (u, v, m)).collect()
}

proptest! {
    /// The varint-delta tuple codec round-trips every sorted canonical
    /// row set — empty and single-row runs included, ids across the
    /// full u32 range (0 and u32::MAX reachable), every meta nibble.
    #[test]
    fn tuple_streams_round_trip(
        mut raw in proptest::collection::vec(
            (0u32..u32::MAX, 0u32..u32::MAX, 0u8..16),
            0..120,
        ),
        extremes in proptest::bool::ANY,
    ) {
        use knn_store::tuple_stream::{decode_tuples, encode_tuples};
        if extremes {
            // Pin the id-space corners (0 and u32::MAX) and the full
            // meta nibble into the generated set.
            raw.push((0, u32::MAX, 15));
            raw.push((u32::MAX - 1, u32::MAX, 15));
            raw.push((0, 1, 0));
        }
        let rows = canonical_rows(raw);
        let encoded = encode_tuples(&rows);
        let path = std::path::PathBuf::from("/prop/tuples");
        prop_assert_eq!(decode_tuples(encoded.to_vec(), &path).unwrap(), rows);
    }

    /// Incremental reads see exactly the same rows as the whole-buffer
    /// decode, from any split point.
    #[test]
    fn tuple_stream_reader_is_cursor_equivalent(
        raw in proptest::collection::vec((0u32..5000, 0u32..5000, 0u8..16), 0..80),
    ) {
        use knn_store::tuple_stream::encode_tuples;
        use knn_store::TupleStreamReader;
        let rows = canonical_rows(raw);
        let encoded = encode_tuples(&rows).to_vec();
        let path = std::path::PathBuf::from("/prop/reader");
        let mut reader = TupleStreamReader::new(encoded, &path).unwrap();
        prop_assert_eq!(reader.remaining(), rows.len() as u64);
        let mut streamed = Vec::new();
        while let Some(row) = reader.next().unwrap() {
            streamed.push(row);
        }
        prop_assert_eq!(streamed, rows);
    }

    /// Both backends round-trip tuple streams through the typed
    /// helpers, and spill-run writes feed the spill meter identically.
    #[test]
    fn tuple_streams_round_trip_through_backends(
        raw in proptest::collection::vec((0u32..10_000, 0u32..10_000, 0u8..16), 0..60),
    ) {
        use knn_store::backend::{read_tuples, write_tuples};
        use knn_store::{DiskBackend, MemBackend, StorageBackend, StreamId};
        let rows = canonical_rows(raw);
        let disk = DiskBackend::temp("store_prop_tuple_backend").unwrap();
        let wd = disk.working_dir().unwrap().clone();
        let mem = MemBackend::new();
        for b in [&disk as &dyn StorageBackend, &mem] {
            write_tuples(b, StreamId::TupleBucket(0, 1), &rows).unwrap();
            write_tuples(b, StreamId::TupleRun(0, 1, 7), &rows).unwrap();
            prop_assert_eq!(read_tuples(b, StreamId::TupleBucket(0, 1)).unwrap(), rows.clone());
            prop_assert_eq!(read_tuples(b, StreamId::TupleRun(0, 1, 7)).unwrap(), rows.clone());
            let snap = b.stats().snapshot();
            prop_assert_eq!(snap.spill_runs, 1, "only the TupleRun write is a spill");
            prop_assert!(snap.spill_bytes > 0);
            prop_assert!(snap.spill_bytes < snap.bytes_written);
        }
        prop_assert_eq!(disk.stats().snapshot(), mem.stats().snapshot());
        wd.destroy().unwrap();
    }

    /// The legacy-format decode fixture: a fixed-width pair stream
    /// written by the pre-overhaul codec decodes through the v2 reader
    /// as the same pairs with empty meta nibbles.
    #[test]
    fn legacy_pair_streams_decode_as_tuples(
        raw in proptest::collection::vec((0u32..50_000, 0u32..50_000, 0u8..1), 0..80),
    ) {
        use knn_store::backend::{read_tuples, write_pairs as backend_write_pairs};
        use knn_store::{MemBackend, StreamId};
        let rows = canonical_rows(raw);
        let pairs: Vec<(u32, u32)> = rows.iter().map(|&(u, v, _)| (u, v)).collect();
        let b = MemBackend::new();
        backend_write_pairs(&b, StreamId::TupleRun(2, 3, 0), &pairs).unwrap();
        let decoded = read_tuples(&b, StreamId::TupleRun(2, 3, 0)).unwrap();
        let expected: Vec<(u32, u32, u8)> = pairs.iter().map(|&(u, v)| (u, v, 0)).collect();
        prop_assert_eq!(decoded, expected);
    }
}
