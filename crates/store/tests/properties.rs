//! Property-based tests for the storage substrate: arbitrary data
//! round-trips exactly, and arbitrary corruption yields typed errors —
//! never panics, never silently wrong data.

use knn_store::record_file::{
    read_meta, read_pairs, read_scored_pairs, read_user_lists, write_meta, write_pairs,
    write_scored_pairs, write_user_lists,
};
use knn_store::{IoStats, RecordKind, StoreError, WorkingDir};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1.0e6f32..1.0e6).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #[test]
    fn pair_files_round_trip(rows in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 0..200)) {
        let wd = WorkingDir::temp("store_prop_pairs").unwrap();
        let stats = IoStats::new();
        let path = wd.tuples_path(0, 0);
        write_pairs(&path, RecordKind::Tuples, &rows, &stats).unwrap();
        prop_assert_eq!(read_pairs(&path, RecordKind::Tuples, &stats).unwrap(), rows);
        wd.destroy().unwrap();
    }

    #[test]
    fn scored_pair_files_round_trip(
        rows in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX, -1.0e6f32..1.0e6), 0..200),
    ) {
        let wd = WorkingDir::temp("store_prop_scored").unwrap();
        let stats = IoStats::new();
        let path = wd.knn_path(0);
        write_scored_pairs(&path, &rows, &stats).unwrap();
        let back = read_scored_pairs(&path, &stats).unwrap();
        prop_assert_eq!(back.len(), rows.len());
        for (a, b) in back.iter().zip(rows.iter()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1, b.1);
            prop_assert_eq!(a.2.to_bits(), b.2.to_bits(), "f32 must round-trip bit-exactly");
        }
        wd.destroy().unwrap();
    }

    #[test]
    fn user_list_files_round_trip(
        rows in proptest::collection::vec(
            (0u32..100_000, proptest::collection::vec((0u32..100_000, finite_f32()), 0..20)),
            0..40,
        ),
    ) {
        let wd = WorkingDir::temp("store_prop_lists").unwrap();
        let stats = IoStats::new();
        let path = wd.profiles_path(3);
        write_user_lists(&path, RecordKind::Profiles, &rows, &stats).unwrap();
        prop_assert_eq!(read_user_lists(&path, RecordKind::Profiles, &stats).unwrap(), rows);
        wd.destroy().unwrap();
    }

    #[test]
    fn meta_files_round_trip(entries in proptest::collection::vec((0u32..u32::MAX, 0u64..u64::MAX), 0..50)) {
        let wd = WorkingDir::temp("store_prop_meta").unwrap();
        let stats = IoStats::new();
        let path = wd.meta_path();
        write_meta(&path, &entries, &stats).unwrap();
        prop_assert_eq!(read_meta(&path, &stats).unwrap(), entries);
        wd.destroy().unwrap();
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error(
        rows in proptest::collection::vec((0u32..1000, 0u32..1000), 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let wd = WorkingDir::temp("store_prop_trunc").unwrap();
        let stats = IoStats::new();
        let path = wd.tuples_path(1, 2);
        write_pairs(&path, RecordKind::Tuples, &rows, &stats).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(keep < bytes.len());
        std::fs::write(&path, &bytes[..keep]).unwrap();
        match read_pairs(&path, RecordKind::Tuples, &stats) {
            Err(StoreError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok(_) => prop_assert!(false, "truncated file parsed successfully"),
        }
        wd.destroy().unwrap();
    }

    #[test]
    fn any_single_bit_flip_is_detected(
        rows in proptest::collection::vec((0u32..1000, 0u32..1000), 1..50),
        byte_seed in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let wd = WorkingDir::temp("store_prop_flip").unwrap();
        let stats = IoStats::new();
        let path = wd.tuples_path(4, 4);
        write_pairs(&path, RecordKind::Tuples, &rows, &stats).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = byte_seed % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        // Either the CRC catches it or (if the flip hits the header)
        // the header validation does — silent acceptance is the bug.
        match read_pairs(&path, RecordKind::Tuples, &stats) {
            Err(_) => {}
            Ok(back) => prop_assert!(
                false,
                "bit flip at byte {idx} bit {bit} went undetected ({} rows read)",
                back.len()
            ),
        }
        wd.destroy().unwrap();
    }
}
