//! Simulated storage-device cost models.
//!
//! The paper's future-work section plans an HDD-vs-SSD evaluation. This
//! environment has neither device to measure, so the engine performs
//! real file I/O (correctness and byte counts are genuine) and a
//! `DiskModel` replays the recorded operation trace under a classic
//! seek-latency + transfer-bandwidth linear model to compare devices.

use std::fmt;
use std::time::Duration;

use crate::IoSnapshot;

/// A seek + bandwidth storage-device model.
///
/// Simulated time for a trace is
/// `ops × seek_latency + bytes_read / read_bw + bytes_written / write_bw`.
///
/// ```
/// use knn_store::{DiskModel, IoSnapshot};
///
/// let trace = IoSnapshot { bytes_read: 120_000_000, read_ops: 10, ..Default::default() };
/// let hdd = DiskModel::hdd().simulated_time(&trace);
/// let ssd = DiskModel::ssd().simulated_time(&trace);
/// assert!(hdd > ssd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Human-readable device name.
    pub name: &'static str,
    /// Latency charged per operation (seek + rotational/controller).
    pub seek_latency: Duration,
    /// Sequential read bandwidth in bytes/second.
    pub read_bw: u64,
    /// Sequential write bandwidth in bytes/second.
    pub write_bw: u64,
}

impl DiskModel {
    /// A 7200-rpm commodity hard disk (2014-era): 8 ms seek,
    /// 120 MB/s read, 110 MB/s write.
    pub const fn hdd() -> Self {
        DiskModel {
            name: "hdd",
            seek_latency: Duration::from_micros(8_000),
            read_bw: 120_000_000,
            write_bw: 110_000_000,
        }
    }

    /// A SATA consumer SSD (2014-era): 80 µs access, 500 MB/s read,
    /// 450 MB/s write.
    pub const fn ssd() -> Self {
        DiskModel {
            name: "ssd",
            seek_latency: Duration::from_micros(80),
            read_bw: 500_000_000,
            write_bw: 450_000_000,
        }
    }

    /// A RAM-disk reference point: negligible latency, 10 GB/s.
    pub const fn ramdisk() -> Self {
        DiskModel {
            name: "ramdisk",
            seek_latency: Duration::from_micros(1),
            read_bw: 10_000_000_000,
            write_bw: 10_000_000_000,
        }
    }

    /// The standard trio used by the device-comparison bench.
    pub const ALL: [DiskModel; 3] = [DiskModel::hdd(), DiskModel::ssd(), DiskModel::ramdisk()];

    /// Simulated elapsed device time for an I/O trace.
    pub fn simulated_time(&self, trace: &IoSnapshot) -> Duration {
        let ops = trace.read_ops + trace.write_ops;
        let seek = self.seek_latency * ops as u32;
        let read = Duration::from_secs_f64(trace.bytes_read as f64 / self.read_bw as f64);
        let write = Duration::from_secs_f64(trace.bytes_written as f64 / self.write_bw as f64);
        seek + read + write
    }

    /// Effective throughput (bytes moved / simulated time) for a trace;
    /// `None` if the trace is empty.
    pub fn effective_throughput(&self, trace: &IoSnapshot) -> Option<f64> {
        let time = self.simulated_time(trace).as_secs_f64();
        if time == 0.0 {
            None
        } else {
            Some(trace.bytes_total() as f64 / time)
        }
    }
}

impl fmt::Display for DiskModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (seek {:?}, read {} MB/s, write {} MB/s)",
            self.name,
            self.seek_latency,
            self.read_bw / 1_000_000,
            self.write_bw / 1_000_000
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(bytes_read: u64, read_ops: u64, bytes_written: u64, write_ops: u64) -> IoSnapshot {
        IoSnapshot {
            bytes_read,
            bytes_written,
            read_ops,
            write_ops,
            ..Default::default()
        }
    }

    #[test]
    fn hdd_seeks_dominate_small_random_io() {
        // 10k tiny random reads on HDD ≈ 80 s of seeking.
        let t = trace(10_000 * 512, 10_000, 0, 0);
        let hdd = DiskModel::hdd().simulated_time(&t);
        assert!(hdd >= Duration::from_secs(80), "{hdd:?}");
        // The same trace on SSD is under 2 seconds.
        let ssd = DiskModel::ssd().simulated_time(&t);
        assert!(ssd < Duration::from_secs(2), "{ssd:?}");
    }

    #[test]
    fn bandwidth_dominates_large_sequential_io() {
        // One 1.2 GB sequential read: ~10 s on HDD at 120 MB/s.
        let t = trace(1_200_000_000, 1, 0, 0);
        let hdd = DiskModel::hdd().simulated_time(&t);
        assert!((hdd.as_secs_f64() - 10.0).abs() < 0.1, "{hdd:?}");
    }

    #[test]
    fn write_bandwidth_is_separate() {
        let t = trace(0, 0, 450_000_000, 1);
        let ssd = DiskModel::ssd().simulated_time(&t);
        assert!((ssd.as_secs_f64() - 1.0).abs() < 0.01, "{ssd:?}");
    }

    #[test]
    fn ordering_hdd_slower_than_ssd_slower_than_ram() {
        let t = trace(100_000_000, 50, 100_000_000, 50);
        let times: Vec<Duration> = DiskModel::ALL
            .iter()
            .map(|m| m.simulated_time(&t))
            .collect();
        assert!(times[0] > times[1] && times[1] > times[2], "{times:?}");
    }

    #[test]
    fn throughput_none_on_empty_trace() {
        assert!(DiskModel::ssd()
            .effective_throughput(&IoSnapshot::default())
            .is_none());
        let t = trace(1_000_000, 1, 0, 0);
        assert!(DiskModel::ssd().effective_throughput(&t).unwrap() > 0.0);
    }

    #[test]
    fn display_names_the_device() {
        assert!(DiskModel::hdd().to_string().contains("hdd"));
    }
}
