//! Deterministic storage fault injection.
//!
//! [`FaultBackend`] wraps any [`StorageBackend`] and executes a seeded,
//! scripted [`FaultPlan`]: while **armed**, it counts every I/O
//! operation the engine issues and fails the `fail_at`-th one with the
//! scripted [`FaultKind`] — a hard crash, a torn write that persists
//! only a seeded prefix of the frame, a bounded run of transient
//! errors, or storage exhaustion. Arming is explicit so a harness can
//! scope the plan to exactly the region under test (one engine
//! iteration, say) and keep setup traffic off the op counter.
//!
//! Determinism is the point: the same plan over the same workload
//! fails the same operation with the same torn prefix every run, which
//! is what lets the crash-recovery property harness enumerate *every*
//! kill point of an iteration and compare each recovered world against
//! a never-crashed twin, bit for bit.
//!
//! A fired `Crash` / `Torn` / `Enospc` plan leaves the backend dead —
//! every subsequent operation fails — mimicking a killed process. The
//! harness then drops the engine and resumes on the wrapped (inner)
//! backend, exactly as a restarted process would open the directory
//! the crash left behind.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::record_file;
use crate::{IoStats, StorageBackend, StoreError, StreamId, WorkingDir};

/// How the scripted fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright and the backend is dead from then
    /// on — a process kill at an arbitrary point.
    Crash,
    /// A write-type operation persists only a seeded prefix of its
    /// bytes before the crash — the torn-write case checksums exist
    /// for. Non-write operations hit by this kind degrade to
    /// [`FaultKind::Crash`].
    Torn,
    /// The next `times` operations fail with
    /// [`StoreError::Transient`], then traffic flows again — a
    /// recoverable hiccup for the retry policy to absorb.
    Transient {
        /// How many consecutive operations fail.
        times: u32,
    },
    /// Storage exhaustion: the operation and every one after it fail
    /// with an ENOSPC-shaped permanent error.
    Enospc,
}

/// One scripted fault: fail the `fail_at`-th armed operation
/// (0-based) with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 0-based index (among armed, counted operations) of the first
    /// operation to fail.
    pub fail_at: u64,
    /// The failure mode.
    pub kind: FaultKind,
    /// Seed for the torn-prefix draw; plans with equal seeds tear at
    /// identical byte offsets.
    pub seed: u64,
}

#[derive(Debug, Default)]
struct FaultState {
    plan: Option<FaultPlan>,
    armed: bool,
    ops: u64,
    transient_left: u32,
    dead: bool,
}

/// The classified outcome of the pre-op bookkeeping.
enum Verdict {
    Pass,
    Dead,
    Transient,
    /// Crash now; for write ops, persist this many bytes first.
    Crash {
        torn_keep: Option<usize>,
    },
}

/// A [`StorageBackend`] decorator driven by a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultBackend {
    inner: Arc<dyn StorageBackend>,
    state: Mutex<FaultState>,
}

impl FaultBackend {
    /// Wraps `inner` with no plan installed (fully transparent until
    /// [`set_plan`](FaultBackend::set_plan) + [`arm`](FaultBackend::arm)).
    pub fn new(inner: Arc<dyn StorageBackend>) -> Self {
        FaultBackend {
            inner,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// The wrapped backend (where a harness resumes after a crash).
    pub fn inner(&self) -> &Arc<dyn StorageBackend> {
        &self.inner
    }

    /// Installs `plan`, resetting the op counter and any fired state.
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut s = self.lock();
        s.transient_left = match plan.kind {
            FaultKind::Transient { times } => times,
            _ => 0,
        };
        s.plan = Some(plan);
        s.ops = 0;
        s.dead = false;
    }

    /// Starts counting operations against the plan.
    pub fn arm(&self) {
        self.lock().armed = true;
    }

    /// Stops counting; in-flight state (fired faults, op count) is
    /// kept.
    pub fn disarm(&self) {
        self.lock().armed = false;
    }

    /// Operations counted while armed so far — a harness runs once
    /// with an out-of-range `fail_at` to learn an iteration's op
    /// count, then enumerates kill points `0..ops_observed()`.
    pub fn ops_observed(&self) -> u64 {
        self.lock().ops
    }

    /// Whether a `Crash` / `Torn` / `Enospc` plan has fired.
    pub fn is_dead(&self) -> bool {
        self.lock().dead
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault backend poisoned")
    }

    /// Counts one operation and decides its fate. `write_len` is the
    /// byte count a torn fault could partially persist (`None` for
    /// non-write operations).
    fn judge(&self, write_len: Option<usize>) -> Verdict {
        let mut s = self.lock();
        if s.dead {
            return Verdict::Dead;
        }
        if !s.armed {
            return Verdict::Pass;
        }
        let Some(plan) = s.plan else {
            return Verdict::Pass;
        };
        let index = s.ops;
        s.ops += 1;
        if index < plan.fail_at {
            return Verdict::Pass;
        }
        match plan.kind {
            FaultKind::Transient { .. } => {
                if s.transient_left > 0 {
                    s.transient_left -= 1;
                    Verdict::Transient
                } else {
                    Verdict::Pass
                }
            }
            FaultKind::Crash | FaultKind::Enospc => {
                s.dead = true;
                Verdict::Crash { torn_keep: None }
            }
            FaultKind::Torn => {
                s.dead = true;
                let keep = write_len.map(|len| {
                    // Seeded xorshift64 draw → prefix in [0, len).
                    let mut x = plan.seed ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if len == 0 {
                        0
                    } else {
                        (x % len as u64) as usize
                    }
                });
                Verdict::Crash { torn_keep: keep }
            }
        }
    }

    fn fail(&self, what: PathBuf) -> StoreError {
        let kind = self.lock().plan.map(|p| p.kind);
        match kind {
            Some(FaultKind::Enospc) => StoreError::io(
                what,
                std::io::Error::other("injected fault: no space left on device"),
            ),
            _ => StoreError::io(
                what,
                std::io::Error::other("injected fault: backend crashed"),
            ),
        }
    }

    fn transient(&self, what: PathBuf) -> StoreError {
        StoreError::transient(what, "injected transient fault")
    }

    /// Applies the verdict to a non-write operation.
    fn gate(&self, what: impl Fn() -> PathBuf) -> Result<(), StoreError> {
        match self.judge(None) {
            Verdict::Pass => Ok(()),
            Verdict::Dead | Verdict::Crash { .. } => Err(self.fail(what())),
            Verdict::Transient => Err(self.transient(what())),
        }
    }

    /// Applies the verdict to a write of `framed` pre-framed bytes,
    /// persisting the torn prefix when the script says so.
    fn gate_write(
        &self,
        stream: Option<StreamId>,
        framed: &[u8],
        what: impl Fn() -> PathBuf,
    ) -> Result<(), StoreError> {
        match self.judge(Some(framed.len())) {
            Verdict::Pass => Ok(()),
            Verdict::Dead => Err(self.fail(what())),
            Verdict::Transient => Err(self.transient(what())),
            Verdict::Crash { torn_keep } => {
                if let Some(keep) = torn_keep {
                    // Persist the prefix the "crash" let through. Raw:
                    // re-framing would mint a fresh valid checksum.
                    match stream {
                        Some(s) => self.inner.write_raw(s, &framed[..keep])?,
                        None => self.inner.append_updates(&framed[..keep])?,
                    }
                }
                Err(self.fail(what()))
            }
        }
    }

    fn log_path(&self) -> PathBuf {
        PathBuf::from(format!("{}:updates.log", self.inner.name()))
    }
}

impl StorageBackend for FaultBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn read(&self, stream: StreamId) -> Result<Vec<u8>, StoreError> {
        self.gate(|| self.inner.describe(stream))?;
        self.inner.read(stream)
    }

    fn read_chunk(&self, stream: StreamId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.gate(|| self.inner.describe(stream))?;
        self.inner.read_chunk(stream, offset, len)
    }

    fn write(&self, stream: StreamId, payload: &[u8]) -> Result<(), StoreError> {
        let framed = record_file::frame(payload);
        self.gate_write(Some(stream), &framed, || self.inner.describe(stream))?;
        // Store the exact frame we gated on (write_raw == write for an
        // intact frame), so torn and intact paths share one encoder.
        self.inner.write_raw(stream, &framed)
    }

    fn write_raw(&self, stream: StreamId, framed: &[u8]) -> Result<(), StoreError> {
        self.gate_write(Some(stream), framed, || self.inner.describe(stream))?;
        self.inner.write_raw(stream, framed)
    }

    fn delete(&self, stream: StreamId) -> Result<(), StoreError> {
        if self.lock().dead {
            return Err(self.fail(self.inner.describe(stream)));
        }
        self.inner.delete(stream)
    }

    fn exists(&self, stream: StreamId) -> bool {
        self.inner.exists(stream)
    }

    fn list(&self) -> Result<Vec<StreamId>, StoreError> {
        if self.lock().dead {
            return Err(self.fail(PathBuf::from(self.inner.name())));
        }
        self.inner.list()
    }

    fn clear_tuples(&self) -> Result<(), StoreError> {
        if self.lock().dead {
            return Err(self.fail(PathBuf::from(self.inner.name())));
        }
        self.inner.clear_tuples()
    }

    fn append_updates(&self, bytes: &[u8]) -> Result<(), StoreError> {
        self.gate_write(None, bytes, || self.log_path())?;
        self.inner.append_updates(bytes)
    }

    fn read_updates(&self) -> Result<Vec<u8>, StoreError> {
        self.gate(|| self.log_path())?;
        self.inner.read_updates()
    }

    fn truncate_updates(&self) -> Result<(), StoreError> {
        self.gate(|| self.log_path())?;
        self.inner.truncate_updates()
    }

    fn storage_usage(&self) -> Result<u64, StoreError> {
        self.inner.storage_usage()
    }

    fn describe(&self, stream: StreamId) -> PathBuf {
        self.inner.describe(stream)
    }

    fn working_dir(&self) -> Option<&WorkingDir> {
        self.inner.working_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{self, MemBackend};

    fn plan(fail_at: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            fail_at,
            kind,
            seed: 42,
        }
    }

    #[test]
    fn unarmed_ops_are_neither_counted_nor_failed() {
        let fault = FaultBackend::new(Arc::new(MemBackend::new()));
        fault.set_plan(plan(0, FaultKind::Crash));
        backend::write_meta(&fault, &[(1, 1)]).unwrap();
        assert_eq!(fault.ops_observed(), 0);
        assert!(!fault.is_dead());
    }

    #[test]
    fn the_nth_armed_op_crashes_and_the_backend_stays_dead() {
        let inner = Arc::new(MemBackend::new());
        let fault = FaultBackend::new(inner.clone());
        fault.set_plan(plan(2, FaultKind::Crash));
        fault.arm();
        backend::write_meta(&fault, &[(1, 1)]).unwrap(); // op 0
        backend::write_meta(&fault, &[(1, 2)]).unwrap(); // op 1
        let err = backend::write_meta(&fault, &[(1, 3)]).unwrap_err(); // op 2
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        assert!(fault.is_dead());
        // Dead means dead — even previously fine ops fail now.
        assert!(backend::read_meta(&fault).is_err());
        // The inner backend kept the last completed write.
        assert_eq!(backend::read_meta(inner.as_ref()).unwrap(), vec![(1, 2)]);
    }

    #[test]
    fn torn_writes_persist_a_seeded_prefix_that_reads_as_corrupt() {
        let inner = Arc::new(MemBackend::new());
        let fault = FaultBackend::new(inner.clone());
        backend::write_meta(&fault, &[(1, 1)]).unwrap(); // intact, unarmed
        fault.set_plan(plan(0, FaultKind::Torn));
        fault.arm();
        let err = backend::write_meta(&fault, &[(1, 2), (2, 9), (3, 7)]).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        // The inner backend holds a torn frame: present but corrupt.
        assert!(inner.exists(StreamId::Meta));
        let read = inner.read(StreamId::Meta);
        assert!(
            matches!(
                read,
                Err(StoreError::Corrupt { .. }) | Err(StoreError::VersionMismatch { .. })
            ),
            "torn frame must not read back cleanly: {read:?}"
        );
    }

    #[test]
    fn torn_offsets_are_deterministic_per_seed() {
        let stored_len = |b: &MemBackend| b.lock_streams().get(&StreamId::Meta).map_or(0, Vec::len);
        let cut = |seed: u64| {
            let inner = Arc::new(MemBackend::new());
            let fault = FaultBackend::new(inner.clone());
            fault.set_plan(FaultPlan {
                fail_at: 0,
                kind: FaultKind::Torn,
                seed,
            });
            fault.arm();
            backend::write_meta(&fault, &[(1, 2), (2, 9), (3, 7)]).unwrap_err();
            stored_len(&inner)
        };
        assert_eq!(cut(5), cut(5), "same seed, same tear");
        // The tear must be a strict prefix of the full frame.
        let full = {
            let b = MemBackend::new();
            backend::write_meta(&b, &[(1, 2), (2, 9), (3, 7)]).unwrap();
            stored_len(&b)
        };
        assert!(cut(5) < full);
    }

    #[test]
    fn transient_faults_clear_after_their_run() {
        let fault = FaultBackend::new(Arc::new(MemBackend::new()));
        backend::write_meta(&fault, &[(1, 1)]).unwrap();
        fault.set_plan(plan(1, FaultKind::Transient { times: 2 }));
        fault.arm();
        assert_eq!(backend::read_meta(&fault).unwrap(), vec![(1, 1)]); // op 0
        assert!(backend::read_meta(&fault).unwrap_err().is_transient()); // op 1
        assert!(backend::read_meta(&fault).unwrap_err().is_transient()); // op 2
        assert_eq!(backend::read_meta(&fault).unwrap(), vec![(1, 1)]); // op 3
        assert!(!fault.is_dead());
    }

    #[test]
    fn enospc_is_permanent_and_says_so() {
        let fault = FaultBackend::new(Arc::new(MemBackend::new()));
        fault.set_plan(plan(0, FaultKind::Enospc));
        fault.arm();
        let err = backend::write_meta(&fault, &[(1, 1)]).unwrap_err();
        assert!(!err.is_transient());
        assert!(err.to_string().contains("no space left"), "{err}");
        assert!(backend::write_meta(&fault, &[(1, 1)]).is_err());
    }

    #[test]
    fn torn_log_appends_persist_a_prefix() {
        use knn_graph::UserId;
        use knn_sim::{ItemId, ProfileDelta};
        let inner = Arc::new(MemBackend::new());
        let fault = FaultBackend::new(inner.clone());
        backend::append_delta(
            &fault,
            &ProfileDelta::set(UserId::new(0), ItemId::new(1), 1.0),
        )
        .unwrap();
        let clean_len = inner.read_updates().unwrap().len();
        fault.set_plan(plan(0, FaultKind::Torn));
        fault.arm();
        backend::append_delta(
            &fault,
            &ProfileDelta::set(UserId::new(1), ItemId::new(2), 2.0),
        )
        .unwrap_err();
        let log = inner.read_updates().unwrap();
        assert!(
            log.len() > clean_len || log.len() == clean_len,
            "prefix appended"
        );
        assert!(log.len() < clean_len * 2, "but not the whole record");
        // The torn tail is exactly what repair_update_log prunes.
        let dropped = inner.repair_update_log().unwrap();
        if log.len() > clean_len {
            assert!(dropped.is_some());
        }
        assert_eq!(inner.read_updates().unwrap().len(), clean_len);
    }
}
