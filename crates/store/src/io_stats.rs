//! Global I/O accounting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters observing every storage operation the engine
/// performs. Shared (`Arc<IoStats>`) between the engine, the partition
/// cache, and the record files; the disk models replay a
/// [snapshot](IoStats::snapshot) as simulated device time.
///
/// # Concurrency contract
///
/// The partition-parallel engine meters from many worker threads at
/// once, so every counter is a lock-free atomic: concurrent
/// `record_*` calls never lose an increment, and a run's totals equal
/// the sum of its operations regardless of interleaving. Consequently
/// a parallel iteration and a sequential one that perform the same
/// multiset of storage operations report **identical totals** — the
/// `parallel_equivalence` suite asserts exactly that. Snapshots taken
/// while workers are mid-flight are torn only *across* counters
/// (relaxed loads), never within one; the engine snapshots at phase
/// boundaries, where no worker is active.
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    partition_loads: AtomicU64,
    partition_unloads: AtomicU64,
    spill_bytes: AtomicU64,
    spill_runs: AtomicU64,
    merge_passes: AtomicU64,
    log_drain_bytes: AtomicU64,
    retries: AtomicU64,
    rollbacks: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read operation of `bytes` bytes.
    pub fn record_read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write operation of `bytes` bytes.
    pub fn record_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one partition load (the Table-1 "load" op).
    pub fn record_partition_load(&self) {
        self.partition_loads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one partition unload (the Table-1 "unload" op).
    pub fn record_partition_unload(&self) {
        self.partition_unloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one tuple spill run of `bytes` bytes hitting storage
    /// (phase-2 overflow traffic; the bytes are *also* counted in
    /// `bytes_written` — this meter isolates the spill share).
    pub fn record_spill(&self, bytes: u64) {
        self.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one k-way merge pass over a bucket's spill runs.
    pub fn record_merge_pass(&self) {
        self.merge_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `bytes` drained from the durable update log. Metered as
    /// bytes only — deliberately **not** as a read operation — because
    /// the number of log *files* behind one logical drain is a
    /// deployment detail (a sharded engine drains one log per shard),
    /// while the byte total is a pure function of the queued updates.
    pub fn record_log_drain(&self, bytes: u64) {
        self.log_drain_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one retried storage operation (a transient failure that
    /// was re-attempted under the bounded retry policy). Zero in any
    /// fault-free run, so the cross-backend/thread/shard equality
    /// contracts are unaffected.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one generation rollback performed during crash
    /// recovery (staged backups restored over torn committed streams).
    /// Zero in any run that never crashed.
    pub fn record_rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds another meter's current totals into this one (used to
    /// aggregate per-shard backends into one cross-shard view).
    ///
    /// # Atomicity
    ///
    /// Each counter is read and added atomically, but the merge is not
    /// atomic *across* counters: if `other` is being updated
    /// concurrently, the folded totals may mix counter values from
    /// slightly different instants (never losing or double-counting
    /// any single increment). Call it at quiescent points — phase or
    /// iteration boundaries — for exact cross-counter totals.
    pub fn merge(&self, other: &IoStats) {
        let snap = other.snapshot();
        self.bytes_read
            .fetch_add(snap.bytes_read, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(snap.bytes_written, Ordering::Relaxed);
        self.read_ops.fetch_add(snap.read_ops, Ordering::Relaxed);
        self.write_ops.fetch_add(snap.write_ops, Ordering::Relaxed);
        self.partition_loads
            .fetch_add(snap.partition_loads, Ordering::Relaxed);
        self.partition_unloads
            .fetch_add(snap.partition_unloads, Ordering::Relaxed);
        self.spill_bytes
            .fetch_add(snap.spill_bytes, Ordering::Relaxed);
        self.spill_runs
            .fetch_add(snap.spill_runs, Ordering::Relaxed);
        self.merge_passes
            .fetch_add(snap.merge_passes, Ordering::Relaxed);
        self.log_drain_bytes
            .fetch_add(snap.log_drain_bytes, Ordering::Relaxed);
        self.retries.fetch_add(snap.retries, Ordering::Relaxed);
        self.rollbacks.fetch_add(snap.rollbacks, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters (individual
    /// counters are read relaxed; exactness across counters is not
    /// needed for reporting).
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            read_ops: self.read_ops.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            partition_loads: self.partition_loads.load(Ordering::Relaxed),
            partition_unloads: self.partition_unloads.load(Ordering::Relaxed),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            spill_runs: self.spill_runs.load(Ordering::Relaxed),
            merge_passes: self.merge_passes.load(Ordering::Relaxed),
            log_drain_bytes: self.log_drain_bytes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.partition_loads.store(0, Ordering::Relaxed);
        self.partition_unloads.store(0, Ordering::Relaxed);
        self.spill_bytes.store(0, Ordering::Relaxed);
        self.spill_runs.store(0, Ordering::Relaxed);
        self.merge_passes.store(0, Ordering::Relaxed);
        self.log_drain_bytes.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.rollbacks.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`] counters.
///
/// Snapshots subtract (`after - before`) to delimit a phase:
///
/// ```
/// use knn_store::IoStats;
///
/// let stats = IoStats::new();
/// let before = stats.snapshot();
/// stats.record_read(4096);
/// let delta = stats.snapshot() - before;
/// assert_eq!(delta.bytes_read, 4096);
/// assert_eq!(delta.read_ops, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Number of partition load operations.
    pub partition_loads: u64,
    /// Number of partition unload operations.
    pub partition_unloads: u64,
    /// Bytes written into tuple spill runs (a subset of
    /// `bytes_written`: phase 2's memory-overflow traffic).
    pub spill_bytes: u64,
    /// Number of tuple spill runs written.
    pub spill_runs: u64,
    /// Number of k-way merge passes over bucket spill runs.
    pub merge_passes: u64,
    /// Bytes drained from the durable update log (bytes only; log
    /// drains carry no operation count — see
    /// [`IoStats::record_log_drain`]).
    pub log_drain_bytes: u64,
    /// Number of storage operations retried after a transient failure
    /// (zero on a fault-free run).
    pub retries: u64,
    /// Number of generation rollbacks performed during crash recovery
    /// (zero on a run that never crashed).
    pub rollbacks: u64,
}

impl IoSnapshot {
    /// Loads + unloads: the paper's Table-1 metric.
    pub fn partition_ops(&self) -> u64 {
        self.partition_loads + self.partition_unloads
    }

    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

impl Sub for IoSnapshot {
    type Output = IoSnapshot;

    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.saturating_sub(rhs.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(rhs.bytes_written),
            read_ops: self.read_ops.saturating_sub(rhs.read_ops),
            write_ops: self.write_ops.saturating_sub(rhs.write_ops),
            partition_loads: self.partition_loads.saturating_sub(rhs.partition_loads),
            partition_unloads: self.partition_unloads.saturating_sub(rhs.partition_unloads),
            spill_bytes: self.spill_bytes.saturating_sub(rhs.spill_bytes),
            spill_runs: self.spill_runs.saturating_sub(rhs.spill_runs),
            merge_passes: self.merge_passes.saturating_sub(rhs.merge_passes),
            log_drain_bytes: self.log_drain_bytes.saturating_sub(rhs.log_drain_bytes),
            retries: self.retries.saturating_sub(rhs.retries),
            rollbacks: self.rollbacks.saturating_sub(rhs.rollbacks),
        }
    }
}

impl Add for IoSnapshot {
    type Output = IoSnapshot;

    fn add(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_written: self.bytes_written + rhs.bytes_written,
            read_ops: self.read_ops + rhs.read_ops,
            write_ops: self.write_ops + rhs.write_ops,
            partition_loads: self.partition_loads + rhs.partition_loads,
            partition_unloads: self.partition_unloads + rhs.partition_unloads,
            spill_bytes: self.spill_bytes + rhs.spill_bytes,
            spill_runs: self.spill_runs + rhs.spill_runs,
            merge_passes: self.merge_passes + rhs.merge_passes,
            log_drain_bytes: self.log_drain_bytes + rhs.log_drain_bytes,
            retries: self.retries + rhs.retries,
            rollbacks: self.rollbacks + rhs.rollbacks,
        }
    }
}

/// Sums per-shard (or per-phase) snapshots into one total, counter by
/// counter — the canonical way to aggregate I/O across backends.
impl Sum for IoSnapshot {
    fn sum<I: Iterator<Item = IoSnapshot>>(iter: I) -> IoSnapshot {
        iter.fold(IoSnapshot::default(), Add::add)
    }
}

impl fmt::Display for IoSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read {} B in {} ops, wrote {} B in {} ops, {} loads / {} unloads, \
             {} B spilled in {} runs / {} merges, {} B drained from the log, \
             {} retries / {} rollbacks",
            self.bytes_read,
            self.read_ops,
            self.bytes_written,
            self.write_ops,
            self.partition_loads,
            self.partition_unloads,
            self.spill_bytes,
            self.spill_runs,
            self.merge_passes,
            self.log_drain_bytes,
            self.retries,
            self.rollbacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(10);
        s.record_read(20);
        s.record_write(5);
        s.record_partition_load();
        s.record_partition_unload();
        let snap = s.snapshot();
        assert_eq!(snap.bytes_read, 30);
        assert_eq!(snap.read_ops, 2);
        assert_eq!(snap.bytes_written, 5);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.partition_ops(), 2);
        assert_eq!(snap.bytes_total(), 35);
    }

    #[test]
    fn snapshot_subtraction_delimits_a_phase() {
        let s = IoStats::new();
        s.record_read(100);
        let before = s.snapshot();
        s.record_write(50);
        let delta = s.snapshot() - before;
        assert_eq!(delta.bytes_read, 0);
        assert_eq!(delta.bytes_written, 50);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_read(1);
        s.record_partition_load();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = Arc::new(IoStats::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.snapshot().bytes_read, 8000);
        assert_eq!(s.snapshot().read_ops, 8000);
    }

    /// The full concurrency contract: every counter — not just reads —
    /// holds its exact total under mixed multi-threaded metering, so
    /// parallel and sequential runs of the same operations report the
    /// same snapshot.
    #[test]
    fn concurrent_mixed_ops_preserve_every_counter() {
        let s = Arc::new(IoStats::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        s.record_read(t + i);
                        s.record_write(2 * (t + i));
                        if i % 5 == 0 {
                            s.record_partition_load();
                            s.record_partition_unload();
                        }
                    }
                });
            }
        });
        let per_thread: u64 = (0..500).sum::<u64>();
        let expected_read: u64 = (0..8).map(|t| 500 * t + per_thread).sum();
        let snap = s.snapshot();
        assert_eq!(snap.bytes_read, expected_read);
        assert_eq!(snap.bytes_written, 2 * expected_read);
        assert_eq!(snap.read_ops, 4000);
        assert_eq!(snap.write_ops, 4000);
        assert_eq!(snap.partition_loads, 800);
        assert_eq!(snap.partition_unloads, 800);
    }

    #[test]
    fn spill_and_merge_counters_accumulate_and_subtract() {
        let s = IoStats::new();
        s.record_spill(100);
        s.record_spill(50);
        s.record_merge_pass();
        let before = s.snapshot();
        assert_eq!(before.spill_bytes, 150);
        assert_eq!(before.spill_runs, 2);
        assert_eq!(before.merge_passes, 1);
        s.record_spill(10);
        let delta = s.snapshot() - before;
        assert_eq!(delta.spill_bytes, 10);
        assert_eq!(delta.spill_runs, 1);
        assert_eq!(delta.merge_passes, 0);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn log_drains_count_bytes_but_no_ops() {
        let s = IoStats::new();
        s.record_log_drain(64);
        s.record_log_drain(0);
        let snap = s.snapshot();
        assert_eq!(snap.log_drain_bytes, 64);
        assert_eq!(snap.read_ops, 0);
        assert_eq!(snap.bytes_read, 0);
    }

    #[test]
    fn merge_folds_every_counter() {
        let total = IoStats::new();
        let a = IoStats::new();
        a.record_read(10);
        a.record_spill(3);
        a.record_log_drain(7);
        let b = IoStats::new();
        b.record_write(20);
        b.record_partition_load();
        b.record_merge_pass();
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.snapshot(), a.snapshot() + b.snapshot());
    }

    #[test]
    fn snapshots_add_and_sum() {
        let a = IoStats::new();
        a.record_read(5);
        a.record_write(6);
        let b = IoStats::new();
        b.record_partition_unload();
        b.record_log_drain(9);
        let summed: IoSnapshot = [a.snapshot(), b.snapshot(), IoSnapshot::default()]
            .into_iter()
            .sum();
        assert_eq!(summed, a.snapshot() + b.snapshot());
        assert_eq!(summed.bytes_read, 5);
        assert_eq!(summed.partition_unloads, 1);
        assert_eq!(summed.log_drain_bytes, 9);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!IoSnapshot::default().to_string().is_empty());
    }

    #[test]
    fn retry_and_rollback_counters_round_trip() {
        let s = IoStats::new();
        s.record_retry();
        s.record_retry();
        s.record_rollback();
        let snap = s.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.rollbacks, 1);
        let total = IoStats::new();
        total.merge(&s);
        assert_eq!(total.snapshot().retries, 2);
        assert_eq!(total.snapshot().rollbacks, 1);
        let delta = snap - IoSnapshot::default();
        assert_eq!(delta.retries, 2);
        assert_eq!((snap + snap).rollbacks, 2);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }
}
