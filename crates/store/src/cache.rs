//! The bounded resident-partition cache.
//!
//! The paper's memory constraint is explicit: *"we load the profiles of
//! at most two partitions Ri and Rj at any point"*. [`SlotCache`] is
//! that constraint as a data structure — a `capacity`-slot LRU whose
//! load and unload callbacks move real partition state, and whose
//! operation counters are exactly the metric of the paper's Table 1.
//! The phase-4 executor runs it with real payloads; the Table-1
//! simulator runs it with `()` payloads as a dry run.

use crate::IoStats;
use std::sync::Arc;

/// Load/unload operation counters of a [`SlotCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Number of load operations (misses).
    pub loads: u64,
    /// Number of unload operations (evictions + flushes).
    pub unloads: u64,
    /// Number of hits (requests satisfied by a resident slot).
    pub hits: u64,
}

impl CacheCounters {
    /// Loads + unloads: the paper's Table-1 metric.
    pub fn total_ops(&self) -> u64 {
        self.loads + self.unloads
    }
}

/// A fixed-capacity cache of partition payloads with LRU eviction and
/// full load/unload accounting.
///
/// `ensure` brings a partition in (calling `load` on miss, evicting the
/// least-recently-used non-pinned resident via `unload`), `get`/`get_mut`
/// access resident payloads, and `flush` unloads everything.
///
/// ```
/// use knn_store::SlotCache;
///
/// let mut cache: SlotCache<String> = SlotCache::new(2);
/// let load = |id: u32| Ok::<_, std::io::Error>(format!("payload {id}"));
/// cache.ensure(1, None, load, |_, _| Ok(())).unwrap();
/// cache.ensure(2, Some(1), load, |_, _| Ok(())).unwrap();
/// // Loading 3 with 1 pinned evicts 2 (the LRU non-pinned resident).
/// cache.ensure(3, Some(1), load, |_, _| Ok(())).unwrap();
/// assert!(cache.get(1).is_some() && cache.get(3).is_some());
/// assert!(cache.get(2).is_none());
/// assert_eq!(cache.counters().loads, 3);
/// assert_eq!(cache.counters().unloads, 1);
/// ```
#[derive(Debug)]
pub struct SlotCache<T> {
    capacity: usize,
    /// Resident entries ordered least-recently-used first.
    slots: Vec<(u32, T)>,
    counters: CacheCounters,
    io_stats: Option<Arc<IoStats>>,
}

impl<T> SlotCache<T> {
    /// Creates a cache with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs at least one slot");
        SlotCache {
            capacity,
            slots: Vec::with_capacity(capacity),
            counters: CacheCounters::default(),
            io_stats: None,
        }
    }

    /// Mirrors load/unload counts into shared [`IoStats`] in addition
    /// to the local counters.
    pub fn with_io_stats(mut self, stats: Arc<IoStats>) -> Self {
        self.io_stats = Some(stats);
        self
    }

    /// The slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ids currently resident, least-recently-used first.
    pub fn resident(&self) -> Vec<u32> {
        self.slots.iter().map(|&(id, _)| id).collect()
    }

    /// The operation counters so far.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: u32) -> bool {
        self.slots.iter().any(|&(sid, _)| sid == id)
    }

    /// Shared access to a resident payload (does not touch LRU order).
    pub fn get(&self, id: u32) -> Option<&T> {
        self.slots
            .iter()
            .find(|&&(sid, _)| sid == id)
            .map(|(_, t)| t)
    }

    /// Mutable access to a resident payload (does not touch LRU order).
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.slots
            .iter_mut()
            .find(|(sid, _)| *sid == id)
            .map(|(_, t)| t)
    }

    /// Ensures `id` is resident: counts a hit if present (refreshing
    /// LRU order), otherwise loads it, evicting the least-recently-used
    /// resident other than `pinned` if the cache is full.
    ///
    /// # Errors
    ///
    /// Propagates errors from the `load`/`unload` callbacks; on error
    /// the cache state is unchanged except for already-completed
    /// evictions.
    ///
    /// # Panics
    ///
    /// Panics if eviction is required but every resident is pinned
    /// (only possible when `capacity == 1` and `pinned` is resident).
    pub fn ensure<E>(
        &mut self,
        id: u32,
        pinned: Option<u32>,
        load: impl FnOnce(u32) -> Result<T, E>,
        unload: impl FnOnce(u32, T) -> Result<(), E>,
    ) -> Result<(), E> {
        if let Some(pos) = self.slots.iter().position(|&(sid, _)| sid == id) {
            // Hit: move to most-recently-used position.
            let entry = self.slots.remove(pos);
            self.slots.push(entry);
            self.counters.hits += 1;
            return Ok(());
        }
        if self.slots.len() == self.capacity {
            let victim_pos = self
                .slots
                .iter()
                .position(|&(sid, _)| Some(sid) != pinned)
                .expect("cannot evict: all residents pinned");
            let (vid, payload) = self.slots.remove(victim_pos);
            self.counters.unloads += 1;
            if let Some(s) = &self.io_stats {
                s.record_partition_unload();
            }
            unload(vid, payload)?;
        }
        let payload = load(id)?;
        self.counters.loads += 1;
        if let Some(s) = &self.io_stats {
            s.record_partition_load();
        }
        self.slots.push((id, payload));
        Ok(())
    }

    /// Unloads every resident payload (counted), e.g. at end of phase.
    ///
    /// # Errors
    ///
    /// Propagates the first `unload` error; remaining residents stay
    /// cached.
    pub fn flush<E>(&mut self, mut unload: impl FnMut(u32, T) -> Result<(), E>) -> Result<(), E> {
        while let Some((id, payload)) = self.slots.pop() {
            self.counters.unloads += 1;
            if let Some(s) = &self.io_stats {
                s.record_partition_unload();
            }
            unload(id, payload)?;
        }
        Ok(())
    }

    /// Drops every resident payload **without** counting unloads — for
    /// abandoning a dry run.
    pub fn clear_uncounted(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn ok_load(id: u32) -> Result<u32, Infallible> {
        Ok(id * 10)
    }

    fn ok_unload(_: u32, _: u32) -> Result<(), Infallible> {
        Ok(())
    }

    #[test]
    fn miss_loads_hit_does_not() {
        let mut c: SlotCache<u32> = SlotCache::new(2);
        c.ensure(1, None, ok_load, ok_unload).unwrap();
        c.ensure(1, None, ok_load, ok_unload).unwrap();
        assert_eq!(
            c.counters(),
            CacheCounters {
                loads: 1,
                unloads: 0,
                hits: 1
            }
        );
        assert_eq!(c.get(1), Some(&10));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: SlotCache<u32> = SlotCache::new(2);
        c.ensure(1, None, ok_load, ok_unload).unwrap();
        c.ensure(2, None, ok_load, ok_unload).unwrap();
        // Touch 1 so 2 becomes LRU.
        c.ensure(1, None, ok_load, ok_unload).unwrap();
        c.ensure(3, None, ok_load, ok_unload).unwrap();
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn pinned_partition_survives_eviction() {
        let mut c: SlotCache<u32> = SlotCache::new(2);
        c.ensure(7, None, ok_load, ok_unload).unwrap();
        for other in [1, 2, 3, 4] {
            c.ensure(other, Some(7), ok_load, ok_unload).unwrap();
            assert!(c.contains(7), "pivot must stay resident");
        }
        // 4 neighbor loads, 3 evictions (slots: pivot + 1 neighbor).
        assert_eq!(c.counters().loads, 5);
        assert_eq!(c.counters().unloads, 3);
    }

    #[test]
    fn flush_unloads_everything_counted() {
        let mut c: SlotCache<u32> = SlotCache::new(3);
        for id in [1, 2, 3] {
            c.ensure(id, None, ok_load, ok_unload).unwrap();
        }
        let mut unloaded = Vec::new();
        c.flush(|id, _| {
            unloaded.push(id);
            Ok::<(), Infallible>(())
        })
        .unwrap();
        assert_eq!(c.counters().unloads, 3);
        assert_eq!(unloaded.len(), 3);
        assert!(c.resident().is_empty());
    }

    #[test]
    fn unload_receives_mutated_payload() {
        let mut c: SlotCache<Vec<u32>> = SlotCache::new(1);
        c.ensure(1, None, |_| Ok::<_, Infallible>(vec![]), |_, _| Ok(()))
            .unwrap();
        c.get_mut(1).unwrap().push(42);
        let mut captured = None;
        c.ensure(
            2,
            None,
            |_| Ok::<_, Infallible>(vec![]),
            |id, payload| {
                captured = Some((id, payload));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(captured, Some((1, vec![42])));
    }

    #[test]
    fn load_error_propagates_and_leaves_id_absent() {
        let mut c: SlotCache<u32> = SlotCache::new(2);
        let r = c.ensure(
            5,
            None,
            |_| Err(std::io::Error::other("boom")),
            |_, _| Ok(()),
        );
        assert!(r.is_err());
        assert!(!c.contains(5));
        assert_eq!(c.counters().loads, 0);
    }

    #[test]
    #[should_panic(expected = "all residents pinned")]
    fn single_slot_pinned_conflict_panics() {
        let mut c: SlotCache<u32> = SlotCache::new(1);
        c.ensure(1, None, ok_load, ok_unload).unwrap();
        // Requires evicting 1, but 1 is pinned.
        let _ = c.ensure(2, Some(1), ok_load, ok_unload);
    }

    #[test]
    fn io_stats_mirroring() {
        let stats = Arc::new(IoStats::new());
        let mut c: SlotCache<u32> = SlotCache::new(1).with_io_stats(Arc::clone(&stats));
        c.ensure(1, None, ok_load, ok_unload).unwrap();
        c.ensure(2, None, ok_load, ok_unload).unwrap();
        c.flush(|_, _| Ok::<(), Infallible>(())).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.partition_loads, 2);
        assert_eq!(snap.partition_unloads, 2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _: SlotCache<u32> = SlotCache::new(0);
    }
}
