use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors produced by the storage substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io {
        /// The file involved, when known.
        path: Option<PathBuf>,
        /// The OS error.
        source: io::Error,
    },
    /// A file failed structural validation (bad magic, wrong kind,
    /// truncated payload, invalid record).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Human-readable detail.
        detail: String,
    },
    /// A file was written by an incompatible codec version.
    VersionMismatch {
        /// The offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u16,
        /// Version this build expects.
        expected: u16,
    },
    /// A transient storage failure: the operation did not take effect
    /// but retrying it may succeed (flaky device, momentary
    /// contention). Produced by fault-injecting backends and cloud-ish
    /// backends; the engine retries these under a bounded deterministic
    /// policy before giving up (see `retry`).
    Transient {
        /// The stream involved, when known.
        path: Option<PathBuf>,
        /// Human-readable detail.
        detail: String,
    },
}

impl StoreError {
    /// Wraps an I/O error with the file path it concerns.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            path: Some(path.into()),
            source,
        }
    }

    /// Builds a corruption error.
    pub fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }

    /// Builds a transient (retryable) error.
    pub fn transient(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        StoreError::Transient {
            path: Some(path.into()),
            detail: detail.into(),
        }
    }

    /// Whether retrying the failed operation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Transient { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                path: Some(p),
                source,
            } => {
                write!(f, "i/o error on {}: {source}", p.display())
            }
            StoreError::Io { path: None, source } => write!(f, "i/o error: {source}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt file {}: {detail}", path.display())
            }
            StoreError::VersionMismatch {
                path,
                found,
                expected,
            } => {
                write!(
                    f,
                    "file {} has codec version {found}, expected {expected}",
                    path.display()
                )
            }
            StoreError::Transient {
                path: Some(p),
                detail,
            } => {
                write!(f, "transient storage error on {}: {detail}", p.display())
            }
            StoreError::Transient { path: None, detail } => {
                write!(f, "transient storage error: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(source: io::Error) -> Self {
        StoreError::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<StoreError>();
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            StoreError::io("/tmp/x", io::Error::new(io::ErrorKind::NotFound, "nope")),
            StoreError::from(io::Error::other("raw")),
            StoreError::corrupt("/tmp/y", "bad magic"),
            StoreError::VersionMismatch {
                path: "/tmp/z".into(),
                found: 9,
                expected: 1,
            },
            StoreError::transient("/tmp/w", "flaky device"),
            StoreError::Transient {
                path: None,
                detail: "flaky device".into(),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn transient_is_the_only_retryable_variant() {
        assert!(StoreError::transient("/f", "x").is_transient());
        assert!(!StoreError::corrupt("/f", "x").is_transient());
        assert!(!StoreError::from(io::Error::other("x")).is_transient());
    }

    #[test]
    fn io_variant_has_source() {
        use std::error::Error;
        let e = StoreError::io("/f", io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(StoreError::corrupt("/f", "d").source().is_none());
    }
}
