//! On-disk working-directory layout.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::StoreError;

/// The on-disk home of one KNN computation.
///
/// ```text
/// <root>/
///   meta.bin                  engine metadata (n, k, m, iteration)
///   parts/
///     p0042.in_edges          in-edges of partition 42, sorted by bridge
///     p0042.out_edges         out-edges of partition 42, sorted by bridge
///     p0042.profiles          profiles of partition 42's users
///     p0042.accum             top-K accumulator state of partition 42
///   tuples/
///     t0001_0007.tuples       deduplicated (s,d) tuples with s∈R1, d∈R7
///   updates.log               phase-5 lazy profile-update queue
/// ```
///
/// `WorkingDir` only computes paths and creates directories; record
/// parsing lives in [`crate::record_file`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkingDir {
    root: PathBuf,
}

impl WorkingDir {
    /// Opens (creating if needed) a working directory rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directories cannot be created.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        for sub in ["parts", "tuples"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        }
        Ok(WorkingDir { root })
    }

    /// Creates a fresh uniquely-named working directory under the
    /// system temp dir — the standard harness for tests and examples.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if creation fails.
    pub fn temp(prefix: &str) -> Result<Self, StoreError> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "{prefix}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let mut root = std::env::temp_dir();
        root.push("ooc-knn");
        root.push(unique);
        Self::create(root)
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the engine metadata file.
    pub fn meta_path(&self) -> PathBuf {
        self.root.join("meta.bin")
    }

    /// Path of partition `p`'s in-edge file.
    pub fn in_edges_path(&self, p: u32) -> PathBuf {
        self.root.join("parts").join(format!("p{p:04}.in_edges"))
    }

    /// Path of partition `p`'s out-edge file.
    pub fn out_edges_path(&self, p: u32) -> PathBuf {
        self.root.join("parts").join(format!("p{p:04}.out_edges"))
    }

    /// Path of partition `p`'s profile file.
    pub fn profiles_path(&self, p: u32) -> PathBuf {
        self.root.join("parts").join(format!("p{p:04}.profiles"))
    }

    /// Path of partition `p`'s top-K accumulator state file.
    pub fn accum_path(&self, p: u32) -> PathBuf {
        self.root.join("parts").join(format!("p{p:04}.accum"))
    }

    /// Path of partition `p`'s persisted KNN-graph slice (the scored
    /// out-edges of its users) — written after each iteration so a run
    /// can resume from disk.
    pub fn knn_path(&self, p: u32) -> PathBuf {
        self.root.join("parts").join(format!("p{p:04}.knn"))
    }

    /// Path of the user→partition assignment file.
    pub fn assignment_path(&self) -> PathBuf {
        self.root.join("assignment.bin")
    }

    /// Path of the user→cluster assignment file (written only when a
    /// run uses the clustering pre-pass; absent otherwise).
    pub fn clusters_path(&self) -> PathBuf {
        self.root.join("clusters.bin")
    }

    /// Path of the tuple bucket for the partition pair `(i, j)` — the
    /// on-disk materialization of the PI-graph edge `(Ri, Rj)`.
    pub fn tuples_path(&self, i: u32, j: u32) -> PathBuf {
        self.root
            .join("tuples")
            .join(format!("t{i:04}_{j:04}.tuples"))
    }

    /// Path of the phase-5 profile-update log.
    pub fn updates_path(&self) -> PathBuf {
        self.root.join("updates.log")
    }

    /// Path of the generation commit record (absent in pre-protocol
    /// legacy layouts; see `knn_store::commit`).
    pub fn commit_path(&self) -> PathBuf {
        self.root.join("commit.bin")
    }

    /// Removes every tuple bucket (phase 2 of each iteration starts
    /// clean).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be read or a
    /// file cannot be removed.
    pub fn clear_tuples(&self) -> Result<(), StoreError> {
        let dir = self.root.join("tuples");
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::io(&dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
            std::fs::remove_file(entry.path()).map_err(|e| StoreError::io(entry.path(), e))?;
        }
        Ok(())
    }

    /// Recursively deletes the working directory. Intended for tests
    /// and example cleanup.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn destroy(self) -> Result<(), StoreError> {
        std::fs::remove_dir_all(&self.root).map_err(|e| StoreError::io(&self.root, e))
    }

    /// Total size in bytes of every file under the working directory.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn disk_usage(&self) -> Result<u64, StoreError> {
        fn walk(dir: &Path) -> std::io::Result<u64> {
            let mut total = 0;
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let meta = entry.metadata()?;
                if meta.is_dir() {
                    total += walk(&entry.path())?;
                } else {
                    total += meta.len();
                }
            }
            Ok(total)
        }
        walk(&self.root).map_err(|e| StoreError::io(&self.root, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_makes_subdirectories() {
        let wd = WorkingDir::temp("layout_create").unwrap();
        assert!(wd.root().join("parts").is_dir());
        assert!(wd.root().join("tuples").is_dir());
        wd.destroy().unwrap();
    }

    #[test]
    fn temp_dirs_are_unique() {
        let a = WorkingDir::temp("layout_unique").unwrap();
        let b = WorkingDir::temp("layout_unique").unwrap();
        assert_ne!(a.root(), b.root());
        a.destroy().unwrap();
        b.destroy().unwrap();
    }

    #[test]
    fn paths_are_stable_and_distinct() {
        let wd = WorkingDir::temp("layout_paths").unwrap();
        assert_ne!(wd.in_edges_path(1), wd.out_edges_path(1));
        assert_ne!(wd.profiles_path(1), wd.accum_path(1));
        assert_ne!(wd.tuples_path(1, 2), wd.tuples_path(2, 1));
        assert_eq!(wd.tuples_path(1, 2), wd.tuples_path(1, 2));
        wd.destroy().unwrap();
    }

    #[test]
    fn clear_tuples_removes_only_buckets() {
        let wd = WorkingDir::temp("layout_clear").unwrap();
        std::fs::write(wd.tuples_path(0, 1), b"x").unwrap();
        std::fs::write(wd.profiles_path(0), b"y").unwrap();
        wd.clear_tuples().unwrap();
        assert!(!wd.tuples_path(0, 1).exists());
        assert!(wd.profiles_path(0).exists());
        wd.destroy().unwrap();
    }

    #[test]
    fn disk_usage_counts_file_bytes() {
        let wd = WorkingDir::temp("layout_usage").unwrap();
        std::fs::write(wd.profiles_path(0), vec![0u8; 100]).unwrap();
        std::fs::write(wd.tuples_path(0, 0), vec![0u8; 50]).unwrap();
        assert_eq!(wd.disk_usage().unwrap(), 150);
        wd.destroy().unwrap();
    }
}
