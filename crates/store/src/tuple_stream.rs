//! The varint-delta tuple stream codec (format v2).
//!
//! Phase 2 moves more bytes than any other phase: every spill run and
//! every final bucket is a sorted list of canonical tuples `(u, v)`
//! with `u < v`, each carrying a 4-bit metadata nibble (direction and
//! old-path bits). The fixed-width pair encoding costs 8 bytes per
//! tuple and cannot carry the nibble at all; this codec exploits the
//! sortedness instead:
//!
//! * tuples are **delta-encoded** over the canonical order — the
//!   first varint of a row packs `(u - prev_u) << 4 | meta`, the
//!   second holds `v - prev_v - 1` within a `u`-group (strictly
//!   ascending) or `v - u - 1` when the group changes (`v > u`
//!   always, by canonicality);
//! * the meta nibble is **bit-packed** into the low bits of the head
//!   varint, so direction/old-path bits travel with the tuple instead
//!   of in a resident side table.
//!
//! Dense buckets encode in ~2 bytes per tuple versus the legacy 8 —
//! spilled traffic shrinks by well over half, which is exactly the
//! lever the paper's PC-class I/O budget needs.
//!
//! # Stream versioning and legacy compatibility
//!
//! Every tuple stream starts with the standard [`crate::codec`] header
//! whose record-kind field doubles as the format discriminator:
//!
//! * kind [`RecordKind::TuplesV2`] — this codec; the header is
//!   followed by one **format byte** ([`TUPLE_STREAM_FORMAT`], `2`)
//!   reserved for future in-kind evolution, then the varint rows;
//! * kind [`RecordKind::Tuples`] — the legacy fixed-width pair
//!   encoding written before this codec existed. [`decode_tuples`]
//!   and [`TupleStreamReader`] accept it transparently, yielding each
//!   pair with an empty meta nibble (pre-refactor streams kept their
//!   metadata in memory, never at rest).
//!
//! Tuple streams are per-iteration scratch — `resume` never reads
//! them — so the legacy path exists for tooling that inspects old
//! working directories and as the template for future format bumps;
//! the guarantee that pre-refactor working directories still open is
//! carried by the *other* streams' unchanged encodings.

use std::path::Path;

use bytes::{BufMut, BytesMut};

use crate::codec::{put_header, HEADER_LEN, MAGIC, VERSION};
use crate::record_file::{decode_pairs, RecordKind};
use crate::StoreError;

/// One row of a tuple stream: the canonical pair (`u < v`) plus its
/// meta nibble (low 4 bits used; see the engine's `meta_bits`).
pub type TupleRow = (u32, u32, u8);

/// The in-kind format byte of [`RecordKind::TuplesV2`] streams.
pub const TUPLE_STREAM_FORMAT: u8 = 2;

/// Largest meta value the packed head varint can carry (one nibble).
pub const TUPLE_META_MAX: u8 = 0x0F;

fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes one varint at `pos`, advancing it. `Ok(None)` means the
/// buffer ended mid-varint (the caller may have more bytes to feed);
/// `pos` is left where it was.
fn try_varint(bytes: &[u8], pos: &mut usize, path: &Path) -> Result<Option<u64>, StoreError> {
    let start = *pos;
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            *pos = start;
            return Ok(None);
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(StoreError::corrupt(path, "varint overflows u64"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
    }
}

/// Incremental encoder for a sorted tuple stream. Rows must arrive in
/// strictly ascending `(u, v)` order with `u < v` and `meta <=`
/// [`TUPLE_META_MAX`] — exactly what the tuple table's sorted,
/// deduplicated buckets provide. The encoder appends each row to its
/// output buffer as it arrives, so a k-way merge can stream straight
/// into it without materializing the merged row vector.
#[derive(Debug)]
pub struct TupleStreamWriter {
    rows: BytesMut,
    count: u64,
    prev: Option<(u32, u32)>,
}

impl Default for TupleStreamWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl TupleStreamWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        TupleStreamWriter {
            rows: BytesMut::new(),
            count: 0,
            prev: None,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the row is out of order, not canonical
    /// (`u >= v`), or carries meta bits outside the nibble — all
    /// internal-contract violations of the tuple table.
    pub fn push(&mut self, u: u32, v: u32, meta: u8) {
        debug_assert!(u < v, "tuple ({u}, {v}) is not canonical");
        debug_assert!(meta <= TUPLE_META_MAX, "meta {meta:#x} exceeds the nibble");
        let (du, dv) = match self.prev {
            Some((pu, pv)) => {
                debug_assert!(
                    (pu, pv) < (u, v),
                    "tuple ({u}, {v}) out of order after ({pu}, {pv})"
                );
                if pu == u {
                    (0u64, u64::from(v - pv - 1))
                } else {
                    (u64::from(u - pu), u64::from(v - u - 1))
                }
            }
            None => (u64::from(u), u64::from(v - u - 1)),
        };
        put_varint(&mut self.rows, (du << 4) | u64::from(meta & TUPLE_META_MAX));
        put_varint(&mut self.rows, dv);
        self.prev = Some((u, v));
        self.count += 1;
    }

    /// Rows pushed so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no row has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Encoded row bytes buffered so far (excluding the header).
    pub fn byte_len(&self) -> usize {
        self.rows.len()
    }

    /// Finishes the stream, producing the full unframed codec payload
    /// (header + format byte + rows).
    pub fn finish(self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + 1 + self.rows.len());
        put_header(&mut buf, RecordKind::TuplesV2 as u16, self.count);
        buf.put_u8(TUPLE_STREAM_FORMAT);
        buf.put_slice(&self.rows);
        buf
    }
}

/// Encodes a sorted tuple slice into its unframed codec payload
/// (convenience over [`TupleStreamWriter`]; same bytes).
pub fn encode_tuples(rows: &[TupleRow]) -> BytesMut {
    let mut w = TupleStreamWriter::new();
    for &(u, v, meta) in rows {
        w.push(u, v, meta);
    }
    w.finish()
}

/// Which on-storage format a tuple stream was written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TupleFormat {
    /// Varint-delta rows with packed meta nibbles.
    V2 { format_byte: u8 },
    /// Legacy fixed-width pairs ([`RecordKind::Tuples`]); meta reads
    /// as 0.
    Legacy,
}

/// Parses the header of a tuple stream payload, dispatching on the
/// record kind, and returns the format plus the declared row count and
/// the offset of the first row byte.
fn take_tuple_header(bytes: &[u8], path: &Path) -> Result<(TupleFormat, u64, usize), StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::corrupt(
            path,
            format!(
                "file shorter than header ({} < {HEADER_LEN} bytes)",
                bytes.len()
            ),
        ));
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::corrupt(
            path,
            format!("bad magic {:?}", &bytes[0..4]),
        ));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(StoreError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
            expected: VERSION,
        });
    }
    let kind = u16::from_le_bytes([bytes[6], bytes[7]]);
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if kind == RecordKind::Tuples as u16 {
        return Ok((TupleFormat::Legacy, count, HEADER_LEN));
    }
    if kind != RecordKind::TuplesV2 as u16 {
        return Err(StoreError::corrupt(
            path,
            format!(
                "record kind {kind} found, expected a tuple stream ({} or legacy {})",
                RecordKind::TuplesV2 as u16,
                RecordKind::Tuples as u16
            ),
        ));
    }
    let Some(&format_byte) = bytes.get(HEADER_LEN) else {
        return Err(StoreError::corrupt(
            path,
            "tuple stream missing format byte",
        ));
    };
    if format_byte != TUPLE_STREAM_FORMAT {
        return Err(StoreError::corrupt(
            path,
            format!(
                "unsupported tuple stream format {format_byte}, expected {TUPLE_STREAM_FORMAT}"
            ),
        ));
    }
    Ok((TupleFormat::V2 { format_byte }, count, HEADER_LEN + 1))
}

/// Outcome of one [`TupleDecoder::try_next`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStep {
    /// One row decoded; the cursor advanced past it.
    Row(TupleRow),
    /// The buffer ends mid-row; the cursor did not move. Feed more
    /// bytes (or report truncation if the source is exhausted).
    NeedMore,
    /// Every declared row has been decoded.
    Done,
}

/// The chunk-fed tuple decode state machine: O(1) state (row count,
/// previous key, format), pulled over any byte window the caller
/// manages. This is what lets a k-way merge stream a spill run
/// through a **bounded** refill buffer — the decoder never requires
/// the whole payload at once, and a row straddling a chunk boundary
/// simply reports [`DecodeStep::NeedMore`] without consuming bytes.
///
/// Accepts both the v2 varint-delta format and legacy fixed-width
/// pair streams (meta nibble 0).
#[derive(Debug, Clone)]
pub struct TupleDecoder {
    format: TupleFormat,
    remaining: u64,
    prev: Option<(u32, u32)>,
}

impl TupleDecoder {
    /// Parses the stream header from the first bytes of a tuple
    /// stream, returning the decoder and the number of header bytes
    /// consumed. The slice must cover the whole header
    /// ([`HEADER_LEN`]` + 1` bytes for v2) — any sane refill chunk
    /// does.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for a malformed header or unknown
    /// format, [`StoreError::VersionMismatch`] for a foreign codec
    /// version.
    pub fn from_stream_start(bytes: &[u8], path: &Path) -> Result<(Self, usize), StoreError> {
        let (format, remaining, pos) = take_tuple_header(bytes, path)?;
        Ok((
            TupleDecoder {
                format,
                remaining,
                prev: None,
            },
            pos,
        ))
    }

    /// Rows not yet decoded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Attempts to decode one row from `buf[*pos..]`, advancing `pos`
    /// past it on success. The buffer may end anywhere; trailing bytes
    /// after the last row (e.g. a frame checksum the caller chunked
    /// over) are simply never consumed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on varint overflow or an id
    /// overflowing `u32`.
    pub fn try_next(
        &mut self,
        buf: &[u8],
        pos: &mut usize,
        path: &Path,
    ) -> Result<DecodeStep, StoreError> {
        if self.remaining == 0 {
            return Ok(DecodeStep::Done);
        }
        let row = match self.format {
            TupleFormat::Legacy => {
                if buf.len().saturating_sub(*pos) < 8 {
                    return Ok(DecodeStep::NeedMore);
                }
                let u = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
                let v = u32::from_le_bytes(buf[*pos + 4..*pos + 8].try_into().expect("4 bytes"));
                *pos += 8;
                (u, v, 0u8)
            }
            TupleFormat::V2 { .. } => {
                let start = *pos;
                let Some(head) = try_varint(buf, pos, path)? else {
                    return Ok(DecodeStep::NeedMore);
                };
                let Some(dv) = try_varint(buf, pos, path)? else {
                    *pos = start;
                    return Ok(DecodeStep::NeedMore);
                };
                let meta = (head & u64::from(TUPLE_META_MAX)) as u8;
                let du = head >> 4;
                // Corrupt deltas must surface as errors, never wrap:
                // all id reconstruction is checked arithmetic.
                let overflow = || StoreError::corrupt(path, "tuple delta overflows the id space");
                let add1 = |base: u64, delta: u64| {
                    base.checked_add(1)
                        .and_then(|x| x.checked_add(delta))
                        .ok_or_else(overflow)
                };
                let (u, v) = match self.prev {
                    Some((pu, pv)) => {
                        let u = u64::from(pu).checked_add(du).ok_or_else(overflow)?;
                        let v = if du == 0 {
                            add1(u64::from(pv), dv)?
                        } else {
                            add1(u, dv)?
                        };
                        (u, v)
                    }
                    None => {
                        let u = du;
                        (u, add1(u, dv)?)
                    }
                };
                // v > u by construction, so this bounds u as well.
                if v > u64::from(u32::MAX) {
                    return Err(StoreError::corrupt(
                        path,
                        format!("tuple id {v} overflows u32"),
                    ));
                }
                (u as u32, v as u32, meta)
            }
        };
        self.prev = Some((row.0, row.1));
        self.remaining -= 1;
        Ok(DecodeStep::Row(row))
    }
}

/// Incremental decoder over one **complete** tuple stream payload:
/// yields rows one at a time with O(1) decode state (a
/// [`TupleDecoder`] plus a cursor). For bounded-buffer streaming over
/// partial payloads, drive the [`TupleDecoder`] directly.
#[derive(Debug)]
pub struct TupleStreamReader {
    bytes: Vec<u8>,
    pos: usize,
    decoder: TupleDecoder,
    path: std::path::PathBuf,
}

impl TupleStreamReader {
    /// Wraps a tuple stream payload (as returned by a backend read).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] for a malformed header or an
    /// unknown format, [`StoreError::VersionMismatch`] for a foreign
    /// codec version.
    pub fn new(bytes: Vec<u8>, path: &Path) -> Result<Self, StoreError> {
        let (decoder, pos) = TupleDecoder::from_stream_start(&bytes, path)?;
        Ok(TupleStreamReader {
            bytes,
            pos,
            decoder,
            path: path.to_path_buf(),
        })
    }

    /// Rows not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.decoder.remaining()
    }

    /// Yields the next row, or `None` at end of stream.
    ///
    /// Named like — but deliberately not implementing — the iterator
    /// protocol: decode errors must surface per row, so the signature
    /// is `Result<Option<...>>` rather than `Option<Result<...>>`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on truncation, trailing
    /// garbage, varint overflow, or an id overflowing `u32`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<TupleRow>, StoreError> {
        match self
            .decoder
            .try_next(&self.bytes, &mut self.pos, &self.path)?
        {
            DecodeStep::Row(row) => Ok(Some(row)),
            DecodeStep::NeedMore => {
                // The payload is complete by contract, so running out
                // of bytes mid-row is corruption, not back-pressure.
                Err(StoreError::corrupt(&self.path, "truncated tuple row"))
            }
            DecodeStep::Done => {
                if self.pos != self.bytes.len() {
                    return Err(StoreError::corrupt(
                        &self.path,
                        format!(
                            "{} trailing bytes after the last row",
                            self.bytes.len() - self.pos
                        ),
                    ));
                }
                Ok(None)
            }
        }
    }
}

/// Decodes a whole tuple stream payload — v2 or legacy — into rows.
/// Takes the payload by value (backend reads already hand over an
/// owned buffer; no copy is made).
///
/// # Errors
///
/// Same as [`TupleStreamReader::next`].
pub fn decode_tuples(bytes: Vec<u8>, path: &Path) -> Result<Vec<TupleRow>, StoreError> {
    // The legacy fast path reuses the fixed-width pair decoder.
    if let Ok((TupleFormat::Legacy, _, _)) = take_tuple_header(&bytes, path) {
        return Ok(decode_pairs(&bytes, RecordKind::Tuples, path)?
            .into_iter()
            .map(|(u, v)| (u, v, 0))
            .collect());
    }
    let mut reader = TupleStreamReader::new(bytes, path)?;
    let mut rows = Vec::with_capacity(reader.remaining() as usize);
    while let Some(row) = reader.next()? {
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_file::encode_pairs;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("/test/tuples")
    }

    #[test]
    fn round_trips_and_is_compact() {
        let rows: Vec<TupleRow> = (0..500u32)
            .flat_map(|u| (u + 1..u + 4).map(move |v| (u, v, ((u + v) % 16) as u8)))
            .collect();
        let encoded = encode_tuples(&rows);
        assert_eq!(decode_tuples(encoded.to_vec(), &p()).unwrap(), rows);
        // Dense rows must beat the fixed-width 8 B/pair by a wide margin.
        let fixed = HEADER_LEN + rows.len() * 8;
        assert!(
            encoded.len() * 2 < fixed,
            "v2 stream ({} B) not compact vs fixed ({fixed} B)",
            encoded.len()
        );
    }

    #[test]
    fn empty_and_singleton_round_trip() {
        assert!(decode_tuples(encode_tuples(&[]).to_vec(), &p())
            .unwrap()
            .is_empty());
        let one = vec![(7u32, 9u32, 0x0Fu8)];
        assert_eq!(
            decode_tuples(encode_tuples(&one).to_vec(), &p()).unwrap(),
            one
        );
    }

    #[test]
    fn extreme_ids_round_trip() {
        let rows = vec![
            (0u32, 1u32, 0u8),
            (0, u32::MAX, 5),
            (1, 2, 15),
            (u32::MAX - 1, u32::MAX, 3),
        ];
        assert_eq!(
            decode_tuples(encode_tuples(&rows).to_vec(), &p()).unwrap(),
            rows
        );
    }

    #[test]
    fn reader_streams_incrementally() {
        let rows = vec![(1u32, 2u32, 1u8), (1, 5, 2), (3, 4, 12)];
        let mut r = TupleStreamReader::new(encode_tuples(&rows).to_vec(), &p()).unwrap();
        assert_eq!(r.remaining(), 3);
        for &row in &rows {
            assert_eq!(r.next().unwrap(), Some(row));
        }
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.next().unwrap(), None);
    }

    #[test]
    fn legacy_pair_streams_decode_with_empty_meta() {
        let pairs = vec![(0u32, 3u32), (2, 9), (7, 8)];
        let legacy = encode_pairs(RecordKind::Tuples, &pairs);
        let rows = decode_tuples(legacy.to_vec(), &p()).unwrap();
        assert_eq!(rows, vec![(0, 3, 0), (2, 9, 0), (7, 8, 0)]);
        let mut reader = TupleStreamReader::new(legacy.to_vec(), &p()).unwrap();
        assert_eq!(reader.next().unwrap(), Some((0, 3, 0)));
    }

    #[test]
    fn truncation_and_trailing_garbage_are_corrupt() {
        let rows = vec![(1u32, 2u32, 1u8), (3, 4, 2)];
        let encoded = encode_tuples(&rows).to_vec();
        assert!(matches!(
            decode_tuples(encoded[..encoded.len() - 1].to_vec(), &p()),
            Err(StoreError::Corrupt { .. })
        ));
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(matches!(
            decode_tuples(padded, &p()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn unknown_format_byte_is_rejected() {
        let mut encoded = encode_tuples(&[(1, 2, 0)]).to_vec();
        encoded[HEADER_LEN] = 9;
        let err = decode_tuples(encoded, &p()).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { detail, .. } if detail.contains("format")),
            "{err}"
        );
    }

    /// Corrupt streams with astronomically large deltas error instead
    /// of wrapping (release) or panicking (debug).
    #[test]
    fn oversized_deltas_are_corrupt_not_overflow() {
        // Header declaring 2 rows; first row normal, second row's
        // deltas push the reconstructed ids past u64.
        let mut buf = BytesMut::new();
        put_header(&mut buf, RecordKind::TuplesV2 as u16, 2);
        buf.put_u8(TUPLE_STREAM_FORMAT);
        put_varint(&mut buf, 0 << 4); // row 1: u = 0
        put_varint(&mut buf, 0); // v = 1
        put_varint(&mut buf, u64::MAX); // row 2: du = u64::MAX >> 4
        put_varint(&mut buf, u64::MAX); // dv pushes v past u64
        let err = decode_tuples(buf.to_vec(), &p()).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { detail, .. } if detail.contains("id space")),
            "{err}"
        );
        // A delta landing just past u32 still errors via the id check.
        let mut buf = BytesMut::new();
        put_header(&mut buf, RecordKind::TuplesV2 as u16, 1);
        buf.put_u8(TUPLE_STREAM_FORMAT);
        put_varint(&mut buf, u64::from(u32::MAX) << 4); // u = u32::MAX
        put_varint(&mut buf, 0); // v = u32::MAX + 1
        let err = decode_tuples(buf.to_vec(), &p()).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { detail, .. } if detail.contains("overflows u32")),
            "{err}"
        );
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let foreign = encode_pairs(RecordKind::InEdges, &[(1, 2)]);
        assert!(matches!(
            decode_tuples(foreign.to_vec(), &p()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn varint_boundaries_round_trip() {
        // Deltas straddling the 1/2/3-byte varint boundaries.
        let rows = vec![
            (0u32, 128u32, 0u8),
            (0, 129, 0),
            (127, 16384, 1),
            (128, 16385, 2),
            (16384, 2097152, 3),
        ];
        assert_eq!(
            decode_tuples(encode_tuples(&rows).to_vec(), &p()).unwrap(),
            rows
        );
    }
}
