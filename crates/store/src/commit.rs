//! Generation-stamped atomic iteration commits.
//!
//! The engine mutates its committed streams (meta, assignment,
//! profiles, KNN slices) **in place** during an iteration, so a crash
//! mid-iteration would otherwise leave a working directory at a torn
//! generation. This module makes iterations atomic with an undo-log
//! protocol built from the primitives every [`StorageBackend`] already
//! has:
//!
//! 1. Before the iteration first rewrites a committed stream, its
//!    pre-image is copied to a staged backup
//!    ([`StreamId::Staged`]`(target, epoch)`), tagged with the epoch
//!    (committed generation `t`) whose content it preserves
//!    ([`CommitTxn::backup`]). Backups are taken at most once per
//!    target per iteration.
//! 2. The iteration runs, mutating the base streams freely.
//! 3. A single CRC-framed **commit record** ([`CommitRecord`]) is
//!    written under [`StreamId::Commit`], naming the new generation
//!    `t+1` plus the length and CRC-32 of the update-log prefix the
//!    iteration consumed. Writing this record is the atomic step that
//!    makes generation `t+1` durable.
//! 4. The consumed update log is truncated, the record is normalized
//!    to `{t+1, 0, 0}`, and the staged backups are deleted
//!    ([`CommitTxn::commit`]).
//!
//! [`recover`] is the other half of the contract: called on open, it
//! rolls the directory back to the last committed generation —
//! restoring staged pre-images over torn base streams, reconciling the
//! update log (dropping an already-applied prefix, pruning a torn
//! tail at the record boundary), deleting orphaned staged and scratch
//! streams — and is idempotent, so a crash *during recovery* just
//! recovers again.
//!
//! **Legacy layouts:** a working directory written before this
//! protocol existed has no commit record and no staged streams.
//! [`recover`] recognizes that shape and leaves the committed state
//! untouched (beyond scratch GC), so pre-protocol directories still
//! resume.
//!
//! The protocol works identically through a sharding router: staged
//! backups route with their targets, the commit record lives on shard
//! 0, and one [`recover`] call over the router converges every shard
//! to the common committed generation.

use bytes::{Buf, BufMut, BytesMut};

use crate::backend::CommitTarget;
use crate::codec::{need, put_header, take_header};
use crate::crc32::crc32;
use crate::{RecordKind, StorageBackend, StoreError, StreamId};

/// The durable commit record: the single small stream whose (atomic)
/// rewrite flips a working directory's visible generation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitRecord {
    /// The last durably committed iteration (generation `t`).
    pub generation: u64,
    /// Length in bytes of the update-log prefix the committing
    /// iteration applied. Non-zero only in the window between the
    /// commit-record write and the log truncation; recovery uses it to
    /// finish the truncation exactly once.
    pub log_consumed_len: u64,
    /// CRC-32 of that consumed prefix, guarding the truncation against
    /// acting on a log that does not match the record.
    pub log_consumed_crc: u32,
}

impl CommitRecord {
    /// A record naming `generation` with no pending log truncation.
    pub fn clean(generation: u64) -> Self {
        CommitRecord {
            generation,
            log_consumed_len: 0,
            log_consumed_crc: 0,
        }
    }

    /// Encodes the record into its unframed codec payload.
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(16 + 20);
        put_header(&mut buf, RecordKind::Commit as u16, 1);
        buf.put_u64_le(self.generation);
        buf.put_u64_le(self.log_consumed_len);
        buf.put_u32_le(self.log_consumed_crc);
        buf
    }

    /// Decodes a record payload written by [`CommitRecord::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] / [`StoreError::VersionMismatch`]
    /// on malformed content.
    pub fn decode(bytes: &[u8], path: &std::path::Path) -> Result<Self, StoreError> {
        let mut buf = bytes;
        let count = take_header(&mut buf, RecordKind::Commit as u16, path)?;
        if count != 1 {
            return Err(StoreError::corrupt(
                path,
                format!("commit record count {count}, expected 1"),
            ));
        }
        need(&buf, 20, "commit record", path)?;
        Ok(CommitRecord {
            generation: buf.get_u64_le(),
            log_consumed_len: buf.get_u64_le(),
            log_consumed_crc: buf.get_u32_le(),
        })
    }
}

/// Writes the commit record (framed like every stream).
///
/// # Errors
///
/// Returns [`StoreError::Io`] on storage failure.
pub fn write_commit(b: &dyn StorageBackend, record: &CommitRecord) -> Result<(), StoreError> {
    b.write(StreamId::Commit, &record.encode())
}

/// What reading the commit record found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitState {
    /// No commit record: a legacy (pre-protocol) layout, or a fresh
    /// directory.
    Absent,
    /// A commit record exists but fails its frame or codec checks — a
    /// crash tore the record rewrite itself.
    Torn,
    /// An intact record.
    Valid(CommitRecord),
}

/// Reads the commit record, classifying torn records instead of
/// failing on them (recovery treats a torn record as "the commit never
/// became durable").
///
/// # Errors
///
/// Returns [`StoreError::Io`] only on genuine storage failure.
pub fn read_commit_state(b: &dyn StorageBackend) -> Result<CommitState, StoreError> {
    if !b.exists(StreamId::Commit) {
        return Ok(CommitState::Absent);
    }
    match b.read(StreamId::Commit) {
        Ok(payload) => Ok(
            match CommitRecord::decode(&payload, &b.describe(StreamId::Commit)) {
                Ok(rec) => CommitState::Valid(rec),
                Err(_) => CommitState::Torn,
            },
        ),
        Err(StoreError::Corrupt { .. }) | Err(StoreError::VersionMismatch { .. }) => {
            Ok(CommitState::Torn)
        }
        Err(e) => Err(e),
    }
}

/// One iteration's undo log: tracks which committed streams have been
/// backed up this iteration, takes each backup exactly once, and
/// finalizes the iteration with the commit sequence.
#[derive(Debug)]
pub struct CommitTxn {
    epoch: u64,
    backed_up: Vec<CommitTarget>,
}

impl CommitTxn {
    /// Opens a transaction for the iteration moving `epoch` (the
    /// currently committed generation) to `epoch + 1`.
    pub fn new(epoch: u64) -> Self {
        CommitTxn {
            epoch,
            backed_up: Vec::new(),
        }
    }

    /// The committed generation whose pre-images this transaction
    /// stages.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Copies `target`'s current content to its staged backup, once
    /// per transaction (repeat calls are free no-ops). Must be called
    /// before the iteration first rewrites `target` in place.
    ///
    /// # Errors
    ///
    /// Returns the underlying storage error.
    pub fn backup(
        &mut self,
        b: &dyn StorageBackend,
        target: CommitTarget,
    ) -> Result<(), StoreError> {
        if self.backed_up.contains(&target) {
            return Ok(());
        }
        b.copy_stream(target.stream(), StreamId::Staged(target, self.epoch))?;
        self.backed_up.push(target);
        Ok(())
    }

    /// Finalizes the iteration: writes the commit record for
    /// `generation` (carrying the consumed update-log length and CRC),
    /// truncates the consumed log, normalizes the record, and deletes
    /// this transaction's staged backups. A crash at any point inside
    /// this sequence is repaired by [`recover`] without losing the
    /// commit (once the first record write landed) or the rollback
    /// (before it landed).
    ///
    /// # Errors
    ///
    /// Returns the underlying storage error.
    pub fn commit(
        mut self,
        b: &dyn StorageBackend,
        generation: u64,
        log_consumed: &[u8],
    ) -> Result<(), StoreError> {
        write_commit(
            b,
            &CommitRecord {
                generation,
                log_consumed_len: log_consumed.len() as u64,
                log_consumed_crc: crc32(log_consumed),
            },
        )?;
        if !log_consumed.is_empty() {
            b.truncate_updates()?;
            write_commit(b, &CommitRecord::clean(generation))?;
        }
        self.backed_up.sort_unstable();
        for target in self.backed_up.drain(..) {
            b.delete(StreamId::Staged(target, self.epoch))?;
        }
        Ok(())
    }
}

/// What [`recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// The committed generation the directory converged to; `None` for
    /// a legacy (pre-protocol) layout, which has no commit record.
    pub committed_generation: Option<u64>,
    /// Whether any staged pre-image was restored over its base stream
    /// (i.e. a torn iteration was rolled back).
    pub rolled_back: bool,
    /// Staged backups restored over their targets.
    pub restored: u64,
    /// Staged backups deleted (restored ones included).
    pub staged_deleted: u64,
    /// Staged backups that were themselves torn (their targets were
    /// never mutated, so they are dropped without a restore).
    pub torn_backups: u64,
    /// Per-iteration scratch streams (tuple buckets, spill runs,
    /// exchange runs) garbage-collected.
    pub scratch_deleted: u64,
    /// Whether an applied-but-untruncated update-log prefix was
    /// truncated to finish an interrupted commit.
    pub log_truncated: bool,
    /// Detail of a torn update-log tail dropped at the last record
    /// boundary, when one was found.
    pub log_drop_detail: Option<String>,
}

/// Rolls a working directory back to its last committed generation.
///
/// Safe to call on any directory — cleanly closed, torn mid-iteration,
/// torn mid-commit, torn mid-recovery, or a legacy pre-protocol layout
/// — and idempotent. See the module docs for the full contract. When
/// `b` is a sharding router this converges every shard to the common
/// committed generation, since staged streams and the commit record
/// route like any other stream.
///
/// # Errors
///
/// Returns the underlying storage error.
pub fn recover(b: &dyn StorageBackend) -> Result<RecoveryReport, StoreError> {
    let mut report = RecoveryReport::default();
    let streams = b.list()?;
    let mut staged: Vec<(CommitTarget, u64)> = streams
        .iter()
        .filter_map(|s| match s {
            StreamId::Staged(t, e) => Some((*t, *e)),
            _ => None,
        })
        .collect();
    staged.sort_unstable();

    let restore =
        |report: &mut RecoveryReport, target: CommitTarget, epoch: u64| -> Result<(), StoreError> {
            match b.read(StreamId::Staged(target, epoch)) {
                Ok(bytes) => {
                    b.write(target.stream(), &bytes)?;
                    b.stats().record_rollback();
                    report.restored += 1;
                    report.rolled_back = true;
                }
                // A torn backup means the crash hit the backup copy
                // itself — before its target was first mutated, by the
                // protocol's ordering — so the base stream is still the
                // committed pre-image and needs no restore.
                Err(StoreError::Corrupt { .. }) => report.torn_backups += 1,
                Err(e) => return Err(e),
            }
            Ok(())
        };

    match read_commit_state(b)? {
        CommitState::Valid(rec) => {
            report.committed_generation = Some(rec.generation);
            // Staged backups tagged with the committed generation are
            // the undo log of an iteration that never committed:
            // restore them. Backups under any other epoch are leftovers
            // of an iteration that *did* commit (crash before backup
            // deletion): drop them.
            for &(target, epoch) in &staged {
                if epoch == rec.generation {
                    restore(&mut report, target, epoch)?;
                }
                b.delete(StreamId::Staged(target, epoch))?;
                report.staged_deleted += 1;
            }
            // A non-zero consumed length marks a crash inside the
            // commit sequence, after the record write but before the
            // log truncation: finish it, guarded by the CRC so the
            // truncation never acts on a log it does not match.
            if rec.log_consumed_len > 0 {
                let log = b.read_updates()?;
                let len = rec.log_consumed_len as usize;
                if log.len() >= len && crc32(&log[..len]) == rec.log_consumed_crc {
                    b.truncate_updates()?;
                    if log.len() > len {
                        b.append_updates(&log[len..])?;
                    }
                    report.log_truncated = true;
                }
                write_commit(b, &CommitRecord::clean(rec.generation))?;
            }
        }
        state @ (CommitState::Absent | CommitState::Torn) => {
            if let Some(epoch) = staged.iter().map(|&(_, e)| e).max() {
                // Staged backups but no (intact) commit record: a
                // crash tore the record rewrite itself, or hit the
                // first protocol iteration over a legacy layout. The
                // commit never became durable either way — roll back
                // to the staged epoch.
                for &(target, e) in &staged {
                    if e == epoch {
                        restore(&mut report, target, e)?;
                    }
                    b.delete(StreamId::Staged(target, e))?;
                    report.staged_deleted += 1;
                }
                write_commit(b, &CommitRecord::clean(epoch))?;
                report.committed_generation = Some(epoch);
            } else if state == CommitState::Torn {
                // A torn record with nothing staged: the very first
                // record write (after initial construction) tore. The
                // layout is otherwise legacy-equivalent; drop the torn
                // record and let the next iteration re-create it.
                b.delete(StreamId::Commit)?;
            }
            // Absent with nothing staged: a legacy pre-protocol
            // layout (or fresh directory). Leave the committed state
            // untouched.
        }
    }

    // A torn tail on the durable update log — a crash mid-append — is
    // dropped at the last whole-record boundary, never silently
    // wrapped into a decode error on the next drain.
    report.log_drop_detail = b.repair_update_log()?;

    // Per-iteration scratch from the interrupted iteration (tuple
    // buckets, spill runs, exchange runs) is dead weight the next
    // iteration would clear anyway — but a *resumed* directory must
    // list identically to a never-crashed one, so GC it now.
    report.scratch_deleted = streams.iter().filter(|s| s.is_tuple_scratch()).count() as u64;
    if report.scratch_deleted > 0 {
        b.clear_tuples()?;
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{self, DiskBackend, MemBackend};
    use crate::record_file;
    use crate::WorkingDir;
    use std::path::PathBuf;

    fn backends() -> Vec<(Box<dyn StorageBackend>, Option<WorkingDir>)> {
        let disk = DiskBackend::temp("commit_tests").unwrap();
        let wd = disk.working_dir().unwrap().clone();
        vec![
            (Box::new(disk) as Box<dyn StorageBackend>, Some(wd)),
            (Box::new(MemBackend::new()), None),
        ]
    }

    fn destroy(wd: Option<WorkingDir>) {
        if let Some(wd) = wd {
            wd.destroy().unwrap();
        }
    }

    fn seed_committed_state(b: &dyn StorageBackend, gen: u64) {
        backend::write_meta(b, &[(1, gen)]).unwrap();
        backend::write_pairs(b, StreamId::Assignment, &[(0, 0), (1, 1)]).unwrap();
        backend::write_user_lists(b, StreamId::Profiles(0), &[(0, vec![(1, 1.0)])]).unwrap();
        backend::write_scored_pairs(b, StreamId::KnnSlice(0), &[(0, 1, 0.5)]).unwrap();
        write_commit(b, &CommitRecord::clean(gen)).unwrap();
    }

    #[test]
    fn commit_record_round_trips_and_rejects_garbage() {
        let rec = CommitRecord {
            generation: 42,
            log_consumed_len: 137,
            log_consumed_crc: 0xdeadbeef,
        };
        let path = PathBuf::from("/test/commit.bin");
        assert_eq!(CommitRecord::decode(&rec.encode(), &path).unwrap(), rec);
        assert!(CommitRecord::decode(&rec.encode()[..20], &path).is_err());
        assert!(CommitRecord::decode(b"junk", &path).is_err());
    }

    #[test]
    fn clean_directory_recovers_to_itself() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 3);
            let before: Vec<u8> = b.read(StreamId::Profiles(0)).unwrap();
            let report = recover(b).unwrap();
            assert_eq!(report.committed_generation, Some(3));
            assert!(!report.rolled_back);
            assert_eq!(report.staged_deleted, 0);
            assert!(report.log_drop_detail.is_none());
            assert_eq!(b.read(StreamId::Profiles(0)).unwrap(), before);
            // Idempotent.
            assert_eq!(recover(b).unwrap(), report);
            destroy(wd);
        }
    }

    #[test]
    fn torn_iteration_rolls_back_to_the_staged_epoch() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 1);
            let committed = b.read(StreamId::Profiles(0)).unwrap();
            // An iteration starts: backs up, then tears mid-rewrite.
            let mut txn = CommitTxn::new(1);
            txn.backup(b, CommitTarget::Profiles(0)).unwrap();
            txn.backup(b, CommitTarget::Profiles(0)).unwrap(); // idempotent
            backend::write_user_lists(b, StreamId::Profiles(0), &[(0, vec![(9, 9.0)])]).unwrap();
            drop(txn); // crash
            let report = recover(b).unwrap();
            assert!(report.rolled_back);
            assert_eq!(report.restored, 1);
            assert_eq!(report.committed_generation, Some(1));
            assert_eq!(b.read(StreamId::Profiles(0)).unwrap(), committed);
            assert!(!b.exists(StreamId::Staged(CommitTarget::Profiles(0), 1)));
            assert_eq!(b.stats().snapshot().rollbacks, 1);
            destroy(wd);
        }
    }

    #[test]
    fn committed_iteration_drops_stale_backups_without_rollback() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 1);
            let mut txn = CommitTxn::new(1);
            txn.backup(b, CommitTarget::Profiles(0)).unwrap();
            let new_rows = vec![(0u32, vec![(9u32, 9.0f32)])];
            backend::write_user_lists(b, StreamId::Profiles(0), &new_rows).unwrap();
            // Commit lands, crash before the backup deletion: simulate
            // by writing the record but keeping the staged stream.
            write_commit(b, &CommitRecord::clean(2)).unwrap();
            let report = recover(b).unwrap();
            assert!(!report.rolled_back);
            assert_eq!(report.staged_deleted, 1);
            assert_eq!(report.committed_generation, Some(2));
            assert_eq!(
                backend::read_user_lists(b, StreamId::Profiles(0)).unwrap(),
                new_rows
            );
            destroy(wd);
        }
    }

    #[test]
    fn torn_commit_record_rolls_back() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 5);
            let committed = b.read(StreamId::KnnSlice(0)).unwrap();
            let mut txn = CommitTxn::new(5);
            txn.backup(b, CommitTarget::KnnSlice(0)).unwrap();
            backend::write_scored_pairs(b, StreamId::KnnSlice(0), &[(1, 0, 0.9)]).unwrap();
            // The record rewrite itself tears.
            let framed = record_file::frame(&CommitRecord::clean(6).encode());
            b.write_raw(StreamId::Commit, &framed[..framed.len() - 7])
                .unwrap();
            let report = recover(b).unwrap();
            assert!(report.rolled_back);
            assert_eq!(report.committed_generation, Some(5));
            assert_eq!(b.read(StreamId::KnnSlice(0)).unwrap(), committed);
            // The record was re-created clean at the rolled-back epoch.
            assert_eq!(
                read_commit_state(b).unwrap(),
                CommitState::Valid(CommitRecord::clean(5))
            );
            destroy(wd);
        }
    }

    #[test]
    fn torn_backup_is_dropped_without_restore() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 2);
            let committed = b.read(StreamId::Profiles(0)).unwrap();
            // The crash hit the backup copy itself: target unmutated.
            let framed = record_file::frame(&committed);
            b.write_raw(
                StreamId::Staged(CommitTarget::Profiles(0), 2),
                &framed[..framed.len() / 3],
            )
            .unwrap();
            let report = recover(b).unwrap();
            assert!(!report.rolled_back);
            assert_eq!(report.torn_backups, 1);
            assert_eq!(report.staged_deleted, 1);
            assert_eq!(b.read(StreamId::Profiles(0)).unwrap(), committed);
            destroy(wd);
        }
    }

    #[test]
    fn interrupted_log_truncation_is_finished_exactly_once() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 0);
            let consumed = b"0123456789abcdef".to_vec();
            b.append_updates(&consumed).unwrap();
            // Crash after the commit-record write, before truncation.
            write_commit(
                b,
                &CommitRecord {
                    generation: 1,
                    log_consumed_len: consumed.len() as u64,
                    log_consumed_crc: crc32(&consumed),
                },
            )
            .unwrap();
            let report = recover(b).unwrap();
            assert!(report.log_truncated);
            assert!(b.read_updates().unwrap().is_empty());
            assert_eq!(
                read_commit_state(b).unwrap(),
                CommitState::Valid(CommitRecord::clean(1))
            );
            // Re-recovery does not truncate again.
            let report2 = recover(b).unwrap();
            assert!(!report2.log_truncated);
            destroy(wd);
        }
    }

    #[test]
    fn mismatched_log_is_left_alone() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 0);
            // The record claims a consumed prefix the log does not
            // carry (truncation already happened; fresh bytes landed).
            write_commit(
                b,
                &CommitRecord {
                    generation: 1,
                    log_consumed_len: 999,
                    log_consumed_crc: 7,
                },
            )
            .unwrap();
            let report = recover(b).unwrap();
            assert!(!report.log_truncated);
            assert_eq!(
                read_commit_state(b).unwrap(),
                CommitState::Valid(CommitRecord::clean(1))
            );
            destroy(wd);
        }
    }

    #[test]
    fn legacy_layout_is_left_untouched() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            // Pre-protocol shape: committed streams, no commit record.
            backend::write_meta(b, &[(1, 4)]).unwrap();
            backend::write_user_lists(b, StreamId::Profiles(0), &[(0, vec![(1, 1.0)])]).unwrap();
            let before = b.read(StreamId::Profiles(0)).unwrap();
            let report = recover(b).unwrap();
            assert_eq!(report.committed_generation, None);
            assert!(!report.rolled_back);
            assert!(!b.exists(StreamId::Commit), "legacy stays legacy");
            assert_eq!(b.read(StreamId::Profiles(0)).unwrap(), before);
            destroy(wd);
        }
    }

    #[test]
    fn recovery_gcs_scratch_streams() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 1);
            backend::write_pairs(b, StreamId::TupleBucket(0, 1), &[(0, 1)]).unwrap();
            backend::write_pairs(b, StreamId::TupleRun(0, 1, 0), &[(0, 1)]).unwrap();
            backend::write_pairs(b, StreamId::ExchangeRun(1, 0, 2), &[(0, 1)]).unwrap();
            let report = recover(b).unwrap();
            assert_eq!(report.scratch_deleted, 3);
            assert!(!b.list().unwrap().iter().any(|s| s.is_tuple_scratch()));
            destroy(wd);
        }
    }

    #[test]
    fn torn_log_tail_is_pruned_and_reported() {
        use knn_graph::UserId;
        use knn_sim::{ItemId, ProfileDelta};
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 1);
            backend::append_delta(b, &ProfileDelta::set(UserId::new(0), ItemId::new(3), 1.5))
                .unwrap();
            let whole = b.read_updates().unwrap();
            // A torn append: half of a second record.
            let mut torn = BytesMut::new();
            crate::delta_log::encode_delta(
                &mut torn,
                &ProfileDelta::set(UserId::new(1), ItemId::new(4), 2.5),
            );
            b.append_updates(&torn[..torn.len() - 3]).unwrap();
            let report = recover(b).unwrap();
            let detail = report.log_drop_detail.expect("torn tail reported");
            assert!(detail.contains("dropped"), "{detail}");
            assert_eq!(b.read_updates().unwrap(), whole, "whole records kept");
            // The pruned log decodes strictly.
            assert_eq!(backend::read_deltas(b).unwrap().len(), 1);
            destroy(wd);
        }
    }

    #[test]
    fn txn_commit_sequence_leaves_a_clean_directory() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            seed_committed_state(b, 0);
            let log = b"some-consumed-log-bytes".to_vec();
            b.append_updates(&log).unwrap();
            let mut txn = CommitTxn::new(0);
            txn.backup(b, CommitTarget::Meta).unwrap();
            txn.backup(b, CommitTarget::Profiles(0)).unwrap();
            backend::write_meta(b, &[(1, 1)]).unwrap();
            txn.commit(b, 1, &log).unwrap();
            assert_eq!(
                read_commit_state(b).unwrap(),
                CommitState::Valid(CommitRecord::clean(1))
            );
            assert!(b.read_updates().unwrap().is_empty());
            assert!(!b
                .list()
                .unwrap()
                .iter()
                .any(|s| matches!(s, StreamId::Staged(..))));
            destroy(wd);
        }
    }
}
