//! The on-disk profile-update queue (the paper's queue `q`).
//!
//! Updates arriving during iteration `t` are appended here and only
//! folded into the profile set at the end of the iteration (phase 5).
//! The log is append-only during an iteration and truncated after it is
//! drained.

use bytes::{Buf, BufMut, BytesMut};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use knn_graph::UserId;
use knn_sim::{DeltaOp, ItemId, Profile, ProfileDelta};

use crate::codec::need;
use crate::{IoStats, StoreError};

const TAG_SET: u8 = 0;
const TAG_REMOVE: u8 = 1;
const TAG_REPLACE: u8 = 2;
const TAG_CLEAR: u8 = 3;

/// An append-only on-disk log of [`ProfileDelta`]s.
///
/// ```
/// use knn_graph::UserId;
/// use knn_sim::{ItemId, ProfileDelta};
/// use knn_store::{delta_log::DeltaLog, IoStats, WorkingDir};
///
/// # fn main() -> Result<(), knn_store::StoreError> {
/// let wd = WorkingDir::temp("delta_log_doc")?;
/// let stats = IoStats::new();
/// let mut log = DeltaLog::open(wd.updates_path())?;
/// log.append(&ProfileDelta::set(UserId::new(3), ItemId::new(7), 4.5), &stats)?;
/// let all = log.read_all(&stats)?;
/// assert_eq!(all.len(), 1);
/// log.truncate()?;
/// assert!(log.read_all(&stats)?.is_empty());
/// # wd.destroy()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeltaLog {
    path: PathBuf,
}

impl DeltaLog {
    /// Opens (creating if absent) a delta log at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the file cannot be created.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let path = path.into();
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io(&path, e))?;
        Ok(DeltaLog { path })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one delta (durably written before returning).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on write failure.
    pub fn append(&mut self, delta: &ProfileDelta, stats: &IoStats) -> Result<(), StoreError> {
        let mut buf = BytesMut::with_capacity(32);
        encode_delta(&mut buf, delta);
        let mut file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreError::io(&self.path, e))?;
        file.write_all(&buf)
            .map_err(|e| StoreError::io(&self.path, e))?;
        stats.record_write(buf.len() as u64);
        Ok(())
    }

    /// Reads every delta currently in the log, in append order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on a malformed record and
    /// [`StoreError::Io`] on read failure.
    pub fn read_all(&self, stats: &IoStats) -> Result<Vec<ProfileDelta>, StoreError> {
        let bytes = std::fs::read(&self.path).map_err(|e| StoreError::io(&self.path, e))?;
        stats.record_read(bytes.len() as u64);
        decode_deltas(&bytes, &self.path)
    }

    /// Number of queued deltas (reads the log).
    ///
    /// # Errors
    ///
    /// Same as [`DeltaLog::read_all`].
    pub fn len(&self, stats: &IoStats) -> Result<usize, StoreError> {
        Ok(self.read_all(stats)?.len())
    }

    /// Whether the log holds no deltas (cheap file-size check).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if metadata cannot be read.
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        let meta = std::fs::metadata(&self.path).map_err(|e| StoreError::io(&self.path, e))?;
        Ok(meta.len() == 0)
    }

    /// Empties the log (after phase 5 has applied it).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on failure.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        std::fs::write(&self.path, []).map_err(|e| StoreError::io(&self.path, e))
    }
}

/// Encodes one delta in the log's wire format (the format is shared by
/// every storage backend's update log, so a disk log written before the
/// backend abstraction existed still decodes).
pub fn encode_delta(buf: &mut BytesMut, delta: &ProfileDelta) {
    buf.put_u32_le(delta.user.raw());
    match &delta.op {
        DeltaOp::Set(item, weight) => {
            buf.put_u8(TAG_SET);
            buf.put_u32_le(item.raw());
            buf.put_f32_le(*weight);
        }
        DeltaOp::Remove(item) => {
            buf.put_u8(TAG_REMOVE);
            buf.put_u32_le(item.raw());
        }
        DeltaOp::Replace(profile) => {
            buf.put_u8(TAG_REPLACE);
            buf.put_u32_le(profile.len() as u32);
            for (item, weight) in profile.iter() {
                buf.put_u32_le(item.raw());
                buf.put_f32_le(weight);
            }
        }
        DeltaOp::Clear => buf.put_u8(TAG_CLEAR),
        // DeltaOp is non_exhaustive upstream; fail loudly if a new op
        // is added without codec support.
        other => unreachable!("unsupported delta op {other:?}"),
    }
}

/// Decodes every delta in `bytes`, in append order. `path` only labels
/// errors.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on a malformed record.
pub fn decode_deltas(bytes: &[u8], path: &Path) -> Result<Vec<ProfileDelta>, StoreError> {
    let mut buf = bytes;
    let mut deltas = Vec::new();
    while buf.has_remaining() {
        deltas.push(decode_delta(&mut buf, path)?);
    }
    Ok(deltas)
}

/// The longest decodable prefix of a (possibly torn) delta log — see
/// [`decode_delta_prefix`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPrefix {
    /// Every delta decoded before the first undecodable record.
    pub deltas: Vec<ProfileDelta>,
    /// Byte length of that valid prefix: the log truncated to
    /// `consumed` bytes re-decodes cleanly to exactly `deltas`.
    pub consumed: usize,
    /// Why the scan stopped short — detail of the first undecodable
    /// record — or `None` when the whole log decoded.
    pub dropped: Option<String>,
}

/// Tolerantly decodes the longest valid prefix of a delta log,
/// stopping at the first record that fails to decode instead of
/// erroring. A crash mid-append leaves a torn final record; recovery
/// uses this to keep every whole record, truncate the log at the last
/// record boundary, and report (never silently swallow) the dropped
/// tail. This function never fails — a fully corrupt log yields an
/// empty prefix.
pub fn decode_delta_prefix(bytes: &[u8], path: &Path) -> DeltaPrefix {
    let mut buf = bytes;
    let mut deltas = Vec::new();
    while buf.has_remaining() {
        // Slices are `Buf` by advancing the reference, so a copy of the
        // reference checkpoints the record boundary.
        let checkpoint = buf;
        match decode_delta(&mut buf, path) {
            Ok(delta) => deltas.push(delta),
            Err(err) => {
                return DeltaPrefix {
                    deltas,
                    consumed: bytes.len() - checkpoint.len(),
                    dropped: Some(format!(
                        "{} trailing bytes dropped at record boundary: {err}",
                        checkpoint.len()
                    )),
                };
            }
        }
    }
    DeltaPrefix {
        deltas,
        consumed: bytes.len(),
        dropped: None,
    }
}

fn decode_delta(buf: &mut impl Buf, path: &Path) -> Result<ProfileDelta, StoreError> {
    need(buf, 5, "delta header", path)?;
    let user = UserId::new(buf.get_u32_le());
    let tag = buf.get_u8();
    let op = match tag {
        TAG_SET => {
            need(buf, 8, "set payload", path)?;
            let item = ItemId::new(buf.get_u32_le());
            let weight = buf.get_f32_le();
            if !weight.is_finite() {
                return Err(StoreError::corrupt(
                    path,
                    format!("non-finite weight {weight} in delta for user {user}"),
                ));
            }
            DeltaOp::Set(item, weight)
        }
        TAG_REMOVE => {
            need(buf, 4, "remove payload", path)?;
            DeltaOp::Remove(ItemId::new(buf.get_u32_le()))
        }
        TAG_REPLACE => {
            need(buf, 4, "replace length", path)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len * 8, "replace entries", path)?;
            let mut pairs = Vec::with_capacity(len);
            for _ in 0..len {
                pairs.push((buf.get_u32_le(), buf.get_f32_le()));
            }
            let profile = Profile::from_unsorted_pairs(pairs)
                .map_err(|e| StoreError::corrupt(path, format!("invalid replace profile: {e}")))?;
            DeltaOp::Replace(profile)
        }
        TAG_CLEAR => DeltaOp::Clear,
        other => {
            return Err(StoreError::corrupt(
                path,
                format!("unknown delta tag {other}"),
            ));
        }
    };
    Ok(ProfileDelta::new(user, op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkingDir;

    fn setup() -> (WorkingDir, DeltaLog, IoStats) {
        let wd = WorkingDir::temp("delta_log").unwrap();
        let log = DeltaLog::open(wd.updates_path()).unwrap();
        (wd, log, IoStats::new())
    }

    #[test]
    fn appends_read_back_in_order() {
        let (wd, mut log, stats) = setup();
        let deltas = vec![
            ProfileDelta::set(UserId::new(1), ItemId::new(10), 2.5),
            ProfileDelta::remove(UserId::new(2), ItemId::new(11)),
            ProfileDelta::new(UserId::new(3), DeltaOp::Clear),
            ProfileDelta::replace(
                UserId::new(4),
                Profile::from_unsorted_pairs(vec![(5, 1.0), (6, 2.0)]).unwrap(),
            ),
        ];
        for d in &deltas {
            log.append(d, &stats).unwrap();
        }
        assert_eq!(log.read_all(&stats).unwrap(), deltas);
        assert_eq!(log.len(&stats).unwrap(), 4);
        wd.destroy().unwrap();
    }

    #[test]
    fn empty_replace_round_trips() {
        let (wd, mut log, stats) = setup();
        log.append(
            &ProfileDelta::replace(UserId::new(0), Profile::new()),
            &stats,
        )
        .unwrap();
        let back = log.read_all(&stats).unwrap();
        assert_eq!(back[0].op, DeltaOp::Replace(Profile::new()));
        wd.destroy().unwrap();
    }

    #[test]
    fn truncate_clears_the_queue() {
        let (wd, mut log, stats) = setup();
        log.append(
            &ProfileDelta::set(UserId::new(0), ItemId::new(0), 1.0),
            &stats,
        )
        .unwrap();
        assert!(!log.is_empty().unwrap());
        log.truncate().unwrap();
        assert!(log.is_empty().unwrap());
        assert!(log.read_all(&stats).unwrap().is_empty());
        wd.destroy().unwrap();
    }

    #[test]
    fn survives_reopen() {
        let (wd, mut log, stats) = setup();
        log.append(
            &ProfileDelta::set(UserId::new(9), ItemId::new(1), 3.0),
            &stats,
        )
        .unwrap();
        drop(log);
        let log2 = DeltaLog::open(wd.updates_path()).unwrap();
        assert_eq!(log2.len(&stats).unwrap(), 1);
        wd.destroy().unwrap();
    }

    #[test]
    fn corrupt_tag_is_detected() {
        let (wd, mut log, stats) = setup();
        log.append(
            &ProfileDelta::set(UserId::new(0), ItemId::new(0), 1.0),
            &stats,
        )
        .unwrap();
        let mut bytes = std::fs::read(log.path()).unwrap();
        bytes[4] = 200; // clobber the tag
        std::fs::write(log.path(), &bytes).unwrap();
        assert!(matches!(
            log.read_all(&stats),
            Err(StoreError::Corrupt { .. })
        ));
        wd.destroy().unwrap();
    }

    #[test]
    fn truncated_record_is_corrupt() {
        let (wd, mut log, stats) = setup();
        log.append(
            &ProfileDelta::set(UserId::new(0), ItemId::new(0), 1.0),
            &stats,
        )
        .unwrap();
        let bytes = std::fs::read(log.path()).unwrap();
        std::fs::write(log.path(), &bytes[..bytes.len() - 2]).unwrap();
        assert!(matches!(
            log.read_all(&stats),
            Err(StoreError::Corrupt { .. })
        ));
        wd.destroy().unwrap();
    }

    /// The torn-tail fixture the crash-recovery path depends on: for a
    /// log of whole records plus one final record truncated at *every*
    /// possible byte offset, the tolerant decode returns exactly the
    /// whole records, a consumed length at the last record boundary,
    /// and a non-silent report of the dropped tail.
    #[test]
    fn torn_tail_is_dropped_at_the_record_boundary_for_every_offset() {
        let whole = vec![
            ProfileDelta::set(UserId::new(1), ItemId::new(10), 2.5),
            ProfileDelta::remove(UserId::new(2), ItemId::new(11)),
            ProfileDelta::new(UserId::new(3), DeltaOp::Clear),
        ];
        let mut prefix_bytes = BytesMut::new();
        for d in &whole {
            encode_delta(&mut prefix_bytes, d);
        }
        let boundary = prefix_bytes.len();
        // One final record of each shape, torn at every byte offset.
        let finals = vec![
            ProfileDelta::set(UserId::new(4), ItemId::new(12), -1.5),
            ProfileDelta::replace(
                UserId::new(5),
                Profile::from_unsorted_pairs(vec![(5, 1.0), (6, 2.0)]).unwrap(),
            ),
        ];
        let path = PathBuf::from("/test/updates.log");
        for last in finals {
            let mut full = prefix_bytes.clone();
            encode_delta(&mut full, &last);
            // Untorn: everything decodes, nothing dropped.
            let intact = decode_delta_prefix(&full, &path);
            assert_eq!(intact.consumed, full.len());
            assert!(intact.dropped.is_none());
            assert_eq!(intact.deltas.len(), whole.len() + 1);
            // Torn at every offset strictly inside the final record.
            for cut in boundary..full.len() - 1 {
                let torn = &full[..=cut];
                let out = decode_delta_prefix(torn, &path);
                assert_eq!(out.deltas, whole, "cut at {cut}");
                assert_eq!(out.consumed, boundary, "cut at {cut}");
                let detail = out.dropped.expect("torn tail must be reported");
                assert!(detail.contains("dropped"), "{detail}");
                // The strict decoder must refuse the same bytes.
                assert!(decode_deltas(torn, &path).is_err(), "cut at {cut}");
            }
        }
        // A fully corrupt log (bad tag in record 0) salvages nothing
        // but still does not error or panic.
        let mut bad = prefix_bytes.to_vec();
        bad[4] = 200;
        let out = decode_delta_prefix(&bad, &path);
        assert!(out.deltas.is_empty());
        assert_eq!(out.consumed, 0);
        assert!(out.dropped.is_some());
    }

    #[test]
    fn io_is_counted() {
        let (wd, mut log, stats) = setup();
        log.append(
            &ProfileDelta::set(UserId::new(0), ItemId::new(0), 1.0),
            &stats,
        )
        .unwrap();
        let _ = log.read_all(&stats).unwrap();
        let snap = stats.snapshot();
        assert!(snap.bytes_written > 0);
        assert_eq!(snap.bytes_read, snap.bytes_written);
        wd.destroy().unwrap();
    }
}
