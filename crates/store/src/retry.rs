//! Bounded, deterministic retries for transient storage errors.
//!
//! [`RetryBackend`] wraps any [`StorageBackend`] and re-issues
//! operations that fail with [`StoreError::Transient`] — the taxonomy's
//! only retryable class — under a [`RetryPolicy`]: capped exponential
//! backoff (`min(cap, base · 2^(n-1))`) scaled by deterministic
//! xorshift jitter in `[0.75, 1.25)`, the same shape the serve layer's
//! circuit breaker uses. Permanent errors (`Io`, `Corrupt`, …)
//! propagate immediately; a transient error that survives the attempt
//! budget propagates as-is so callers see the real failure.
//!
//! Every retry is counted on the wrapped backend's [`IoStats`] meter
//! (`retries`), which stays zero in fault-free runs — so the engine's
//! cross-backend / cross-shard equality contracts are unaffected.
//!
//! The transient contract is all-or-nothing: a [`StoreError::Transient`]
//! asserts the operation had no effect, which is what makes retrying
//! non-idempotent operations (log appends) safe.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{IoStats, StorageBackend, StoreError, StreamId, WorkingDir};

/// The retry budget and backoff shape.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). `1` disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based): `min(cap, base · 2^(n-1))`,
    /// jittered.
    pub base: Duration,
    /// Ceiling on the un-jittered backoff.
    pub cap: Duration,
    /// Seed for the jitter stream — runs with equal seeds retry on an
    /// identical schedule.
    pub seed: u64,
}

impl RetryPolicy {
    /// The engine default: 4 attempts, 2 ms base, 50 ms cap.
    pub fn from_seed(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(50),
            seed,
        }
    }
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A [`StorageBackend`] decorator that retries transient failures.
///
/// Everything else — stats, names, paths, the working directory —
/// forwards to the wrapped backend, so installing the decorator is
/// invisible to metering and to code that inspects the backend.
#[derive(Debug)]
pub struct RetryBackend {
    inner: Arc<dyn StorageBackend>,
    policy: RetryPolicy,
    jitter: AtomicU64,
    #[allow(clippy::type_complexity)]
    sleep: fn(Duration),
}

impl RetryBackend {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: Arc<dyn StorageBackend>, policy: RetryPolicy) -> Self {
        let jitter = AtomicU64::new(policy.seed | 1); // xorshift needs a nonzero state
        RetryBackend {
            inner,
            policy,
            jitter,
            sleep: std::thread::sleep,
        }
    }

    /// Like [`RetryBackend::new`], but backoffs invoke `sleep` instead
    /// of blocking the thread — for tests that want zero wall-clock.
    pub fn with_sleep(
        inner: Arc<dyn StorageBackend>,
        policy: RetryPolicy,
        sleep: fn(Duration),
    ) -> Self {
        let mut this = Self::new(inner, policy);
        this.sleep = sleep;
        this
    }

    /// The backoff before 1-based retry `n`: capped exponential scaled
    /// by a jitter factor in `[0.75, 1.25)` drawn from the seeded
    /// xorshift stream.
    fn backoff(&self, n: u32) -> Duration {
        let exp = self
            .policy
            .base
            .saturating_mul(1u32 << (n - 1).min(20))
            .min(self.policy.cap);
        let mut state = self.jitter.load(Ordering::Relaxed);
        let draw = xorshift64(&mut state);
        self.jitter.store(state, Ordering::Relaxed);
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        exp.mul_f64(0.75 + unit * 0.5)
    }

    fn with_retry<T>(&self, op: impl Fn() -> Result<T, StoreError>) -> Result<T, StoreError> {
        let mut attempt = 1u32;
        loop {
            match op() {
                Err(e) if e.is_transient() && attempt < self.policy.max_attempts => {
                    self.inner.stats().record_retry();
                    (self.sleep)(self.backoff(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }
}

impl StorageBackend for RetryBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn read(&self, stream: StreamId) -> Result<Vec<u8>, StoreError> {
        self.with_retry(|| self.inner.read(stream))
    }

    fn read_chunk(&self, stream: StreamId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.with_retry(|| self.inner.read_chunk(stream, offset, len))
    }

    fn write(&self, stream: StreamId, payload: &[u8]) -> Result<(), StoreError> {
        self.with_retry(|| self.inner.write(stream, payload))
    }

    fn write_raw(&self, stream: StreamId, framed: &[u8]) -> Result<(), StoreError> {
        self.with_retry(|| self.inner.write_raw(stream, framed))
    }

    fn copy_stream(&self, from: StreamId, to: StreamId) -> Result<(), StoreError> {
        self.with_retry(|| self.inner.copy_stream(from, to))
    }

    fn delete(&self, stream: StreamId) -> Result<(), StoreError> {
        self.with_retry(|| self.inner.delete(stream))
    }

    fn exists(&self, stream: StreamId) -> bool {
        self.inner.exists(stream)
    }

    fn list(&self) -> Result<Vec<StreamId>, StoreError> {
        self.with_retry(|| self.inner.list())
    }

    fn clear_tuples(&self) -> Result<(), StoreError> {
        self.with_retry(|| self.inner.clear_tuples())
    }

    fn append_updates(&self, bytes: &[u8]) -> Result<(), StoreError> {
        self.with_retry(|| self.inner.append_updates(bytes))
    }

    fn read_updates(&self) -> Result<Vec<u8>, StoreError> {
        self.with_retry(|| self.inner.read_updates())
    }

    fn truncate_updates(&self) -> Result<(), StoreError> {
        self.with_retry(|| self.inner.truncate_updates())
    }

    fn repair_update_log(&self) -> Result<Option<String>, StoreError> {
        self.with_retry(|| self.inner.repair_update_log())
    }

    fn storage_usage(&self) -> Result<u64, StoreError> {
        self.with_retry(|| self.inner.storage_usage())
    }

    fn describe(&self, stream: StreamId) -> PathBuf {
        self.inner.describe(stream)
    }

    fn working_dir(&self) -> Option<&WorkingDir> {
        self.inner.working_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{self, MemBackend};
    use crate::fault::{FaultBackend, FaultKind, FaultPlan};

    fn no_sleep(_: Duration) {}

    fn policy() -> RetryPolicy {
        RetryPolicy::from_seed(7)
    }

    #[test]
    fn transient_errors_are_retried_to_success_and_counted() {
        let inner = Arc::new(MemBackend::new());
        backend::write_meta(inner.as_ref(), &[(1, 1)]).unwrap();
        let fault = Arc::new(FaultBackend::new(inner.clone()));
        fault.set_plan(FaultPlan {
            fail_at: 0,
            kind: FaultKind::Transient { times: 2 },
            seed: 1,
        });
        fault.arm();
        let retry = RetryBackend::with_sleep(fault, policy(), no_sleep);
        assert_eq!(backend::read_meta(&retry).unwrap(), vec![(1, 1)]);
        assert_eq!(inner.stats().snapshot().retries, 2);
    }

    #[test]
    fn the_attempt_budget_is_bounded() {
        let inner = Arc::new(MemBackend::new());
        backend::write_meta(inner.as_ref(), &[(1, 1)]).unwrap();
        let fault = Arc::new(FaultBackend::new(inner.clone()));
        fault.set_plan(FaultPlan {
            fail_at: 0,
            kind: FaultKind::Transient { times: 100 },
            seed: 1,
        });
        fault.arm();
        let retry = RetryBackend::with_sleep(fault, policy(), no_sleep);
        let err = retry.read(StreamId::Meta).unwrap_err();
        assert!(err.is_transient(), "the real failure propagates: {err}");
        // max_attempts = 4 → 3 retries, then give up.
        assert_eq!(inner.stats().snapshot().retries, 3);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let inner = Arc::new(MemBackend::new());
        let retry = RetryBackend::with_sleep(inner.clone(), policy(), no_sleep);
        let err = retry.read(StreamId::Meta).unwrap_err(); // NotFound → Io
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        assert_eq!(inner.stats().snapshot().retries, 0);
    }

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let a = RetryBackend::with_sleep(Arc::new(MemBackend::new()), policy(), no_sleep);
        let b = RetryBackend::with_sleep(Arc::new(MemBackend::new()), policy(), no_sleep);
        for n in 1..=8 {
            let d = a.backoff(n);
            assert_eq!(d, b.backoff(n), "equal seeds, equal schedule");
            // Jitter keeps every delay within ±25% of the capped curve.
            let exp = policy().base.saturating_mul(1 << (n - 1)).min(policy().cap);
            assert!(
                d >= exp.mul_f64(0.75) && d < exp.mul_f64(1.25),
                "retry {n}: {d:?}"
            );
        }
        let c = RetryBackend::with_sleep(
            Arc::new(MemBackend::new()),
            RetryPolicy {
                seed: 99,
                ..policy()
            },
            no_sleep,
        );
        assert_ne!(a.backoff(1), c.backoff(1), "different seeds jitter apart");
    }

    #[test]
    fn decorator_is_transparent_to_metering_and_identity() {
        let inner = Arc::new(MemBackend::new());
        let retry = RetryBackend::with_sleep(inner.clone(), policy(), no_sleep);
        backend::write_meta(&retry, &[(1, 5)]).unwrap();
        assert_eq!(retry.name(), "mem");
        assert!(Arc::ptr_eq(retry.stats(), inner.stats()));
        assert_eq!(
            retry.storage_usage().unwrap(),
            inner.storage_usage().unwrap()
        );
    }
}
