//! Low-level binary encoding primitives.
//!
//! All on-disk files share a 12-byte header (`magic`, codec version,
//! record kind, record count follows as `u64`) and little-endian
//! fixed-width fields. The codec is deliberately explicit: no serde
//! format crate is available in this environment, and the engine needs
//! byte-exact control anyway for its I/O accounting.

use bytes::{Buf, BufMut};
use std::path::Path;

use crate::StoreError;

/// File magic: "OKNN" (out-of-core KNN).
pub const MAGIC: [u8; 4] = *b"OKNN";

/// Current codec version. Bump on any layout change.
pub const VERSION: u16 = 1;

/// Size of the fixed header in bytes: magic(4) + version(2) + kind(2)
/// + record count(8).
pub const HEADER_LEN: usize = 16;

/// Writes the standard header into `buf`.
pub fn put_header(buf: &mut impl BufMut, kind: u16, record_count: u64) {
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(kind);
    buf.put_u64_le(record_count);
}

/// Reads and validates the standard header, returning the record count.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on bad magic/kind/truncation and
/// [`StoreError::VersionMismatch`] on a version difference.
pub fn take_header(buf: &mut impl Buf, expected_kind: u16, path: &Path) -> Result<u64, StoreError> {
    if buf.remaining() < HEADER_LEN {
        return Err(StoreError::corrupt(
            path,
            format!(
                "file shorter than header ({} < {HEADER_LEN} bytes)",
                buf.remaining()
            ),
        ));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(StoreError::corrupt(path, format!("bad magic {magic:?}")));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(StoreError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
            expected: VERSION,
        });
    }
    let kind = buf.get_u16_le();
    if kind != expected_kind {
        return Err(StoreError::corrupt(
            path,
            format!("record kind {kind} found, expected {expected_kind}"),
        ));
    }
    Ok(buf.get_u64_le())
}

/// Ensures at least `needed` readable bytes remain, else a corruption
/// error naming `what`.
pub fn need(buf: &impl Buf, needed: usize, what: &str, path: &Path) -> Result<(), StoreError> {
    if buf.remaining() < needed {
        Err(StoreError::corrupt(
            path,
            format!(
                "truncated {what}: need {needed} bytes, have {}",
                buf.remaining()
            ),
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("/test/file")
    }

    #[test]
    fn header_round_trips() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, 7, 123);
        assert_eq!(buf.len(), HEADER_LEN);
        let mut rd = buf.freeze();
        let count = take_header(&mut rd, 7, &p()).unwrap();
        assert_eq!(count, 123);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn detects_bad_magic() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, 1, 0);
        let mut bytes = buf.to_vec();
        bytes[0] = b'X';
        let err = take_header(&mut &bytes[..], 1, &p()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn detects_version_mismatch() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, 1, 0);
        let mut bytes = buf.to_vec();
        bytes[4] = 99; // version low byte
        let err = take_header(&mut &bytes[..], 1, &p()).unwrap_err();
        assert!(
            matches!(err, StoreError::VersionMismatch { found: 99, .. }),
            "{err}"
        );
    }

    #[test]
    fn detects_wrong_kind() {
        let mut buf = BytesMut::new();
        put_header(&mut buf, 3, 0);
        let bytes = buf.to_vec();
        let err = take_header(&mut &bytes[..], 4, &p()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn detects_truncated_header() {
        let bytes = [b'O', b'K'];
        let err = take_header(&mut &bytes[..], 1, &p()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn need_guards_reads() {
        let bytes = [0u8; 3];
        assert!(need(&&bytes[..], 3, "x", &p()).is_ok());
        assert!(need(&&bytes[..], 4, "x", &p()).is_err());
    }
}
