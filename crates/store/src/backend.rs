//! The pluggable storage boundary of the engine.
//!
//! Everything the five-phase engine persists is one of a small set of
//! **named record streams** — partition profiles, partition edge lists,
//! tuple buckets and their spill runs, per-partition KNN slices, the
//! assignment table, the metadata map, and the durable phase-5 update
//! log. [`StreamId`] names them; [`StorageBackend`] is the complete
//! contract over them (read / write / append / list / delete), with
//! [`IoStats`] accounting *inside* the boundary so every backend is
//! metered uniformly.
//!
//! Two implementations ship:
//!
//! * [`DiskBackend`] — today's [`WorkingDir`] layout, bit-for-bit
//!   compatible with working directories written before the trait
//!   existed (so `KnnEngine::resume` still opens them);
//! * [`MemBackend`] — framed byte buffers in a hash map. It stores the
//!   **same** encoded bytes (codec header + payload + CRC-32), so the
//!   layout/checksum code stays covered while the filesystem drops out
//!   of the iteration loop. Both backends re-verify the trailing
//!   CRC-32 on every whole-stream read: corruption — whether rotted
//!   bytes at rest or a torn write that persisted only a prefix —
//!   surfaces as the identical [`StoreError::Corrupt`] regardless of
//!   medium, which the crash-recovery path depends on.
//!
//! Typed helpers ([`write_pairs`], [`read_user_lists`], …) sit on top
//! of the raw byte contract and share the [`crate::record_file`] codec
//! with the path-based API, which is why the two produce identical
//! bytes.
//!
//! ```
//! use knn_store::backend::{self, MemBackend, StorageBackend, StreamId};
//! use knn_store::RecordKind;
//!
//! # fn main() -> Result<(), knn_store::StoreError> {
//! let b = MemBackend::new();
//! backend::write_pairs(&b, StreamId::Assignment, &[(0, 1), (1, 0)])?;
//! assert_eq!(
//!     backend::read_pairs(&b, StreamId::Assignment)?,
//!     vec![(0, 1), (1, 0)]
//! );
//! assert!(b.stats().snapshot().bytes_written > 0);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use bytes::BytesMut;
use knn_sim::ProfileDelta;

use crate::delta_log::{decode_deltas, encode_delta};
use crate::record_file::{self, UserListRow};
use crate::{IoStats, RecordKind, StoreError, WorkingDir};

/// The name of one record stream an engine run persists.
///
/// A stream is "one file" in the disk layout; other backends are free
/// to map it to buffers, objects, or pages, but the *set* of streams is
/// the storage contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamId {
    /// The engine metadata map (`n`, `K`, `m`, seed, iteration).
    Meta,
    /// The user → partition assignment table.
    Assignment,
    /// The user → cluster-label table written by the locality
    /// pre-pass (`knn-cluster`); present only when a run clusters.
    Clusters,
    /// In-edges of one partition, sorted by bridge vertex.
    InEdges(u32),
    /// Out-edges of one partition, sorted by bridge vertex.
    OutEdges(u32),
    /// Profiles of one partition's users.
    Profiles(u32),
    /// Top-K accumulator state of one partition.
    Accumulators(u32),
    /// One partition's persisted KNN-graph slice (scored out-edges).
    KnnSlice(u32),
    /// The deduplicated tuple bucket of one PI-graph edge `(i, j)`.
    TupleBucket(u32, u32),
    /// One sorted spill run of a tuple bucket (phase-2 scratch).
    TupleRun(u32, u32, u32),
    /// One foreign tuple run received over the exchange fabric
    /// (sharded phase-2 scratch): bucket `(i, j)`, arrival sequence
    /// `r`. Same TuplesV2 payload as [`StreamId::TupleRun`], but its
    /// traffic is **not** metered in [`IoStats`] — exchange volume is
    /// a shard-topology cost, accounted by the fabric itself, and
    /// keeping it off the storage meter is what makes the per-phase
    /// `IoSnapshot`s identical at every shard count.
    ExchangeRun(u32, u32, u32),
    /// The generation commit record: one tiny CRC-framed record naming
    /// the last durably committed iteration (see `crate::commit`).
    /// Writing it is the single atomic step that flips a working
    /// directory's visible generation.
    Commit,
    /// A staged pre-image backup of one committed stream, tagged with
    /// the epoch (committed generation) whose content it preserves.
    /// The commit protocol copies a committed stream here before the
    /// engine first mutates it in place; recovery restores or deletes
    /// these, and a cleanly committed directory contains none.
    Staged(CommitTarget, u64),
}

/// A committed stream the atomic-commit protocol may back up before
/// the engine mutates it in place during an iteration. (`Clusters` is
/// written once by the pre-pass and never mutated, so it needs no
/// backup; everything else committed — meta, assignment, profiles,
/// KNN slices — is rewritten by iterations.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommitTarget {
    /// The engine metadata map.
    Meta,
    /// The user → partition assignment table.
    Assignment,
    /// One partition's profiles.
    Profiles(u32),
    /// One partition's persisted KNN-graph slice.
    KnnSlice(u32),
}

impl CommitTarget {
    /// The committed stream this target names.
    pub fn stream(self) -> StreamId {
        match self {
            CommitTarget::Meta => StreamId::Meta,
            CommitTarget::Assignment => StreamId::Assignment,
            CommitTarget::Profiles(p) => StreamId::Profiles(p),
            CommitTarget::KnnSlice(p) => StreamId::KnnSlice(p),
        }
    }

    /// The backup target for a committed stream, if it is one the
    /// protocol stages (`None` for scratch and never-mutated streams).
    pub fn of(stream: StreamId) -> Option<CommitTarget> {
        match stream {
            StreamId::Meta => Some(CommitTarget::Meta),
            StreamId::Assignment => Some(CommitTarget::Assignment),
            StreamId::Profiles(p) => Some(CommitTarget::Profiles(p)),
            StreamId::KnnSlice(p) => Some(CommitTarget::KnnSlice(p)),
            _ => None,
        }
    }
}

impl StreamId {
    /// The record kind stored in this stream's codec header.
    pub fn kind(self) -> RecordKind {
        match self {
            StreamId::Meta => RecordKind::Meta,
            StreamId::Assignment => RecordKind::Assignment,
            StreamId::Clusters => RecordKind::Clusters,
            StreamId::InEdges(_) => RecordKind::InEdges,
            StreamId::OutEdges(_) => RecordKind::OutEdges,
            StreamId::Profiles(_) => RecordKind::Profiles,
            StreamId::Accumulators(_) => RecordKind::Accumulators,
            StreamId::KnnSlice(_) => RecordKind::ScoredEdges,
            StreamId::TupleBucket(..) | StreamId::TupleRun(..) | StreamId::ExchangeRun(..) => {
                RecordKind::Tuples
            }
            StreamId::Commit => RecordKind::Commit,
            StreamId::Staged(target, _) => target.stream().kind(),
        }
    }

    /// Whether this stream is phase-2 tuple scratch (bucket, spill run,
    /// or received exchange run), i.e. cleared at the start of every
    /// iteration.
    pub fn is_tuple_scratch(self) -> bool {
        matches!(
            self,
            StreamId::TupleBucket(..) | StreamId::TupleRun(..) | StreamId::ExchangeRun(..)
        )
    }

    /// This stream's location inside a [`WorkingDir`] — the disk
    /// layout is the reference mapping.
    pub fn path_in(self, wd: &WorkingDir) -> PathBuf {
        match self {
            StreamId::Meta => wd.meta_path(),
            StreamId::Assignment => wd.assignment_path(),
            StreamId::Clusters => wd.clusters_path(),
            StreamId::InEdges(p) => wd.in_edges_path(p),
            StreamId::OutEdges(p) => wd.out_edges_path(p),
            StreamId::Profiles(p) => wd.profiles_path(p),
            StreamId::Accumulators(p) => wd.accum_path(p),
            StreamId::KnnSlice(p) => wd.knn_path(p),
            StreamId::TupleBucket(i, j) => wd.tuples_path(i, j),
            StreamId::TupleRun(i, j, r) => wd.tuples_path(i, j).with_extension(format!("run{r}")),
            StreamId::ExchangeRun(i, j, r) => wd.tuples_path(i, j).with_extension(format!("x{r}")),
            StreamId::Commit => wd.commit_path(),
            StreamId::Staged(target, epoch) => {
                // The backup sits next to its target: `<file>.bak<epoch>`.
                let base = target.stream().path_in(wd);
                let mut name = base.file_name().expect("stream file name").to_os_string();
                name.push(format!(".bak{epoch}"));
                base.with_file_name(name)
            }
        }
    }

    /// Whether this stream's traffic bypasses the [`IoStats`] meter
    /// (exchange-fabric scratch — see [`StreamId::ExchangeRun`]).
    fn is_unmetered(self) -> bool {
        matches!(self, StreamId::ExchangeRun(..))
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamId::Meta => write!(f, "meta"),
            StreamId::Assignment => write!(f, "assignment"),
            StreamId::Clusters => write!(f, "clusters"),
            StreamId::InEdges(p) => write!(f, "p{p:04}.in_edges"),
            StreamId::OutEdges(p) => write!(f, "p{p:04}.out_edges"),
            StreamId::Profiles(p) => write!(f, "p{p:04}.profiles"),
            StreamId::Accumulators(p) => write!(f, "p{p:04}.accum"),
            StreamId::KnnSlice(p) => write!(f, "p{p:04}.knn"),
            StreamId::TupleBucket(i, j) => write!(f, "t{i:04}_{j:04}.tuples"),
            StreamId::TupleRun(i, j, r) => write!(f, "t{i:04}_{j:04}.run{r}"),
            StreamId::ExchangeRun(i, j, r) => write!(f, "t{i:04}_{j:04}.x{r}"),
            StreamId::Commit => write!(f, "commit"),
            StreamId::Staged(target, epoch) => write!(f, "{}.bak{epoch}", target.stream()),
        }
    }
}

/// The engine's entire storage contract, as operations over named
/// record streams plus the append-only phase-5 update log.
///
/// Implementations store **framed** records — the codec payload
/// followed by its CRC-32, exactly the bytes [`record_file::frame`]
/// produces — and [`read`](StorageBackend::read) returns the payload
/// with the frame stripped, **re-verifying the checksum on every
/// read**: a torn or rotted record must fail with
/// [`StoreError::Corrupt`] identically on every backend, because
/// crash recovery uses that signal to distinguish intact streams from
/// partially persisted ones. All byte and operation counts flow into
/// the backend's [`IoStats`] so different backends are compared with
/// the same meter.
///
/// Prefer the typed helpers ([`write_pairs`] and friends) over
/// the raw [`read`](StorageBackend::read)/[`write`](StorageBackend::write)
/// methods; they add the codec layer and keep every backend's record
/// layout identical.
///
/// Implementations must be usable from many threads at once (hence
/// the `Send + Sync` bound): the partition-parallel engine issues
/// reads and writes of *disjoint* streams concurrently, and the
/// [`IoStats`] meter must stay exact under that concurrency (it is
/// atomic — see its concurrency contract). Concurrent operations on
/// the *same* stream are never issued by the engine and need no
/// ordering guarantee beyond each call being atomic with respect to
/// the stream it touches.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// A short human-readable backend name (`"disk"`, `"mem"`), used
    /// in reports and bench output.
    fn name(&self) -> &'static str;

    /// The backend's I/O meter. Every read/write/append/delete this
    /// backend performs is recorded here.
    fn stats(&self) -> &Arc<IoStats>;

    /// Reads one stream and strips the frame, returning the codec
    /// payload (integrity checking per the backend's medium — see the
    /// trait docs).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the stream does not exist or cannot be
    /// read; [`StoreError::Corrupt`] on a bad frame.
    fn read(&self, stream: StreamId) -> Result<Vec<u8>, StoreError>;

    /// Reads up to `len` bytes of the stream's **framed**
    /// representation (payload + trailing CRC-32) starting at byte
    /// `offset` — short at end of stream, empty past it. Exactly the
    /// returned byte count is metered, so every backend counts chunked
    /// reads identically.
    ///
    /// This is the bounded-buffer leg of the contract: phase 2's
    /// k-way merge streams each spill run through a fixed-size refill
    /// window instead of materializing whole runs. Chunked reads
    /// bypass whole-frame checksum verification by construction (the
    /// frame's CRC trails the payload) — appropriate for
    /// iteration-scratch streams written moments earlier; decoders
    /// still validate structure row by row.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the stream does not exist or cannot be
    /// read.
    fn read_chunk(&self, stream: StreamId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError>;

    /// Frames and writes one stream, replacing any previous content.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn write(&self, stream: StreamId, payload: &[u8]) -> Result<(), StoreError>;

    /// Stores one stream's **framed** representation verbatim —
    /// `framed` is payload + trailing CRC-32, or a deliberately torn
    /// prefix of such a frame. This is the escape hatch fault-injection
    /// harnesses use to persist a *genuinely* torn write (re-framing a
    /// prefix through [`write`](StorageBackend::write) would mint a
    /// fresh valid checksum and defeat corruption detection). Metered
    /// as one write of `framed.len()` bytes, like `write`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure, or if the backend does
    /// not support raw writes (the default).
    fn write_raw(&self, stream: StreamId, framed: &[u8]) -> Result<(), StoreError> {
        let _ = framed;
        Err(StoreError::io(
            self.describe(stream),
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "backend does not support raw framed writes",
            ),
        ))
    }

    /// Copies `from`'s record into `to`, replacing any previous
    /// content. Semantically `read` + `write` — and metered exactly
    /// like that pair (one read and one write of the framed length) —
    /// but backends may move the framed bytes natively without
    /// decoding, re-framing, or verifying the checksum. The commit
    /// protocol's pre-image backups ride this path, so copying
    /// verbatim is a feature: a rollback restores byte-for-byte what
    /// was committed, even if that record was already damaged.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if `from` is absent or storage fails.
    fn copy_stream(&self, from: StreamId, to: StreamId) -> Result<(), StoreError> {
        let payload = self.read(from)?;
        self.write(to, &payload)
    }

    /// Deletes one stream (no-op if absent).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn delete(&self, stream: StreamId) -> Result<(), StoreError>;

    /// Whether the stream currently exists.
    fn exists(&self, stream: StreamId) -> bool;

    /// Every stream currently stored (unspecified order). Unrecognized
    /// foreign files in a disk layout are skipped, not errors.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn list(&self) -> Result<Vec<StreamId>, StoreError>;

    /// Removes every tuple bucket and spill run (phase 2 of each
    /// iteration starts clean).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn clear_tuples(&self) -> Result<(), StoreError> {
        for stream in self.list()? {
            if stream.is_tuple_scratch() {
                self.delete(stream)?;
            }
        }
        Ok(())
    }

    /// Appends raw encoded deltas to the durable update log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn append_updates(&self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Reads the whole update log (raw bytes, append order). An
    /// absent/never-written log reads as empty.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn read_updates(&self) -> Result<Vec<u8>, StoreError>;

    /// Empties the update log (after phase 5 has applied it).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn truncate_updates(&self) -> Result<(), StoreError>;

    /// Detects a torn tail on the durable update log — a crash
    /// mid-append leaves a partial final record — and drops it at the
    /// last whole-record boundary, rewriting the log to its longest
    /// cleanly decodable prefix. Returns a description of what was
    /// dropped, or `None` when the log was already clean (the common
    /// case; nothing is rewritten then). Sharding facades override
    /// this to repair each shard's log independently, since a torn
    /// tail sits mid-concatenation in the merged view.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn repair_update_log(&self) -> Result<Option<String>, StoreError> {
        let bytes = self.read_updates()?;
        let path = PathBuf::from(format!("{}:updates.log", self.name()));
        let prefix = crate::delta_log::decode_delta_prefix(&bytes, &path);
        let Some(dropped) = prefix.dropped else {
            return Ok(None);
        };
        self.truncate_updates()?;
        if prefix.consumed > 0 {
            self.append_updates(&bytes[..prefix.consumed])?;
        }
        Ok(Some(dropped))
    }

    /// Total bytes currently stored across all streams and the log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on storage failure.
    fn storage_usage(&self) -> Result<u64, StoreError>;

    /// A path-like label for `stream`, used in error messages. Disk
    /// backends return the real path.
    fn describe(&self, stream: StreamId) -> PathBuf {
        PathBuf::from(format!("{}:{stream}", self.name()))
    }

    /// The underlying [`WorkingDir`], when this backend is a directory
    /// on disk. In-memory and future remote backends return `None`.
    fn working_dir(&self) -> Option<&WorkingDir> {
        None
    }
}

// ---------------------------------------------------------------------
// Typed stream helpers (shared codec over any backend).
// ---------------------------------------------------------------------

/// Writes a pair stream (`(u32, u32)` rows); the record kind comes
/// from the stream's identity.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on storage failure.
pub fn write_pairs(
    b: &dyn StorageBackend,
    stream: StreamId,
    rows: &[(u32, u32)],
) -> Result<(), StoreError> {
    b.write(stream, &record_file::encode_pairs(stream.kind(), rows))
}

/// Reads a pair stream written by [`write_pairs`].
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] / [`StoreError::VersionMismatch`]
/// on malformed content and [`StoreError::Io`] on storage failure.
pub fn read_pairs(b: &dyn StorageBackend, stream: StreamId) -> Result<Vec<(u32, u32)>, StoreError> {
    record_file::decode_pairs(&b.read(stream)?, stream.kind(), &b.describe(stream))
}

/// Writes a tuple stream (canonical `(u, v, meta)` rows, sorted) in
/// the varint-delta v2 format of [`crate::tuple_stream`]. Used for
/// phase-2 spill runs and final buckets.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on storage failure.
pub fn write_tuples(
    b: &dyn StorageBackend,
    stream: StreamId,
    rows: &[crate::tuple_stream::TupleRow],
) -> Result<(), StoreError> {
    b.write(stream, &crate::tuple_stream::encode_tuples(rows))
}

/// Reads a tuple stream written by [`write_tuples`] — or a legacy
/// fixed-width pair stream, whose rows decode with an empty meta
/// nibble (see [`crate::tuple_stream`] for the versioning story).
///
/// # Errors
///
/// Same as [`read_pairs`].
pub fn read_tuples(
    b: &dyn StorageBackend,
    stream: StreamId,
) -> Result<Vec<crate::tuple_stream::TupleRow>, StoreError> {
    crate::tuple_stream::decode_tuples(b.read(stream)?, &b.describe(stream))
}

/// Writes a scored-pair stream (`(u32, u32, f32)` rows — KNN slices).
///
/// # Errors
///
/// Same as [`write_pairs`].
pub fn write_scored_pairs(
    b: &dyn StorageBackend,
    stream: StreamId,
    rows: &[(u32, u32, f32)],
) -> Result<(), StoreError> {
    b.write(stream, &record_file::encode_scored_pairs(rows))
}

/// Reads a scored-pair stream written by [`write_scored_pairs`].
///
/// # Errors
///
/// Same as [`read_pairs`].
pub fn read_scored_pairs(
    b: &dyn StorageBackend,
    stream: StreamId,
) -> Result<Vec<(u32, u32, f32)>, StoreError> {
    record_file::decode_scored_pairs(&b.read(stream)?, &b.describe(stream))
}

/// Writes a user-list stream (`user → [(u32, f32)]` rows — profiles or
/// accumulators).
///
/// # Errors
///
/// Same as [`write_pairs`].
pub fn write_user_lists(
    b: &dyn StorageBackend,
    stream: StreamId,
    rows: &[UserListRow],
) -> Result<(), StoreError> {
    b.write(stream, &record_file::encode_user_lists(stream.kind(), rows))
}

/// Reads a user-list stream written by [`write_user_lists`].
///
/// # Errors
///
/// Same as [`read_pairs`].
pub fn read_user_lists(
    b: &dyn StorageBackend,
    stream: StreamId,
) -> Result<Vec<UserListRow>, StoreError> {
    record_file::decode_user_lists(&b.read(stream)?, stream.kind(), &b.describe(stream))
}

/// Writes the metadata map.
///
/// # Errors
///
/// Same as [`write_pairs`].
pub fn write_meta(b: &dyn StorageBackend, entries: &[(u32, u64)]) -> Result<(), StoreError> {
    b.write(StreamId::Meta, &record_file::encode_meta(entries))
}

/// Reads the metadata map.
///
/// # Errors
///
/// Same as [`read_pairs`].
pub fn read_meta(b: &dyn StorageBackend) -> Result<Vec<(u32, u64)>, StoreError> {
    record_file::decode_meta(&b.read(StreamId::Meta)?, &b.describe(StreamId::Meta))
}

/// Appends one delta to the backend's durable update log.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on storage failure.
pub fn append_delta(b: &dyn StorageBackend, delta: &ProfileDelta) -> Result<(), StoreError> {
    let mut buf = BytesMut::with_capacity(32);
    encode_delta(&mut buf, delta);
    b.append_updates(&buf)
}

/// Reads every delta in the backend's update log, in append order.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on a malformed record and
/// [`StoreError::Io`] on storage failure.
pub fn read_deltas(b: &dyn StorageBackend) -> Result<Vec<ProfileDelta>, StoreError> {
    let bytes = b.read_updates()?;
    decode_deltas(&bytes, &PathBuf::from(format!("{}:updates.log", b.name())))
}

// ---------------------------------------------------------------------
// DiskBackend
// ---------------------------------------------------------------------

/// The on-disk backend: streams are files in a [`WorkingDir`], with
/// exactly the layout and byte format the engine used before the
/// [`StorageBackend`] trait existed. A pre-existing working directory
/// opens unchanged.
#[derive(Debug)]
pub struct DiskBackend {
    workdir: WorkingDir,
    stats: Arc<IoStats>,
}

impl DiskBackend {
    /// Wraps an existing working directory.
    pub fn new(workdir: WorkingDir) -> Self {
        DiskBackend {
            workdir,
            stats: Arc::new(IoStats::new()),
        }
    }

    /// Opens (creating if needed) a working directory rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directories cannot be created.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Ok(Self::new(WorkingDir::create(root)?))
    }

    /// A fresh uniquely-named backend under the system temp dir.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if creation fails.
    pub fn temp(prefix: &str) -> Result<Self, StoreError> {
        Ok(Self::new(WorkingDir::temp(prefix)?))
    }

    fn updates_path(&self) -> PathBuf {
        self.workdir.updates_path()
    }
}

impl StorageBackend for DiskBackend {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn read(&self, stream: StreamId) -> Result<Vec<u8>, StoreError> {
        let path = stream.path_in(&self.workdir);
        if stream.is_unmetered() {
            let bytes = std::fs::read(&path).map_err(|e| StoreError::io(&path, e))?;
            return record_file::verify_unframe(bytes, &path);
        }
        record_file::read_file(&path, &self.stats)
    }

    fn read_chunk(&self, stream: StreamId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        use std::io::{Read, Seek, SeekFrom};
        let path = stream.path_in(&self.workdir);
        let mut file = std::fs::File::open(&path).map_err(|e| StoreError::io(&path, e))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::io(&path, e))?;
        let mut buf = vec![0u8; len as usize];
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = file
                .read(&mut buf[filled..])
                .map_err(|e| StoreError::io(&path, e))?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        if !stream.is_unmetered() {
            self.stats.record_read(filled as u64);
        }
        Ok(buf)
    }

    fn write(&self, stream: StreamId, payload: &[u8]) -> Result<(), StoreError> {
        if stream.is_unmetered() {
            let path = stream.path_in(&self.workdir);
            let framed = record_file::frame(payload);
            std::fs::write(&path, &framed).map_err(|e| StoreError::io(&path, e))?;
            return Ok(());
        }
        record_file::write_file(&stream.path_in(&self.workdir), payload, &self.stats)?;
        if matches!(stream, StreamId::TupleRun(..)) {
            // Spill traffic is metered separately (framed size, same
            // as bytes_written sees) so phase-2 overflow is observable
            // on its own axis — identically on every backend.
            self.stats.record_spill(payload.len() as u64 + 4);
        }
        Ok(())
    }

    fn write_raw(&self, stream: StreamId, framed: &[u8]) -> Result<(), StoreError> {
        let path = stream.path_in(&self.workdir);
        std::fs::write(&path, framed).map_err(|e| StoreError::io(&path, e))?;
        if !stream.is_unmetered() {
            self.stats.record_write(framed.len() as u64);
        }
        Ok(())
    }

    fn copy_stream(&self, from: StreamId, to: StreamId) -> Result<(), StoreError> {
        // Spill runs meter on a dedicated axis in `write`; route them
        // through the decode path so the accounting stays uniform.
        if matches!(to, StreamId::TupleRun(..)) {
            let payload = self.read(from)?;
            return self.write(to, &payload);
        }
        let src = from.path_in(&self.workdir);
        let dst = to.path_in(&self.workdir);
        let len = std::fs::copy(&src, &dst).map_err(|e| StoreError::io(&src, e))?;
        if !from.is_unmetered() {
            self.stats.record_read(len);
        }
        if !to.is_unmetered() {
            self.stats.record_write(len);
        }
        Ok(())
    }

    fn delete(&self, stream: StreamId) -> Result<(), StoreError> {
        let path = stream.path_in(&self.workdir);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(&path, e)),
        }
    }

    fn exists(&self, stream: StreamId) -> bool {
        stream.path_in(&self.workdir).exists()
    }

    fn list(&self) -> Result<Vec<StreamId>, StoreError> {
        let root = self.workdir.root();
        let mut streams = Vec::new();
        let read_dir = |dir: PathBuf| -> Result<Vec<String>, StoreError> {
            let mut names = Vec::new();
            match std::fs::read_dir(&dir) {
                Ok(entries) => {
                    for entry in entries {
                        let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
                        if let Ok(name) = entry.file_name().into_string() {
                            names.push(name);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StoreError::io(&dir, e)),
            }
            Ok(names)
        };
        for name in read_dir(root.to_path_buf())? {
            if let Some(stream) = parse_root_name(&name) {
                streams.push(stream);
            }
        }
        for name in read_dir(root.join("parts"))? {
            if let Some(stream) = parse_part_name(&name) {
                streams.push(stream);
            }
        }
        for name in read_dir(root.join("tuples"))? {
            if let Some(stream) = parse_tuple_name(&name) {
                streams.push(stream);
            }
        }
        Ok(streams)
    }

    fn clear_tuples(&self) -> Result<(), StoreError> {
        self.workdir.clear_tuples()
    }

    fn append_updates(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let path = self.updates_path();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io(&path, e))?;
        file.write_all(bytes)
            .map_err(|e| StoreError::io(&path, e))?;
        self.stats.record_write(bytes.len() as u64);
        Ok(())
    }

    fn read_updates(&self) -> Result<Vec<u8>, StoreError> {
        let path = self.updates_path();
        match std::fs::read(&path) {
            Ok(bytes) => {
                // Log drains are metered as bytes only (no op count):
                // how many log files back one logical drain is a
                // deployment detail, the byte total is not — see
                // IoStats::record_log_drain.
                self.stats.record_log_drain(bytes.len() as u64);
                Ok(bytes)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // A never-written log reads as empty (zero bytes, no
                // meter movement — identically on every backend).
                Ok(Vec::new())
            }
            Err(e) => Err(StoreError::io(&path, e)),
        }
    }

    fn truncate_updates(&self) -> Result<(), StoreError> {
        let path = self.updates_path();
        std::fs::write(&path, []).map_err(|e| StoreError::io(&path, e))
    }

    fn storage_usage(&self) -> Result<u64, StoreError> {
        self.workdir.disk_usage()
    }

    fn describe(&self, stream: StreamId) -> PathBuf {
        stream.path_in(&self.workdir)
    }

    fn working_dir(&self) -> Option<&WorkingDir> {
        Some(&self.workdir)
    }
}

/// Parses a root-level file name back to its stream id; directories
/// (`parts`, `tuples`), the update log, and foreign names yield `None`.
fn parse_root_name(name: &str) -> Option<StreamId> {
    match name {
        "meta.bin" => return Some(StreamId::Meta),
        "assignment.bin" => return Some(StreamId::Assignment),
        "clusters.bin" => return Some(StreamId::Clusters),
        "commit.bin" => return Some(StreamId::Commit),
        _ => {}
    }
    let (base, epoch) = name.rsplit_once(".bak")?;
    let epoch: u64 = epoch.parse().ok()?;
    match base {
        "meta.bin" => Some(StreamId::Staged(CommitTarget::Meta, epoch)),
        "assignment.bin" => Some(StreamId::Staged(CommitTarget::Assignment, epoch)),
        _ => None,
    }
}

/// Parses a `parts/` file name (`p0042.profiles`, or a staged backup
/// `p0042.profiles.bak3`, …) back to its stream id; foreign names
/// yield `None`.
fn parse_part_name(name: &str) -> Option<StreamId> {
    if let Some((base, epoch)) = name.rsplit_once(".bak") {
        let epoch: u64 = epoch.parse().ok()?;
        return match parse_part_name(base)? {
            StreamId::Profiles(p) => Some(StreamId::Staged(CommitTarget::Profiles(p), epoch)),
            StreamId::KnnSlice(p) => Some(StreamId::Staged(CommitTarget::KnnSlice(p), epoch)),
            _ => None,
        };
    }
    let rest = name.strip_prefix('p')?;
    let (digits, ext) = rest.split_once('.')?;
    let p: u32 = digits.parse().ok()?;
    match ext {
        "in_edges" => Some(StreamId::InEdges(p)),
        "out_edges" => Some(StreamId::OutEdges(p)),
        "profiles" => Some(StreamId::Profiles(p)),
        "accum" => Some(StreamId::Accumulators(p)),
        "knn" => Some(StreamId::KnnSlice(p)),
        _ => None,
    }
}

/// Parses a `tuples/` file name (`t0001_0007.tuples` or `.runN`) back
/// to its stream id; foreign names yield `None`.
fn parse_tuple_name(name: &str) -> Option<StreamId> {
    let rest = name.strip_prefix('t')?;
    let (pair, ext) = rest.split_once('.')?;
    let (i, j) = pair.split_once('_')?;
    let i: u32 = i.parse().ok()?;
    let j: u32 = j.parse().ok()?;
    if ext == "tuples" {
        Some(StreamId::TupleBucket(i, j))
    } else if let Some(run) = ext.strip_prefix("run") {
        Some(StreamId::TupleRun(i, j, run.parse().ok()?))
    } else if let Some(run) = ext.strip_prefix('x') {
        Some(StreamId::ExchangeRun(i, j, run.parse().ok()?))
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------

/// The in-memory backend: framed byte buffers in a hash map.
///
/// It runs the identical codec and CRC path as [`DiskBackend`] — the
/// stored bytes are what the disk backend would have written — so the
/// layout code keeps its coverage while the filesystem (serialization
/// aside) drops out of the iteration loop entirely. Useful whenever
/// the profile set fits in RAM: same engine, same results, no disk.
#[derive(Debug, Default)]
pub struct MemBackend {
    streams: Mutex<HashMap<StreamId, Vec<u8>>>,
    updates: Mutex<Vec<u8>>,
    stats: Arc<IoStats>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn lock_streams(&self) -> std::sync::MutexGuard<'_, HashMap<StreamId, Vec<u8>>> {
        self.streams.lock().expect("mem backend poisoned")
    }
}

impl StorageBackend for MemBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn read(&self, stream: StreamId) -> Result<Vec<u8>, StoreError> {
        let bytes = self.lock_streams().get(&stream).cloned().ok_or_else(|| {
            StoreError::io(
                self.describe(stream),
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such stream"),
            )
        })?;
        if !stream.is_unmetered() {
            self.stats.record_read(bytes.len() as u64);
        }
        // The stored bytes are the full frame (identical to what the
        // disk backend persists). The checksum is re-verified on every
        // read even though RAM buffers don't rot: a torn raw write (a
        // crash mid-persist, injected or real) leaves a prefix whose
        // only tell is the frame, and corruption must surface as the
        // same Corrupt error on every backend.
        record_file::verify_unframe(bytes, &self.describe(stream))
    }

    fn read_chunk(&self, stream: StreamId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let streams = self.lock_streams();
        let Some(bytes) = streams.get(&stream) else {
            return Err(StoreError::io(
                self.describe(stream),
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such stream"),
            ));
        };
        let start = (offset as usize).min(bytes.len());
        let end = start.saturating_add(len as usize).min(bytes.len());
        let out = bytes[start..end].to_vec();
        if !stream.is_unmetered() {
            self.stats.record_read(out.len() as u64);
        }
        Ok(out)
    }

    fn write(&self, stream: StreamId, payload: &[u8]) -> Result<(), StoreError> {
        let framed = record_file::frame(payload);
        if !stream.is_unmetered() {
            self.stats.record_write(framed.len() as u64);
        }
        if matches!(stream, StreamId::TupleRun(..)) {
            // Same spill meter as DiskBackend (framed size), so the
            // backends stay byte-for-byte comparable.
            self.stats.record_spill(framed.len() as u64);
        }
        self.lock_streams().insert(stream, framed);
        Ok(())
    }

    fn write_raw(&self, stream: StreamId, framed: &[u8]) -> Result<(), StoreError> {
        if !stream.is_unmetered() {
            self.stats.record_write(framed.len() as u64);
        }
        self.lock_streams().insert(stream, framed.to_vec());
        Ok(())
    }

    fn copy_stream(&self, from: StreamId, to: StreamId) -> Result<(), StoreError> {
        // Spill runs meter on a dedicated axis in `write`; keep them
        // on the decode path, same as DiskBackend.
        if matches!(to, StreamId::TupleRun(..)) {
            let payload = self.read(from)?;
            return self.write(to, &payload);
        }
        let mut streams = self.lock_streams();
        let bytes = streams.get(&from).cloned().ok_or_else(|| {
            StoreError::io(
                self.describe(from),
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such stream"),
            )
        })?;
        let len = bytes.len() as u64;
        streams.insert(to, bytes);
        drop(streams);
        if !from.is_unmetered() {
            self.stats.record_read(len);
        }
        if !to.is_unmetered() {
            self.stats.record_write(len);
        }
        Ok(())
    }

    fn delete(&self, stream: StreamId) -> Result<(), StoreError> {
        self.lock_streams().remove(&stream);
        Ok(())
    }

    fn exists(&self, stream: StreamId) -> bool {
        self.lock_streams().contains_key(&stream)
    }

    fn list(&self) -> Result<Vec<StreamId>, StoreError> {
        Ok(self.lock_streams().keys().copied().collect())
    }

    fn append_updates(&self, bytes: &[u8]) -> Result<(), StoreError> {
        self.stats.record_write(bytes.len() as u64);
        self.updates
            .lock()
            .expect("mem backend poisoned")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn read_updates(&self) -> Result<Vec<u8>, StoreError> {
        let bytes = self.updates.lock().expect("mem backend poisoned").clone();
        // Bytes-only log-drain meter, same as DiskBackend.
        self.stats.record_log_drain(bytes.len() as u64);
        Ok(bytes)
    }

    fn truncate_updates(&self) -> Result<(), StoreError> {
        self.updates.lock().expect("mem backend poisoned").clear();
        Ok(())
    }

    fn storage_usage(&self) -> Result<u64, StoreError> {
        let streams: u64 = self.lock_streams().values().map(|v| v.len() as u64).sum();
        let updates = self.updates.lock().expect("mem backend poisoned").len() as u64;
        Ok(streams + updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::UserId;
    use knn_sim::ItemId;

    /// Both backends under one exercise via the trait object.
    fn backends() -> Vec<(Box<dyn StorageBackend>, Option<WorkingDir>)> {
        let disk = DiskBackend::temp("backend_tests").unwrap();
        let wd = disk.working_dir().unwrap().clone();
        vec![
            (Box::new(disk) as Box<dyn StorageBackend>, Some(wd)),
            (Box::new(MemBackend::new()), None),
        ]
    }

    fn destroy(wd: Option<WorkingDir>) {
        if let Some(wd) = wd {
            wd.destroy().unwrap();
        }
    }

    #[test]
    fn typed_round_trips_on_both_backends() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            write_pairs(b, StreamId::InEdges(0), &[(1, 2), (3, 4)]).unwrap();
            assert_eq!(
                read_pairs(b, StreamId::InEdges(0)).unwrap(),
                vec![(1, 2), (3, 4)]
            );
            write_scored_pairs(b, StreamId::KnnSlice(1), &[(0, 1, 0.5)]).unwrap();
            assert_eq!(
                read_scored_pairs(b, StreamId::KnnSlice(1)).unwrap(),
                vec![(0, 1, 0.5)]
            );
            write_user_lists(b, StreamId::Profiles(2), &[(7, vec![(1, 1.0)])]).unwrap();
            assert_eq!(
                read_user_lists(b, StreamId::Profiles(2)).unwrap(),
                vec![(7, vec![(1, 1.0)])]
            );
            write_meta(b, &[(1, 99)]).unwrap();
            assert_eq!(read_meta(b).unwrap(), vec![(1, 99)]);
            destroy(wd);
        }
    }

    #[test]
    fn reading_a_stream_as_the_wrong_kind_fails() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            write_pairs(b, StreamId::InEdges(0), &[(0, 1)]).unwrap();
            // Same partition number, different stream → different kind
            // on disk paths AND different key in memory: simulate the
            // mistake at the raw layer by copying bytes across streams.
            let raw = record_file::encode_pairs(RecordKind::InEdges, &[(0, 1)]);
            b.write(StreamId::OutEdges(0), &raw).unwrap();
            let err = read_pairs(b, StreamId::OutEdges(0)).unwrap_err();
            assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
            destroy(wd);
        }
    }

    #[test]
    fn missing_stream_is_an_io_error() {
        for (b, wd) in backends() {
            let err = read_pairs(b.as_ref(), StreamId::TupleBucket(9, 9)).unwrap_err();
            assert!(matches!(err, StoreError::Io { .. }), "{err}");
            destroy(wd);
        }
    }

    #[test]
    fn delete_is_idempotent_and_exists_tracks() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            assert!(!b.exists(StreamId::Profiles(3)));
            write_user_lists(b, StreamId::Profiles(3), &[]).unwrap();
            assert!(b.exists(StreamId::Profiles(3)));
            b.delete(StreamId::Profiles(3)).unwrap();
            b.delete(StreamId::Profiles(3)).unwrap();
            assert!(!b.exists(StreamId::Profiles(3)));
            destroy(wd);
        }
    }

    #[test]
    fn list_and_clear_tuples_cover_buckets_and_runs() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            write_pairs(b, StreamId::TupleBucket(0, 1), &[(0, 1)]).unwrap();
            write_pairs(b, StreamId::TupleRun(0, 1, 2), &[(0, 1)]).unwrap();
            write_pairs(b, StreamId::ExchangeRun(0, 1, 0), &[(0, 1)]).unwrap();
            write_user_lists(b, StreamId::Profiles(0), &[]).unwrap();
            write_meta(b, &[]).unwrap();
            let mut listed = b.list().unwrap();
            listed.sort_unstable();
            assert_eq!(
                listed,
                vec![
                    StreamId::Meta,
                    StreamId::Profiles(0),
                    StreamId::TupleBucket(0, 1),
                    StreamId::TupleRun(0, 1, 2),
                    StreamId::ExchangeRun(0, 1, 0),
                ]
            );
            b.clear_tuples().unwrap();
            let mut listed = b.list().unwrap();
            listed.sort_unstable();
            assert_eq!(listed, vec![StreamId::Meta, StreamId::Profiles(0)]);
            destroy(wd);
        }
    }

    #[test]
    fn update_log_round_trips_and_truncates() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            assert!(read_deltas(b).unwrap().is_empty(), "fresh log is empty");
            let deltas = vec![
                ProfileDelta::set(UserId::new(1), ItemId::new(10), 2.5),
                ProfileDelta::remove(UserId::new(2), ItemId::new(11)),
            ];
            for d in &deltas {
                append_delta(b, d).unwrap();
            }
            assert_eq!(read_deltas(b).unwrap(), deltas);
            b.truncate_updates().unwrap();
            assert!(read_deltas(b).unwrap().is_empty());
            destroy(wd);
        }
    }

    #[test]
    fn backends_store_identical_bytes() {
        // The acceptance bar for compatibility: the raw framed bytes a
        // MemBackend holds equal the file DiskBackend writes.
        let disk = DiskBackend::temp("backend_bytes").unwrap();
        let mem = MemBackend::new();
        let rows = vec![(3u32, vec![(9u32, 1.5f32), (4, -2.0)]), (5, vec![])];
        write_user_lists(&disk, StreamId::Profiles(0), &rows).unwrap();
        write_user_lists(&mem, StreamId::Profiles(0), &rows).unwrap();
        let on_disk =
            std::fs::read(StreamId::Profiles(0).path_in(disk.working_dir().unwrap())).unwrap();
        let in_mem = mem
            .lock_streams()
            .get(&StreamId::Profiles(0))
            .unwrap()
            .clone();
        assert_eq!(on_disk, in_mem);
        disk.working_dir().unwrap().clone().destroy().unwrap();
    }

    #[test]
    fn read_chunk_slices_the_frame_identically_on_both_backends() {
        let disk = DiskBackend::temp("backend_chunks").unwrap();
        let wd = disk.working_dir().unwrap().clone();
        let mem = MemBackend::new();
        let rows: Vec<(u32, u32)> = (0..100).map(|i| (i, i + 1)).collect();
        let mut frames = Vec::new();
        for b in [&disk as &dyn StorageBackend, &mem] {
            write_pairs(b, StreamId::TupleRun(0, 1, 0), &rows).unwrap();
            let total = b.storage_usage().unwrap();
            // Reassemble the frame from misaligned chunks.
            let mut assembled = Vec::new();
            let mut offset = 0u64;
            loop {
                let chunk = b
                    .read_chunk(StreamId::TupleRun(0, 1, 0), offset, 33)
                    .unwrap();
                if chunk.is_empty() {
                    break;
                }
                offset += chunk.len() as u64;
                assembled.extend_from_slice(&chunk);
            }
            assert_eq!(assembled.len() as u64, total);
            // Past-the-end and clamped reads behave.
            assert!(b
                .read_chunk(StreamId::TupleRun(0, 1, 0), total + 10, 8)
                .unwrap()
                .is_empty());
            assert_eq!(
                b.read_chunk(StreamId::TupleRun(0, 1, 0), total - 2, 100)
                    .unwrap()
                    .len(),
                2
            );
            assert!(matches!(
                b.read_chunk(StreamId::TupleRun(9, 9, 9), 0, 8),
                Err(StoreError::Io { .. })
            ));
            frames.push(assembled);
        }
        assert_eq!(frames[0], frames[1], "backends store identical frames");
        assert_eq!(
            disk.stats().snapshot(),
            mem.stats().snapshot(),
            "chunked reads must meter identically"
        );
        wd.destroy().unwrap();
    }

    #[test]
    fn io_stats_are_metered_uniformly() {
        let mut totals = Vec::new();
        for (b, wd) in backends() {
            let b = b.as_ref();
            write_pairs(b, StreamId::Assignment, &[(0, 0), (1, 1)]).unwrap();
            let _ = read_pairs(b, StreamId::Assignment).unwrap();
            append_delta(b, &ProfileDelta::set(UserId::new(0), ItemId::new(0), 1.0)).unwrap();
            let _ = read_deltas(b).unwrap();
            totals.push(b.stats().snapshot());
            destroy(wd);
        }
        assert_eq!(totals[0], totals[1], "disk and mem must meter alike");
    }

    #[test]
    fn stream_ids_display_and_parse_back() {
        let streams = [
            StreamId::InEdges(7),
            StreamId::OutEdges(7),
            StreamId::Profiles(12),
            StreamId::Accumulators(0),
            StreamId::KnnSlice(3),
        ];
        for s in streams {
            assert_eq!(parse_part_name(&s.to_string()), Some(s));
        }
        assert_eq!(
            parse_tuple_name(&StreamId::TupleBucket(1, 2).to_string()),
            Some(StreamId::TupleBucket(1, 2))
        );
        assert_eq!(
            parse_tuple_name(&StreamId::TupleRun(1, 2, 3).to_string()),
            Some(StreamId::TupleRun(1, 2, 3))
        );
        assert_eq!(
            parse_tuple_name(&StreamId::ExchangeRun(4, 5, 6).to_string()),
            Some(StreamId::ExchangeRun(4, 5, 6))
        );
        assert_eq!(parse_part_name("garbage"), None);
        assert_eq!(parse_tuple_name("t00_xx.nope"), None);
    }

    /// The CRC parity contract (regression for the PR-2 gap): a
    /// corrupted frame — here a torn prefix persisted via `write_raw`,
    /// exactly what a crash mid-write leaves — fails the read with
    /// `Corrupt` on **both** backends, not just disk.
    #[test]
    fn corrupt_frames_fail_reads_identically_on_both_backends() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            let stream = StreamId::Profiles(0);
            let payload = record_file::encode_user_lists(
                RecordKind::Profiles,
                &[(7, vec![(1, 1.0)]), (8, vec![(2, -0.5)])],
            );
            let framed = record_file::frame(&payload);

            // A bit flip inside the stored frame.
            let mut flipped = framed.clone();
            flipped[18] ^= 0x40;
            b.write_raw(stream, &flipped).unwrap();
            let err = b.read(stream).unwrap_err();
            assert!(
                matches!(&err, StoreError::Corrupt { detail, .. } if detail.contains("checksum")),
                "{}: {err}",
                b.name()
            );

            // A torn prefix (write persisted only part of the frame).
            b.write_raw(stream, &framed[..framed.len() / 2]).unwrap();
            let err = b.read(stream).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt { .. }),
                "{}: {err}",
                b.name()
            );

            // The intact frame reads back fine.
            b.write_raw(stream, &framed).unwrap();
            assert_eq!(b.read(stream).unwrap(), payload.to_vec());
            destroy(wd);
        }
    }

    #[test]
    fn commit_and_staged_streams_round_trip_and_list() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            b.write(StreamId::Commit, b"commit-payload").unwrap();
            let staged = [
                StreamId::Staged(CommitTarget::Meta, 3),
                StreamId::Staged(CommitTarget::Assignment, 3),
                StreamId::Staged(CommitTarget::Profiles(2), 3),
                StreamId::Staged(CommitTarget::KnnSlice(11), 4),
            ];
            for (i, s) in staged.iter().enumerate() {
                b.write(*s, &[i as u8; 8]).unwrap();
            }
            assert_eq!(b.read(StreamId::Commit).unwrap(), b"commit-payload");
            for (i, s) in staged.iter().enumerate() {
                assert_eq!(b.read(*s).unwrap(), vec![i as u8; 8]);
                assert!(b.exists(*s));
            }
            let mut listed = b.list().unwrap();
            listed.sort_unstable();
            let mut expected = vec![StreamId::Commit];
            expected.extend(staged);
            expected.sort_unstable();
            assert_eq!(listed, expected);
            // Backups sit outside the epoch they don't belong to:
            // deleting them is ordinary stream deletion.
            for s in staged {
                b.delete(s).unwrap();
                assert!(!b.exists(s));
            }
            destroy(wd);
        }
    }

    #[test]
    fn staged_names_parse_back_and_never_collide_with_bases() {
        for (target, epoch) in [
            (CommitTarget::Profiles(7), 0u64),
            (CommitTarget::KnnSlice(3), 12),
        ] {
            let s = StreamId::Staged(target, epoch);
            assert_eq!(parse_part_name(&s.to_string()), Some(s));
        }
        assert_eq!(
            parse_root_name("meta.bin.bak5"),
            Some(StreamId::Staged(CommitTarget::Meta, 5))
        );
        assert_eq!(
            parse_root_name("assignment.bin.bak0"),
            Some(StreamId::Staged(CommitTarget::Assignment, 0))
        );
        assert_eq!(parse_root_name("commit.bin"), Some(StreamId::Commit));
        assert_eq!(parse_root_name("updates.log"), None);
        assert_eq!(parse_root_name("parts"), None);
        assert_eq!(parse_part_name("p0001.accum.bak2"), None);
        assert_eq!(parse_part_name("p0001.profiles.bakx"), None);
    }

    /// Exchange-run traffic is invisible to the I/O meter on both
    /// backends — sharded and unsharded runs must report identical
    /// storage counters — while the bytes still round-trip framed.
    #[test]
    fn exchange_runs_are_stored_framed_but_unmetered() {
        for (b, wd) in backends() {
            let b = b.as_ref();
            let stream = StreamId::ExchangeRun(1, 2, 0);
            let before = b.stats().snapshot();
            write_pairs(b, stream, &[(3, 4), (5, 6)]).unwrap();
            assert_eq!(read_pairs(b, stream).unwrap(), vec![(3, 4), (5, 6)]);
            let chunk = b.read_chunk(stream, 0, 8).unwrap();
            assert_eq!(chunk.len(), 8);
            assert_eq!(
                b.stats().snapshot(),
                before,
                "{}: exchange traffic leaked into the meter",
                b.name()
            );
            b.delete(stream).unwrap();
            destroy(wd);
        }
    }
}
