//! Storage substrate for the KNN engine, behind a pluggable backend.
//!
//! The Middleware'14 system's premise is that neither the KNN graph
//! `G(t)` nor the profile set `P(t)` fits in memory, so both live in
//! *partition-sized* record streams and the engine moves whole
//! partitions between storage and RAM. Since the [`backend`] redesign
//! the engine speaks only the [`StorageBackend`] trait — the complete
//! storage contract as operations over named record streams
//! ([`backend::StreamId`]) — and this crate provides everything below
//! the algorithm:
//!
//! * [`backend`] — the [`StorageBackend`] trait plus its two shipped
//!   implementations: [`DiskBackend`] (the paper's out-of-core
//!   setting) and [`MemBackend`] (same codec, RAM-resident — the fast
//!   path when the data fits);
//! * [`WorkingDir`] — the on-disk layout `DiskBackend` wraps (one
//!   edge/profile/accumulator file per partition, one tuple bucket per
//!   partition pair);
//! * [`codec`] / [`record_file`] — explicit, versioned binary encodings
//!   shared by every backend (no serde formats are available offline;
//!   the codec is ~100 lines and round-trip tested);
//! * [`tuple_stream`] — the varint-delta tuple codec (format v2):
//!   sorted canonical pairs delta-encoded with packed meta nibbles,
//!   with streaming reader/writer cursors for phase 2's spill runs
//!   and bucket streams; legacy fixed-width pair streams still decode
//!   (see the module docs for the versioning story);
//! * [`IoStats`] — atomic counters living *inside* the backend
//!   boundary, so different backends are metered uniformly;
//! * [`DiskModel`] — seek + bandwidth cost models replaying a run's I/O
//!   trace as simulated HDD/SSD/RAM-disk time (the paper's future-work
//!   device comparison);
//! * [`SlotCache`] — the ≤`c`-resident partition cache whose
//!   load/unload operation counts are exactly the metric of the paper's
//!   Table 1.
//!
//! # Durability & crash consistency
//!
//! The engine rewrites its committed streams in place each iteration,
//! so three modules turn that into an atomic, testable contract:
//!
//! * [`commit`] — the generation-stamped commit protocol: staged
//!   pre-image backups ([`backend::StreamId::Staged`]) taken before a
//!   committed stream is first mutated, one CRC-framed commit record
//!   ([`commit::CommitRecord`]) whose rewrite atomically flips the
//!   visible generation, and [`commit::recover`], which rolls any
//!   crash shape back to the last committed generation (restoring
//!   backups, finishing interrupted log truncations, pruning torn log
//!   tails at the record boundary, deleting orphaned scratch).
//!   Pre-protocol working directories — no commit record, no staged
//!   streams — are recognized and left untouched, so legacy layouts
//!   still resume.
//! * [`fault`] — [`fault::FaultBackend`], a backend decorator running
//!   a seeded, scripted fault plan (crash the Nth op, torn write,
//!   transient run, ENOSPC) so recovery is *property-tested* at every
//!   kill point instead of spot-checked.
//! * [`retry`] — [`retry::RetryBackend`], bounded deterministic
//!   retries (capped exponential backoff, seeded jitter) for
//!   [`StoreError::Transient`] failures, counted on the [`IoStats`]
//!   meter (`retries`; rollbacks land on `rollbacks`).
//!
//! ```
//! use knn_store::{IoStats, SlotCache};
//!
//! // A 2-slot cache holding partition payloads; loads/unloads counted.
//! let mut cache: SlotCache<Vec<u8>> = SlotCache::new(2);
//! cache.ensure(0, None, |_| Ok::<_, std::io::Error>(vec![0u8]), |_, _| Ok(())).unwrap();
//! cache.ensure(1, Some(0), |_| Ok::<_, std::io::Error>(vec![1u8]), |_, _| Ok(())).unwrap();
//! assert_eq!(cache.counters().loads, 2);
//! assert_eq!(cache.counters().unloads, 0);
//! let _ = IoStats::new();
//! ```

pub mod backend;
pub mod cache;
pub mod codec;
pub mod commit;
pub mod crc32;
pub mod delta_log;
pub mod disk_model;
pub mod error;
pub mod fault;
pub mod io_stats;
pub mod layout;
pub mod record_file;
pub mod retry;
pub mod tuple_stream;

pub use backend::{CommitTarget, DiskBackend, MemBackend, StorageBackend, StreamId};
pub use cache::{CacheCounters, SlotCache};
pub use commit::{recover, CommitRecord, CommitTxn, RecoveryReport};
pub use disk_model::DiskModel;
pub use error::StoreError;
pub use fault::{FaultBackend, FaultKind, FaultPlan};
pub use io_stats::{IoSnapshot, IoStats};
pub use layout::WorkingDir;
pub use record_file::RecordKind;
pub use retry::{RetryBackend, RetryPolicy};
pub use tuple_stream::{DecodeStep, TupleDecoder, TupleRow, TupleStreamReader, TupleStreamWriter};
