//! Out-of-core storage substrate for the KNN engine.
//!
//! The Middleware'14 system's whole premise is that neither the KNN
//! graph `G(t)` nor the profile set `P(t)` fits in memory, so both live
//! on disk in *partition-sized* files and the engine moves whole
//! partitions between disk and RAM. This crate provides everything
//! below the algorithm:
//!
//! * [`WorkingDir`] — the on-disk layout (one edge/profile/accumulator
//!   file per partition, one tuple bucket per partition pair);
//! * [`codec`] / [`record_file`] — explicit, versioned binary encodings
//!   (no serde formats are available offline; the codec is ~100 lines
//!   and round-trip tested);
//! * [`IoStats`] — atomic counters observing every byte and operation;
//! * [`DiskModel`] — seek + bandwidth cost models replaying a run's I/O
//!   trace as simulated HDD/SSD/RAM-disk time (the paper's future-work
//!   device comparison);
//! * [`SlotCache`] — the ≤`c`-resident partition cache whose
//!   load/unload operation counts are exactly the metric of the paper's
//!   Table 1.
//!
//! ```
//! use knn_store::{IoStats, SlotCache};
//!
//! // A 2-slot cache holding partition payloads; loads/unloads counted.
//! let mut cache: SlotCache<Vec<u8>> = SlotCache::new(2);
//! cache.ensure(0, None, |_| Ok::<_, std::io::Error>(vec![0u8]), |_, _| Ok(())).unwrap();
//! cache.ensure(1, Some(0), |_| Ok::<_, std::io::Error>(vec![1u8]), |_, _| Ok(())).unwrap();
//! assert_eq!(cache.counters().loads, 2);
//! assert_eq!(cache.counters().unloads, 0);
//! let _ = IoStats::new();
//! ```

pub mod cache;
pub mod codec;
pub mod crc32;
pub mod delta_log;
pub mod disk_model;
pub mod error;
pub mod io_stats;
pub mod layout;
pub mod record_file;

pub use cache::{CacheCounters, SlotCache};
pub use disk_model::DiskModel;
pub use error::StoreError;
pub use io_stats::{IoSnapshot, IoStats};
pub use layout::WorkingDir;
pub use record_file::RecordKind;
