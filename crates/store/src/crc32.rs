//! CRC-32 (IEEE 802.3) checksum.
//!
//! Every write-once record file carries a trailing CRC of its
//! contents, so silent bit corruption is detected at read time rather
//! than surfacing as mis-parsed records. Implemented locally (table
//! driven, compile-time table) because no checksum crate is in the
//! sanctioned offline dependency set.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 (IEEE) of `bytes`.
///
/// ```
/// // The classic test vector.
/// assert_eq!(knn_store::crc32::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 state for streaming writers.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello world, this is a checksum test";
        let mut inc = Crc32::new();
        for chunk in data.chunks(7) {
            inc.update(chunk);
        }
        assert_eq!(inc.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xABu8; 100];
        let before = crc32(&data);
        data[57] ^= 0x10;
        assert_ne!(crc32(&data), before);
    }
}
