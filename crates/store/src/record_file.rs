//! Typed, kind-tagged record files.
//!
//! Every on-disk artifact is one of three record shapes, each wrapped
//! in the standard [`crate::codec`] header and tagged with a
//! [`RecordKind`] so that reading a file as the wrong type fails loudly
//! instead of mis-parsing:
//!
//! * **pair files** — `(u32, u32)` rows: raw edges and `(s, d)` tuples;
//! * **scored-pair files** — `(u32, u32, f32)` rows: KNN edges;
//! * **user-list files** — `user → [(u32, f32)]` rows: profiles and
//!   top-K accumulator states.
//!
//! Files are partition-sized by construction, so reads slurp the whole
//! file (that *is* the engine's "load partition" operation) and writes
//! build the buffer in memory then write once. Every byte is counted in
//! the supplied [`IoStats`].

use bytes::{Buf, BufMut, BytesMut};
use std::path::Path;

use crate::codec::{need, put_header, take_header};
use crate::crc32::crc32;
use crate::{IoStats, StoreError};

/// The record type tag stored in each file's header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
#[non_exhaustive]
pub enum RecordKind {
    /// Directed in-edges of a partition, sorted by bridge vertex.
    InEdges = 1,
    /// Directed out-edges of a partition, sorted by bridge vertex.
    OutEdges = 2,
    /// Deduplicated similarity tuples `(s, d)` of one PI edge.
    Tuples = 3,
    /// Scored KNN edges `(s, d, sim)`.
    ScoredEdges = 4,
    /// User profiles `user → [(item, weight)]`.
    Profiles = 5,
    /// Top-K accumulators `user → [(candidate, sim)]`.
    Accumulators = 6,
    /// Engine metadata (small key-value integers).
    Meta = 7,
    /// Profile-update log entries.
    Updates = 8,
    /// User → partition assignment rows.
    Assignment = 9,
    /// Canonical similarity tuples with packed meta nibbles, in the
    /// varint-delta format of [`crate::tuple_stream`] (format v2;
    /// [`RecordKind::Tuples`] is the legacy fixed-width encoding).
    TuplesV2 = 10,
    /// User → cluster-label rows (the locality pre-pass artifact).
    Clusters = 11,
    /// The generation commit record (see `crate::commit`).
    Commit = 12,
}

/// Appends the trailing CRC-32 frame to a codec payload, producing the
/// exact byte sequence stored at rest (on disk or in a memory backend).
pub fn frame(bytes: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(bytes.len() + 4);
    framed.extend_from_slice(bytes);
    framed.extend_from_slice(&crc32(bytes).to_le_bytes());
    framed
}

/// Verifies the trailing CRC-32 of a framed record, returning the
/// payload without the checksum. `path` only labels errors.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on truncation or checksum mismatch.
pub fn verify_unframe(mut bytes: Vec<u8>, path: &Path) -> Result<Vec<u8>, StoreError> {
    if bytes.len() < 4 {
        return Err(StoreError::corrupt(
            path,
            "record shorter than its checksum",
        ));
    }
    let payload_len = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[payload_len..].try_into().expect("4 bytes"));
    let actual = crc32(&bytes[..payload_len]);
    if stored != actual {
        return Err(StoreError::corrupt(
            path,
            format!("checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"),
        ));
    }
    bytes.truncate(payload_len);
    Ok(bytes)
}

/// Reads a record file and verifies its trailing CRC-32, returning the
/// payload without the checksum. Shared with `DiskBackend` so the
/// path-based API and the backend meter and fail identically.
pub(crate) fn read_file(path: &Path, stats: &IoStats) -> Result<Vec<u8>, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    stats.record_read(bytes.len() as u64);
    verify_unframe(bytes, path)
}

/// Writes a record file with a trailing CRC-32 of the payload. Shared
/// with `DiskBackend` (see [`read_file`]).
pub(crate) fn write_file(path: &Path, bytes: &[u8], stats: &IoStats) -> Result<(), StoreError> {
    let framed = frame(bytes);
    std::fs::write(path, &framed).map_err(|e| StoreError::io(path, e))?;
    stats.record_write(framed.len() as u64);
    Ok(())
}

/// Encodes a pair record (`(u32, u32)` rows) into its unframed codec
/// payload (header + rows, no CRC).
pub fn encode_pairs(kind: RecordKind, rows: &[(u32, u32)]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(16 + rows.len() * 8);
    put_header(&mut buf, kind as u16, rows.len() as u64);
    for &(a, b) in rows {
        buf.put_u32_le(a);
        buf.put_u32_le(b);
    }
    buf
}

/// Decodes a pair record payload written by [`encode_pairs`]. `path`
/// only labels errors.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] / [`StoreError::VersionMismatch`] on
/// malformed content.
pub fn decode_pairs(
    bytes: &[u8],
    kind: RecordKind,
    path: &Path,
) -> Result<Vec<(u32, u32)>, StoreError> {
    let mut buf = bytes;
    let count = take_header(&mut buf, kind as u16, path)?;
    need(&buf, count as usize * 8, "pair rows", path)?;
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        rows.push((buf.get_u32_le(), buf.get_u32_le()));
    }
    Ok(rows)
}

/// Writes a pair file (`(u32, u32)` rows).
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn write_pairs(
    path: &Path,
    kind: RecordKind,
    rows: &[(u32, u32)],
    stats: &IoStats,
) -> Result<(), StoreError> {
    write_file(path, &encode_pairs(kind, rows), stats)
}

/// Reads a pair file written by [`write_pairs`].
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] / [`StoreError::VersionMismatch`] on
/// malformed content and [`StoreError::Io`] on filesystem failure.
pub fn read_pairs(
    path: &Path,
    kind: RecordKind,
    stats: &IoStats,
) -> Result<Vec<(u32, u32)>, StoreError> {
    let bytes = read_file(path, stats)?;
    decode_pairs(&bytes, kind, path)
}

/// Encodes a scored-pair record (`(u32, u32, f32)` rows) into its
/// unframed codec payload.
pub fn encode_scored_pairs(rows: &[(u32, u32, f32)]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(16 + rows.len() * 12);
    put_header(&mut buf, RecordKind::ScoredEdges as u16, rows.len() as u64);
    for &(a, b, s) in rows {
        buf.put_u32_le(a);
        buf.put_u32_le(b);
        buf.put_f32_le(s);
    }
    buf
}

/// Decodes a scored-pair record payload written by
/// [`encode_scored_pairs`]. `path` only labels errors.
///
/// # Errors
///
/// Same as [`decode_pairs`].
pub fn decode_scored_pairs(bytes: &[u8], path: &Path) -> Result<Vec<(u32, u32, f32)>, StoreError> {
    let mut buf = bytes;
    let count = take_header(&mut buf, RecordKind::ScoredEdges as u16, path)?;
    need(&buf, count as usize * 12, "scored rows", path)?;
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        rows.push((buf.get_u32_le(), buf.get_u32_le(), buf.get_f32_le()));
    }
    Ok(rows)
}

/// Writes a scored-pair file (`(u32, u32, f32)` rows).
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn write_scored_pairs(
    path: &Path,
    rows: &[(u32, u32, f32)],
    stats: &IoStats,
) -> Result<(), StoreError> {
    write_file(path, &encode_scored_pairs(rows), stats)
}

/// Reads a scored-pair file written by [`write_scored_pairs`].
///
/// # Errors
///
/// Same as [`read_pairs`].
pub fn read_scored_pairs(path: &Path, stats: &IoStats) -> Result<Vec<(u32, u32, f32)>, StoreError> {
    let bytes = read_file(path, stats)?;
    decode_scored_pairs(&bytes, path)
}

/// One row of a user-list file: a user id and its `(key, value)`
/// entries — `(item, weight)` for profiles, `(candidate, sim)` for
/// accumulators.
pub type UserListRow = (u32, Vec<(u32, f32)>);

/// Writes a user-list file (`user → [(u32, f32)]` rows): profiles
/// (`RecordKind::Profiles`) or accumulators (`RecordKind::Accumulators`).
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn write_user_lists(
    path: &Path,
    kind: RecordKind,
    rows: &[UserListRow],
    stats: &IoStats,
) -> Result<(), StoreError> {
    write_file(path, &encode_user_lists(kind, rows), stats)
}

/// Encodes a user-list record into its unframed codec payload.
pub fn encode_user_lists(kind: RecordKind, rows: &[UserListRow]) -> BytesMut {
    let payload: usize = rows.iter().map(|(_, l)| 8 + l.len() * 8).sum();
    let mut buf = BytesMut::with_capacity(16 + payload);
    put_header(&mut buf, kind as u16, rows.len() as u64);
    for (user, list) in rows {
        buf.put_u32_le(*user);
        buf.put_u32_le(list.len() as u32);
        for &(k, v) in list {
            buf.put_u32_le(k);
            buf.put_f32_le(v);
        }
    }
    buf
}

/// Decodes a user-list record payload written by [`encode_user_lists`].
/// `path` only labels errors.
///
/// # Errors
///
/// Same as [`decode_pairs`].
pub fn decode_user_lists(
    bytes: &[u8],
    kind: RecordKind,
    path: &Path,
) -> Result<Vec<UserListRow>, StoreError> {
    let mut buf = bytes;
    let count = take_header(&mut buf, kind as u16, path)?;
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        need(&buf, 8, "user-list row header", path)?;
        let user = buf.get_u32_le();
        let len = buf.get_u32_le() as usize;
        need(&buf, len * 8, "user-list entries", path)?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            list.push((buf.get_u32_le(), buf.get_f32_le()));
        }
        rows.push((user, list));
    }
    Ok(rows)
}

/// Reads a user-list file written by [`write_user_lists`].
///
/// # Errors
///
/// Same as [`read_pairs`].
pub fn read_user_lists(
    path: &Path,
    kind: RecordKind,
    stats: &IoStats,
) -> Result<Vec<UserListRow>, StoreError> {
    let bytes = read_file(path, stats)?;
    decode_user_lists(&bytes, kind, path)
}

/// Writes a small metadata map of `(key, value)` integers.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn write_meta(path: &Path, entries: &[(u32, u64)], stats: &IoStats) -> Result<(), StoreError> {
    write_file(path, &encode_meta(entries), stats)
}

/// Encodes a metadata map into its unframed codec payload.
pub fn encode_meta(entries: &[(u32, u64)]) -> BytesMut {
    let mut buf = BytesMut::with_capacity(16 + entries.len() * 12);
    put_header(&mut buf, RecordKind::Meta as u16, entries.len() as u64);
    for &(k, v) in entries {
        buf.put_u32_le(k);
        buf.put_u64_le(v);
    }
    buf
}

/// Decodes a metadata map payload written by [`encode_meta`]. `path`
/// only labels errors.
///
/// # Errors
///
/// Same as [`decode_pairs`].
pub fn decode_meta(bytes: &[u8], path: &Path) -> Result<Vec<(u32, u64)>, StoreError> {
    let mut buf = bytes;
    let count = take_header(&mut buf, RecordKind::Meta as u16, path)?;
    need(&buf, count as usize * 12, "meta rows", path)?;
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        rows.push((buf.get_u32_le(), buf.get_u64_le()));
    }
    Ok(rows)
}

/// Reads a metadata map written by [`write_meta`].
///
/// # Errors
///
/// Same as [`read_pairs`].
pub fn read_meta(path: &Path, stats: &IoStats) -> Result<Vec<(u32, u64)>, StoreError> {
    let bytes = read_file(path, stats)?;
    decode_meta(&bytes, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkingDir;

    fn setup() -> (WorkingDir, IoStats) {
        (WorkingDir::temp("record_file").unwrap(), IoStats::new())
    }

    #[test]
    fn pairs_round_trip_and_count_io() {
        let (wd, stats) = setup();
        let path = wd.tuples_path(0, 1);
        let rows = vec![(1, 2), (3, 4), (5, 6)];
        write_pairs(&path, RecordKind::Tuples, &rows, &stats).unwrap();
        let back = read_pairs(&path, RecordKind::Tuples, &stats).unwrap();
        assert_eq!(back, rows);
        let snap = stats.snapshot();
        // header (16) + 3 pair rows (24) + trailing CRC-32 (4).
        assert_eq!(snap.bytes_written, 16 + 24 + 4);
        assert_eq!(snap.bytes_read, snap.bytes_written);
        wd.destroy().unwrap();
    }

    #[test]
    fn reading_with_wrong_kind_fails() {
        let (wd, stats) = setup();
        let path = wd.in_edges_path(0);
        write_pairs(&path, RecordKind::InEdges, &[(0, 1)], &stats).unwrap();
        let err = read_pairs(&path, RecordKind::OutEdges, &stats).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        wd.destroy().unwrap();
    }

    #[test]
    fn scored_pairs_round_trip() {
        let (wd, stats) = setup();
        let path = wd.out_edges_path(3);
        let rows = vec![(0, 1, 0.5f32), (2, 7, -0.25)];
        write_scored_pairs(&path, &rows, &stats).unwrap();
        assert_eq!(read_scored_pairs(&path, &stats).unwrap(), rows);
        wd.destroy().unwrap();
    }

    #[test]
    fn user_lists_round_trip() {
        let (wd, stats) = setup();
        let path = wd.profiles_path(0);
        let rows = vec![
            (7u32, vec![(1u32, 0.5f32), (9, 2.0)]),
            (8, vec![]),
            (12, vec![(0, -1.0)]),
        ];
        write_user_lists(&path, RecordKind::Profiles, &rows, &stats).unwrap();
        assert_eq!(
            read_user_lists(&path, RecordKind::Profiles, &stats).unwrap(),
            rows
        );
        wd.destroy().unwrap();
    }

    #[test]
    fn truncated_user_list_is_corrupt_not_panic() {
        let (wd, stats) = setup();
        let path = wd.accum_path(0);
        let rows = vec![(1u32, vec![(2u32, 1.0f32); 10])];
        write_user_lists(&path, RecordKind::Accumulators, &rows, &stats).unwrap();
        // Chop off the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        let err = read_user_lists(&path, RecordKind::Accumulators, &stats).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        wd.destroy().unwrap();
    }

    #[test]
    fn truncated_pair_file_is_corrupt() {
        let (wd, stats) = setup();
        let path = wd.tuples_path(1, 1);
        write_pairs(&path, RecordKind::Tuples, &[(1, 2), (3, 4)], &stats).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_pairs(&path, RecordKind::Tuples, &stats),
            Err(StoreError::Corrupt { .. })
        ));
        wd.destroy().unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let (wd, stats) = setup();
        let err = read_pairs(&wd.tuples_path(9, 9), RecordKind::Tuples, &stats).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        wd.destroy().unwrap();
    }

    #[test]
    fn meta_round_trips() {
        let (wd, stats) = setup();
        let path = wd.meta_path();
        let entries = vec![(1u32, 100u64), (2, 8), (3, u64::MAX)];
        write_meta(&path, &entries, &stats).unwrap();
        assert_eq!(read_meta(&path, &stats).unwrap(), entries);
        wd.destroy().unwrap();
    }

    #[test]
    fn bit_flip_inside_payload_is_detected_by_crc() {
        let (wd, stats) = setup();
        let path = wd.tuples_path(2, 2);
        write_pairs(&path, RecordKind::Tuples, &[(7, 8), (9, 10)], &stats).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x01; // flip one payload bit
        std::fs::write(&path, &bytes).unwrap();
        let err = read_pairs(&path, RecordKind::Tuples, &stats).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { detail, .. } if detail.contains("checksum")),
            "{err}"
        );
        wd.destroy().unwrap();
    }

    #[test]
    fn empty_files_round_trip() {
        let (wd, stats) = setup();
        let path = wd.tuples_path(0, 0);
        write_pairs(&path, RecordKind::Tuples, &[], &stats).unwrap();
        assert!(read_pairs(&path, RecordKind::Tuples, &stats)
            .unwrap()
            .is_empty());
        wd.destroy().unwrap();
    }
}
