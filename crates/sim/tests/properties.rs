//! Property-based tests for profiles and similarity kernels.

use knn_sim::{Measure, PreparedProfile, Profile, Similarity};
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: raw (item, weight) pairs with possibly duplicate items.
fn raw_pairs() -> impl Strategy<Value = Vec<(u32, f32)>> {
    proptest::collection::vec((0u32..50, -5.0f32..5.0), 0..30)
}

/// Builds a profile keeping the last weight per item (map semantics).
fn build(pairs: &[(u32, f32)]) -> Profile {
    let mut map: HashMap<u32, f32> = HashMap::new();
    for &(i, w) in pairs {
        map.insert(i, w);
    }
    Profile::from_unsorted_pairs(map.into_iter().collect()).unwrap()
}

/// Naive dot product via hash map, for cross-checking the merge join.
fn naive_dot(a: &Profile, b: &Profile) -> f64 {
    let bm: HashMap<u32, f32> = b.iter().map(|(i, w)| (i.raw(), w)).collect();
    a.iter()
        .filter_map(|(i, w)| bm.get(&i.raw()).map(|bw| w as f64 * *bw as f64))
        .sum()
}

proptest! {
    #[test]
    fn dot_matches_naive(pa in raw_pairs(), pb in raw_pairs()) {
        let (a, b) = (build(&pa), build(&pb));
        let merged = a.dot(&b);
        let naive = naive_dot(&a, &b);
        prop_assert!((merged - naive).abs() < 1e-6, "{merged} vs {naive}");
    }

    #[test]
    fn common_items_matches_naive(pa in raw_pairs(), pb in raw_pairs()) {
        let (a, b) = (build(&pa), build(&pb));
        let bs: std::collections::HashSet<u32> = b.iter().map(|(i, _)| i.raw()).collect();
        let naive = a.iter().filter(|(i, _)| bs.contains(&i.raw())).count();
        prop_assert_eq!(a.common_items(&b), naive);
    }

    #[test]
    fn all_measures_symmetric_and_finite(pa in raw_pairs(), pb in raw_pairs()) {
        let (a, b) = (build(&pa), build(&pb));
        for m in Measure::ALL {
            let ab = m.score(&a, &b);
            let ba = m.score(&b, &a);
            prop_assert!(ab.is_finite(), "{m} not finite");
            prop_assert_eq!(ab, ba, "{} not symmetric", m);
        }
    }

    #[test]
    fn bounded_measures_stay_in_range(pa in raw_pairs(), pb in raw_pairs()) {
        let (a, b) = (build(&pa), build(&pb));
        let cos = Measure::Cosine.score(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&cos));
        let pearson = Measure::Pearson.score(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&pearson));
        let jac = Measure::Jaccard.score(&a, &b);
        prop_assert!((0.0..=1.0).contains(&jac));
        let ovl = Measure::Overlap.score(&a, &b);
        prop_assert!((0.0..=1.0).contains(&ovl));
    }

    #[test]
    fn weighted_jaccard_bounds_hold_for_nonnegative(
        pa in proptest::collection::vec((0u32..40, 0.0f32..5.0), 0..25),
        pb in proptest::collection::vec((0u32..40, 0.0f32..5.0), 0..25),
    ) {
        let (a, b) = (build(&pa), build(&pb));
        let wj = Measure::WeightedJaccard.score(&a, &b);
        prop_assert!((0.0..=1.0).contains(&wj), "weighted jaccard {wj} out of range");
    }

    #[test]
    fn self_similarity_is_maximal_for_normalized_measures(pa in raw_pairs()) {
        let a = build(&pa);
        prop_assume!(!a.is_empty());
        prop_assume!(a.l2_norm() > 1e-6);
        let cos = Measure::Cosine.score(&a, &a);
        prop_assert!((cos - 1.0).abs() < 1e-5, "cosine self = {cos}");
        let jac = Measure::Jaccard.score(&a, &a);
        prop_assert!((jac - 1.0).abs() < 1e-6);
    }

    /// The prepared-kernel determinism contract: for every measure,
    /// `score_prepared` is **bit-identical** to the classic
    /// `Similarity::score` path — preparing profiles never changes a
    /// computed graph.
    #[test]
    fn prepared_scores_are_bit_identical(pa in raw_pairs(), pb in raw_pairs()) {
        let (a, b) = (build(&pa), build(&pb));
        let (qa, qb) = (PreparedProfile::new(a.clone()), PreparedProfile::new(b.clone()));
        for m in Measure::ALL {
            let plain = m.score(&a, &b);
            let prepared = m.score_prepared(&qa, &qb);
            prop_assert_eq!(
                plain.to_bits(),
                prepared.to_bits(),
                "{} diverged: plain {} vs prepared {}",
                m, plain, prepared
            );
        }
    }

    /// Upper bounds are true upper bounds: no measure ever scores a
    /// pair above its O(1) ceiling, for arbitrary (including negative)
    /// weights — item ids spanning many sketch blocks (and wrapping
    /// the block ring) included.
    #[test]
    fn upper_bounds_dominate_scores(
        pa in proptest::collection::vec((0u32..5000, -5.0f32..5.0), 0..40),
        pb in proptest::collection::vec((0u32..5000, -5.0f32..5.0), 0..40),
    ) {
        let (qa, qb) = (
            PreparedProfile::new(build(&pa)),
            PreparedProfile::new(build(&pb)),
        );
        for m in Measure::ALL {
            let score = m.score_prepared(&qa, &qb);
            let bound = m.upper_bound(&qa, &qb);
            prop_assert!(
                bound >= score,
                "{} bound {} below score {}", m, bound, score
            );
            // Bounds are symmetric, like the measures themselves.
            prop_assert_eq!(bound.to_bits(), m.upper_bound(&qb, &qa).to_bits(), "{} bound asymmetric", m);
        }
    }

    #[test]
    fn profile_set_then_get_round_trips(ops in proptest::collection::vec((0u32..20, -3.0f32..3.0), 1..40)) {
        let mut p = Profile::new();
        let mut model: HashMap<u32, f32> = HashMap::new();
        for &(i, w) in &ops {
            p.set(knn_sim::ItemId::new(i), w);
            model.insert(i, w);
        }
        prop_assert_eq!(p.len(), model.len());
        for (&i, &w) in &model {
            prop_assert_eq!(p.get(knn_sim::ItemId::new(i)), Some(w));
        }
        // Entries stay sorted.
        let items: Vec<u32> = p.iter().map(|(i, _)| i.raw()).collect();
        let mut sorted = items.clone();
        sorted.sort_unstable();
        prop_assert_eq!(items, sorted);
    }
}

/// Builds an arena of the two generated profiles next to their owned
/// prepared forms (same map semantics as `build`).
fn build_arena(pa: &[(u32, f32)], pb: &[(u32, f32)]) -> knn_sim::ProfileArena {
    let dedup = |pairs: &[(u32, f32)]| {
        let mut map: HashMap<u32, f32> = HashMap::new();
        for &(i, w) in pairs {
            map.insert(i, w);
        }
        map.into_iter().collect::<Vec<_>>()
    };
    let mut builder = knn_sim::ProfileArena::builder(2, pa.len() + pb.len());
    builder.push(0, dedup(pa)).unwrap();
    builder.push(1, dedup(pb)).unwrap();
    builder.finish()
}

proptest! {
    /// The arena-backed borrowed path is bit-identical to the owned
    /// prepared path — scores and upper bounds alike, for every
    /// measure: the tentpole determinism contract of the phase-4
    /// arena rework.
    #[test]
    fn arena_views_are_bit_identical_to_prepared_profiles(
        pa in raw_pairs(),
        pb in raw_pairs(),
    ) {
        let arena = build_arena(&pa, &pb);
        let (a, b) = (build(&pa), build(&pb));
        let (pa, pb) = (PreparedProfile::new(a), PreparedProfile::new(b));
        let (va, vb) = (arena.view(0), arena.view(1));
        for m in Measure::ALL {
            prop_assert_eq!(
                m.score_ref(va, vb).to_bits(),
                m.score_prepared(&pa, &pb).to_bits(),
                "{} score diverged", m
            );
            prop_assert_eq!(
                m.score_ref(va, vb).to_bits(),
                m.score(pa.profile(), pb.profile()).to_bits(),
                "{} unprepared score diverged", m
            );
            prop_assert_eq!(
                m.upper_bound_ref(va, vb).to_bits(),
                m.upper_bound(&pa, &pb).to_bits(),
                "{} bound diverged", m
            );
            prop_assert!(
                m.upper_bound_ref(va, vb) >= m.score_ref(va, vb),
                "{} bound below score", m
            );
        }
    }
}
