//! Arena-backed prepared profiles: one CSR allocation per partition.
//!
//! Phase 4 used to wrap every loaded profile in its own
//! [`crate::PreparedProfile`] inside a hash map — one heap allocation
//! per user for the entry vector, another for the boxed sketch, and a
//! fat map entry per lookup. At partition scale that is thousands of
//! small allocations per load and a pointer chase per scored pair.
//!
//! [`ProfileArena`] replaces the per-user objects with four columns
//! shared by the whole partition:
//!
//! * `offsets` — CSR row boundaries (`offsets[i]..offsets[i+1]` is
//!   user `i`'s entry range);
//! * `entries` — every user's sorted `(item, weight)` rows,
//!   concatenated;
//! * `stats` / `sketches` — the per-user [`ProfileStats`] and
//!   [`BoundSketch`], in row order.
//!
//! [`PreparedRef`] is the borrowing view over one row: two pointers
//! and two slice lengths, created on demand — no allocation, no
//! clone. [`Measure::score_ref`] and [`Measure::upper_bound_ref`]
//! run the *same* kernel functions over the same entry slices as the
//! owned [`crate::Measure::score_prepared`] path, so the scores are
//! bit-identical by construction (property-tested in
//! `tests/properties.rs`).
//!
//! Rows are appended in ascending user order — exactly the order of
//! the engine's per-partition profile streams, which is what lets
//! phase 4 materialize the arena in one pass over a stream read.

use crate::prepared::{upper_bound_parts, BoundSketch, ProfileStats};
use crate::similarity::score_entries;
use crate::{ItemId, Measure, ProfileError};

/// The per-partition CSR profile arena (see the module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileArena {
    users: Vec<u32>,
    offsets: Vec<u32>,
    entries: Vec<(ItemId, f32)>,
    stats: Vec<ProfileStats>,
    sketches: Vec<BoundSketch>,
}

impl ProfileArena {
    /// Starts building an arena, reserving for `users` rows and
    /// `entries` total profile entries.
    pub fn builder(users: usize, entries: usize) -> ProfileArenaBuilder {
        ProfileArenaBuilder {
            arena: ProfileArena {
                users: Vec::with_capacity(users),
                offsets: {
                    let mut v = Vec::with_capacity(users + 1);
                    v.push(0);
                    v
                },
                entries: Vec::with_capacity(entries),
                stats: Vec::with_capacity(users),
                sketches: Vec::with_capacity(users),
            },
        }
    }

    /// Number of profiles stored.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the arena holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Total profile entries across all rows.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The stored user ids, ascending (row order).
    pub fn users(&self) -> &[u32] {
        &self.users
    }

    /// The row index of `user`, if present (binary search over the
    /// sorted user column; hot paths should cache the index).
    pub fn index_of(&self, user: u32) -> Option<u32> {
        self.users.binary_search(&user).ok().map(|i| i as u32)
    }

    /// The borrowing prepared view of row `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn view(&self, idx: u32) -> PreparedRef<'_> {
        let i = idx as usize;
        let (start, end) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        PreparedRef {
            entries: &self.entries[start..end],
            stats: &self.stats[i],
            sketch: &self.sketches[i],
        }
    }

    /// The view of `user`'s row, resolving the index first.
    pub fn get(&self, user: u32) -> Option<PreparedRef<'_>> {
        self.index_of(user).map(|i| self.view(i))
    }
}

/// Incremental [`ProfileArena`] constructor; rows arrive in strictly
/// ascending user order.
#[derive(Debug)]
pub struct ProfileArenaBuilder {
    arena: ProfileArena,
}

impl ProfileArenaBuilder {
    /// Appends one user's profile row from raw `(item, weight)` pairs
    /// in any order, validating exactly like
    /// [`crate::Profile::from_unsorted_pairs`] and computing the row's
    /// stats and sketch over the sorted entries.
    ///
    /// # Errors
    ///
    /// [`ProfileError::NonFiniteWeight`] / [`ProfileError::DuplicateItem`]
    /// for invalid rows, [`ProfileError::OutOfOrderUser`] when `user`
    /// is not strictly greater than the previously pushed one.
    pub fn push(&mut self, user: u32, pairs: Vec<(u32, f32)>) -> Result<(), ProfileError> {
        if self.arena.users.last().is_some_and(|&last| last >= user) {
            return Err(ProfileError::OutOfOrderUser { user });
        }
        let start = self.arena.entries.len();
        for (item, weight) in pairs {
            if !weight.is_finite() {
                self.arena.entries.truncate(start);
                return Err(ProfileError::NonFiniteWeight { item, weight });
            }
            self.arena.entries.push((ItemId::new(item), weight));
        }
        let duplicate = {
            let row = &mut self.arena.entries[start..];
            row.sort_unstable_by_key(|&(i, _)| i);
            row.windows(2)
                .find(|w| w[0].0 == w[1].0)
                .map(|w| w[0].0.raw())
        };
        if let Some(item) = duplicate {
            self.arena.entries.truncate(start);
            return Err(ProfileError::DuplicateItem { item });
        }
        let (stats, sketch) = ProfileStats::with_sketch_of_entries(&self.arena.entries[start..]);
        self.arena.users.push(user);
        self.arena.offsets.push(self.arena.entries.len() as u32);
        self.arena.stats.push(stats);
        self.arena.sketches.push(sketch);
        Ok(())
    }

    /// Finishes the arena.
    pub fn finish(self) -> ProfileArena {
        self.arena
    }
}

/// A borrowed prepared profile: the operand of [`Measure::score_ref`]
/// and [`Measure::upper_bound_ref`] — slices into a
/// [`ProfileArena`]'s columns, no ownership, no allocation.
#[derive(Debug, Clone, Copy)]
pub struct PreparedRef<'a> {
    entries: &'a [(ItemId, f32)],
    stats: &'a ProfileStats,
    sketch: &'a BoundSketch,
}

impl<'a> PreparedRef<'a> {
    /// Assembles a view from parts the caller prepared: a sorted,
    /// deduplicated entry slice plus the matching
    /// [`ProfileStats::with_sketch`] outputs. This is how callers
    /// outside the arena (e.g. the serving layer's online repair
    /// search) run ad-hoc profiles through the exact same score and
    /// upper-bound kernels phase 4 uses — same funnel, same skips,
    /// bit-identical scores.
    pub fn new(
        entries: &'a [(ItemId, f32)],
        stats: &'a ProfileStats,
        sketch: &'a BoundSketch,
    ) -> Self {
        PreparedRef {
            entries,
            stats,
            sketch,
        }
    }

    /// The sorted entry slice.
    pub fn entries(&self) -> &'a [(ItemId, f32)] {
        self.entries
    }

    /// The precomputed scalar aggregates.
    pub fn stats(&self) -> &'a ProfileStats {
        self.stats
    }

    /// The precomputed bound sketch.
    pub fn sketch(&self) -> &'a BoundSketch {
        self.sketch
    }
}

impl Measure {
    /// Scores two arena views. Bit-identical to
    /// [`Measure::score_prepared`] (and therefore to
    /// [`crate::Similarity::score`]) on the same profiles: the same
    /// kernel runs over the same sorted entry slices with the same
    /// precomputed aggregates.
    pub fn score_ref(&self, a: PreparedRef<'_>, b: PreparedRef<'_>) -> f32 {
        let v = score_entries(*self, a.entries, a.stats, b.entries, b.stats);
        debug_assert!(v.is_finite(), "{self} produced non-finite score {v}");
        v as f32
    }

    /// The O(1) score ceiling of two arena views; identical to
    /// [`Measure::upper_bound`] on the same profiles.
    pub fn upper_bound_ref(&self, a: PreparedRef<'_>, b: PreparedRef<'_>) -> f32 {
        upper_bound_parts(*self, a.stats, a.sketch, b.stats, b.sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PreparedProfile, Profile};

    fn arena_of(rows: &[(u32, Vec<(u32, f32)>)]) -> ProfileArena {
        let mut b = ProfileArena::builder(rows.len(), 16);
        for (user, pairs) in rows {
            b.push(*user, pairs.clone()).unwrap();
        }
        b.finish()
    }

    #[test]
    fn views_score_bit_identically_to_prepared_profiles() {
        let rows = vec![
            (0u32, vec![(1u32, 1.0f32), (2, -2.0), (9, 0.5)]),
            (3, vec![(2, 3.0), (9, 1.0)]),
            (4, vec![]),
            (9, vec![(100, 1.0), (1, 0.25), (3, 4.0)]),
        ];
        let arena = arena_of(&rows);
        let prepared: Vec<PreparedProfile> = rows
            .iter()
            .map(|(_, p)| PreparedProfile::new(Profile::from_unsorted_pairs(p.clone()).unwrap()))
            .collect();
        for m in Measure::ALL {
            for i in 0..rows.len() {
                for j in 0..rows.len() {
                    let via_ref = m.score_ref(arena.view(i as u32), arena.view(j as u32));
                    let via_owned = m.score_prepared(&prepared[i], &prepared[j]);
                    assert_eq!(via_ref.to_bits(), via_owned.to_bits(), "{m} diverged");
                    let bound_ref = m.upper_bound_ref(arena.view(i as u32), arena.view(j as u32));
                    let bound_owned = m.upper_bound(&prepared[i], &prepared[j]);
                    assert_eq!(bound_ref.to_bits(), bound_owned.to_bits(), "{m} bound");
                }
            }
        }
    }

    #[test]
    fn index_and_views_resolve_rows() {
        let arena = arena_of(&[(2, vec![(5, 1.0)]), (7, vec![(1, 2.0), (3, 4.0)])]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.entry_count(), 3);
        assert_eq!(arena.users(), &[2, 7]);
        assert_eq!(arena.index_of(7), Some(1));
        assert_eq!(arena.index_of(3), None);
        let v = arena.get(7).unwrap();
        assert_eq!(v.entries().len(), 2);
        assert_eq!(v.stats().len, 2);
        assert_eq!(v.entries()[0].0.raw(), 1, "entries sorted by item");
        assert!(arena.get(3).is_none());
    }

    #[test]
    fn builder_rejects_out_of_order_and_invalid_rows() {
        let mut b = ProfileArena::builder(4, 4);
        b.push(5, vec![(1, 1.0)]).unwrap();
        assert_eq!(
            b.push(5, vec![]),
            Err(ProfileError::OutOfOrderUser { user: 5 })
        );
        assert_eq!(
            b.push(2, vec![]),
            Err(ProfileError::OutOfOrderUser { user: 2 })
        );
        assert_eq!(
            b.push(8, vec![(3, 1.0), (3, 2.0)]),
            Err(ProfileError::DuplicateItem { item: 3 })
        );
        assert!(matches!(
            b.push(9, vec![(1, f32::NAN)]),
            Err(ProfileError::NonFiniteWeight { item: 1, .. })
        ));
        // Failed pushes leave no partial row behind.
        b.push(10, vec![(2, 2.0)]).unwrap();
        let arena = b.finish();
        assert_eq!(arena.users(), &[5, 10]);
        assert_eq!(arena.entry_count(), 2);
    }

    #[test]
    fn empty_arena_and_empty_rows() {
        let empty = ProfileArena::builder(0, 0).finish();
        assert!(empty.is_empty());
        assert_eq!(empty.index_of(0), None);
        let arena = arena_of(&[(0, vec![])]);
        let v = arena.view(0);
        assert!(v.entries().is_empty());
        assert_eq!(v.stats().len, 0);
        assert_eq!(Measure::Cosine.score_ref(v, v), 0.0);
    }
}
