//! Sparse user profiles.

use std::fmt;

use crate::ProfileError;

/// Identifier of an item (a dimension of the sparse profile space):
/// a movie, a term, a tag, a product.
///
/// ```
/// use knn_sim::ItemId;
///
/// let i = ItemId::new(12);
/// assert_eq!(i.raw(), 12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ItemId(u32);

impl ItemId {
    /// Creates an item id from its raw value.
    pub const fn new(raw: u32) -> Self {
        ItemId(raw)
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for ItemId {
    fn from(raw: u32) -> Self {
        ItemId(raw)
    }
}

impl From<ItemId> for u32 {
    fn from(id: ItemId) -> Self {
        id.0
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ItemId({})", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A user profile: a sparse vector mapping items to finite weights,
/// stored sorted by item id.
///
/// A profile with all weights `1.0` behaves as a plain item *set*
/// (useful with the Jaccard and overlap measures); arbitrary weights
/// model ratings or term frequencies.
///
/// ```
/// use knn_sim::{ItemId, Profile};
///
/// let mut p = Profile::new();
/// p.set(ItemId::new(3), 4.5);
/// p.set(ItemId::new(1), 2.0);
/// assert_eq!(p.get(ItemId::new(3)), Some(4.5));
/// assert_eq!(p.len(), 2);
/// // Entries iterate in item order regardless of insertion order.
/// let items: Vec<u32> = p.iter().map(|(i, _)| i.raw()).collect();
/// assert_eq!(items, vec![1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    entries: Vec<(ItemId, f32)>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Profile {
            entries: Vec::new(),
        }
    }

    /// Builds a profile from raw `(item, weight)` pairs in any order.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::NonFiniteWeight`] for NaN/infinite
    /// weights and [`ProfileError::DuplicateItem`] for repeated items.
    pub fn from_unsorted_pairs(pairs: Vec<(u32, f32)>) -> Result<Self, ProfileError> {
        let mut entries: Vec<(ItemId, f32)> = Vec::with_capacity(pairs.len());
        for (item, weight) in pairs {
            if !weight.is_finite() {
                return Err(ProfileError::NonFiniteWeight { item, weight });
            }
            entries.push((ItemId::new(item), weight));
        }
        entries.sort_unstable_by_key(|&(i, _)| i);
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ProfileError::DuplicateItem { item: w[0].0.raw() });
            }
        }
        Ok(Profile { entries })
    }

    /// Builds a profile from pairs that are **already sorted by item,
    /// deduplicated** — without validating weights. The trusted-input
    /// escape hatch: every other constructor enforces finite weights,
    /// so this is the only way to materialize a non-finite profile
    /// (tests use it to prove downstream layers — e.g. `knn-serve`
    /// query validation — treat profiles as untrusted anyway).
    ///
    /// Sortedness/uniqueness are `debug_assert`ed; weight finiteness
    /// deliberately is not checked at all.
    pub fn from_sorted_pairs_unchecked(pairs: Vec<(ItemId, f32)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "pairs must be sorted by item and deduplicated"
        );
        Profile { entries: pairs }
    }

    /// Builds a set-semantics profile (all weights `1.0`) from item ids.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::DuplicateItem`] for repeated items.
    pub fn from_items(items: Vec<u32>) -> Result<Self, ProfileError> {
        Self::from_unsorted_pairs(items.into_iter().map(|i| (i, 1.0)).collect())
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the profile has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight of `item`, if present.
    pub fn get(&self, item: ItemId) -> Option<f32> {
        self.entries
            .binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|idx| self.entries[idx].1)
    }

    /// Sets (inserts or overwrites) the weight of `item`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite; use [`Profile::try_set`] for a
    /// checked variant.
    pub fn set(&mut self, item: ItemId, weight: f32) {
        self.try_set(item, weight).expect("weight must be finite");
    }

    /// Sets the weight of `item`, validating finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::NonFiniteWeight`] if `weight` is NaN or
    /// infinite.
    pub fn try_set(&mut self, item: ItemId, weight: f32) -> Result<(), ProfileError> {
        if !weight.is_finite() {
            return Err(ProfileError::NonFiniteWeight {
                item: item.raw(),
                weight,
            });
        }
        match self.entries.binary_search_by_key(&item, |&(i, _)| i) {
            Ok(idx) => self.entries[idx].1 = weight,
            Err(idx) => self.entries.insert(idx, (item, weight)),
        }
        Ok(())
    }

    /// Removes `item`, returning its weight if it was present.
    pub fn remove(&mut self, item: ItemId) -> Option<f32> {
        self.entries
            .binary_search_by_key(&item, |&(i, _)| i)
            .ok()
            .map(|idx| self.entries.remove(idx).1)
    }

    /// Iterates `(item, weight)` entries in ascending item order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, f32)> + '_ {
        self.entries.iter().copied()
    }

    /// The sorted entry slice (ascending item id).
    pub fn entries(&self) -> &[(ItemId, f32)] {
        &self.entries
    }

    /// Euclidean (L2) norm of the weight vector.
    pub fn l2_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|&(_, w)| (w as f64) * (w as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Sum of weights.
    pub fn weight_sum(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w as f64).sum()
    }

    /// Dot product with another profile (sorted merge join; shares its
    /// kernel with the similarity measures).
    pub fn dot(&self, other: &Profile) -> f64 {
        crate::similarity::dot(&self.entries, &other.entries)
    }

    /// Number of items present in both profiles.
    pub fn common_items(&self, other: &Profile) -> usize {
        crate::similarity::common_items(&self.entries, &other.entries)
    }

    /// Approximate heap footprint in bytes (used for memory budgeting
    /// and on-disk size estimates: each entry is an item id plus a
    /// weight, 8 bytes).
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * 8 + std::mem::size_of::<Self>()
    }
}

impl FromIterator<(ItemId, f32)> for Profile {
    /// Collects entries, keeping the **last** weight for duplicate
    /// items (like a map built by repeated insertion).
    ///
    /// # Panics
    ///
    /// Panics if a weight is non-finite.
    fn from_iter<T: IntoIterator<Item = (ItemId, f32)>>(iter: T) -> Self {
        let mut p = Profile::new();
        for (item, weight) in iter {
            p.set(item, weight);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(pairs: &[(u32, f32)]) -> Profile {
        Profile::from_unsorted_pairs(pairs.to_vec()).unwrap()
    }

    #[test]
    fn from_unsorted_sorts_by_item() {
        let p = prof(&[(9, 1.0), (2, 2.0), (5, 3.0)]);
        let items: Vec<u32> = p.iter().map(|(i, _)| i.raw()).collect();
        assert_eq!(items, vec![2, 5, 9]);
    }

    #[test]
    fn rejects_duplicates_and_nan() {
        assert_eq!(
            Profile::from_unsorted_pairs(vec![(1, 1.0), (1, 2.0)]),
            Err(ProfileError::DuplicateItem { item: 1 })
        );
        assert!(matches!(
            Profile::from_unsorted_pairs(vec![(1, f32::NAN)]),
            Err(ProfileError::NonFiniteWeight { item: 1, .. })
        ));
        assert!(matches!(
            Profile::from_unsorted_pairs(vec![(1, f32::INFINITY)]),
            Err(ProfileError::NonFiniteWeight { .. })
        ));
    }

    #[test]
    fn set_overwrites_and_inserts() {
        let mut p = Profile::new();
        p.set(ItemId::new(4), 1.0);
        p.set(ItemId::new(4), 2.5);
        p.set(ItemId::new(1), 0.5);
        assert_eq!(p.get(ItemId::new(4)), Some(2.5));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn try_set_rejects_non_finite() {
        let mut p = Profile::new();
        assert!(p.try_set(ItemId::new(0), f32::NEG_INFINITY).is_err());
        assert!(p.is_empty());
    }

    #[test]
    fn remove_returns_old_weight() {
        let mut p = prof(&[(1, 1.5), (2, 2.5)]);
        assert_eq!(p.remove(ItemId::new(1)), Some(1.5));
        assert_eq!(p.remove(ItemId::new(1)), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn dot_matches_naive() {
        let a = prof(&[(1, 2.0), (3, 1.0), (7, 4.0)]);
        let b = prof(&[(3, 5.0), (7, 0.5), (9, 9.0)]);
        // naive: 1*5 + 4*0.5 = 7
        assert!((a.dot(&b) - 7.0).abs() < 1e-9);
        assert!((b.dot(&a) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn dot_with_empty_is_zero() {
        let a = prof(&[(1, 2.0)]);
        assert_eq!(a.dot(&Profile::new()), 0.0);
    }

    #[test]
    fn common_items_counts_intersection() {
        let a = prof(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        let b = prof(&[(2, 9.0), (3, 9.0), (4, 9.0)]);
        assert_eq!(a.common_items(&b), 2);
    }

    #[test]
    fn l2_norm_and_weight_sum() {
        let p = prof(&[(0, 3.0), (1, 4.0)]);
        assert!((p.l2_norm() - 5.0).abs() < 1e-9);
        assert!((p.weight_sum() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn from_items_builds_a_set() {
        let p = Profile::from_items(vec![5, 1, 3]).unwrap();
        assert!(p.iter().all(|(_, w)| w == 1.0));
        assert_eq!(p.len(), 3);
        assert!(Profile::from_items(vec![1, 1]).is_err());
    }

    #[test]
    fn from_iterator_keeps_last_duplicate() {
        let p: Profile = vec![(ItemId::new(1), 1.0), (ItemId::new(1), 9.0)]
            .into_iter()
            .collect();
        assert_eq!(p.get(ItemId::new(1)), Some(9.0));
    }

    #[test]
    fn approx_bytes_grows_with_entries() {
        let small = prof(&[(1, 1.0)]);
        let big = prof(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
