//! Profile and similarity substrate for out-of-core KNN.
//!
//! The Middleware'14 engine is agnostic to what a "profile" is: it only
//! ever asks for `sim(s, d)` between two user profiles. This crate
//! supplies that abstraction:
//!
//! * [`Profile`] — a sorted sparse vector (item → weight), the common
//!   representation for rating vectors, term sets, and tag sets;
//! * [`Similarity`] / [`Measure`] — the similarity kernels (cosine,
//!   Jaccard, weighted Jaccard, overlap, common-items, Pearson);
//! * [`PreparedProfile`] / [`ProfileStats`] — profiles with one-pass
//!   precomputed aggregates, powering the hot-path
//!   [`Measure::score_prepared`] kernels (bit-identical to
//!   [`Similarity::score`]) and the O(1) [`Measure::upper_bound`]
//!   score ceilings used for top-K candidate pruning;
//! * [`ProfileStore`] — an in-memory profile table with byte accounting;
//! * [`ProfileDelta`] — the update objects queued during an iteration
//!   and applied lazily in phase 5;
//! * [`generators`] — synthetic workloads with planted similarity
//!   structure, standing in for the proprietary recommender data the
//!   paper's setting assumes.
//!
//! ```
//! use knn_sim::{Measure, Profile, Similarity};
//!
//! let a = Profile::from_unsorted_pairs(vec![(1, 2.0), (2, 1.0)]).unwrap();
//! let b = Profile::from_unsorted_pairs(vec![(2, 1.0), (3, 4.0)]).unwrap();
//! let sim = Measure::Cosine.score(&a, &b);
//! assert!(sim > 0.0 && sim < 1.0);
//! ```

pub mod arena;
pub mod delta;
pub mod error;
pub mod generators;
pub mod prepared;
pub mod profile;
pub mod similarity;
pub mod store;
pub mod tfidf;

pub use arena::{PreparedRef, ProfileArena, ProfileArenaBuilder};
pub use delta::{DeltaOp, ProfileDelta};
pub use error::ProfileError;
pub use prepared::{BoundSketch, PreparedProfile, ProfileStats, BLOCK_SHIFT, SKETCH_BLOCKS};
pub use profile::{ItemId, Profile};
pub use similarity::{Measure, Similarity};
pub use store::ProfileStore;
