//! Synthetic profile workloads.
//!
//! The paper's setting is a recommender system over user profiles that
//! we cannot obtain; these generators produce workloads with *planted*
//! similarity structure so that KNN iterations have a meaningful signal
//! to converge on (see DESIGN.md §5, substitutions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ItemId, Profile, ProfileStore};

/// Configuration for [`clustered_profiles`]: users are split into
/// `num_clusters` groups; users in the same cluster rate items from the
/// same item block (plus some global noise items), so intra-cluster
/// similarity dominates inter-cluster similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredConfig {
    /// Number of users to generate.
    pub num_users: usize,
    /// Number of planted clusters (≥ 1).
    pub num_clusters: usize,
    /// Items in each cluster's dedicated block.
    pub items_per_cluster: usize,
    /// Ratings drawn per user from its own cluster block.
    pub ratings_per_user: usize,
    /// Extra ratings drawn per user from the global noise block.
    pub noise_ratings: usize,
    /// Items in the global noise block.
    pub noise_items: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ClusteredConfig {
    /// A balanced default: 8 clusters, 200-item blocks, 30 in-cluster
    /// ratings and 5 noise ratings per user.
    pub fn new(num_users: usize, seed: u64) -> Self {
        ClusteredConfig {
            num_users,
            num_clusters: 8,
            items_per_cluster: 200,
            ratings_per_user: 30,
            noise_ratings: 5,
            noise_items: 500,
            seed,
        }
    }

    /// Overrides the number of clusters.
    pub fn with_clusters(mut self, num_clusters: usize) -> Self {
        self.num_clusters = num_clusters;
        self
    }

    /// Overrides the per-user rating counts.
    pub fn with_ratings(mut self, in_cluster: usize, noise: usize) -> Self {
        self.ratings_per_user = in_cluster;
        self.noise_ratings = noise;
        self
    }
}

/// Generates clustered rating profiles with planted ground truth.
///
/// Returns the store and the cluster label of each user. User `u`
/// belongs to cluster `u % num_clusters` (labels returned explicitly
/// for clarity). Ratings are in `[1.0, 5.0]`. Deterministic in
/// `config.seed`.
///
/// # Panics
///
/// Panics if `num_clusters == 0` or `items_per_cluster == 0`, or if
/// `ratings_per_user > items_per_cluster` (a user cannot rate the same
/// item twice), or `noise_ratings > noise_items`.
///
/// ```
/// use knn_sim::generators::{clustered_profiles, ClusteredConfig};
///
/// let (store, labels) = clustered_profiles(ClusteredConfig::new(100, 42));
/// assert_eq!(store.num_users(), 100);
/// assert_eq!(labels.len(), 100);
/// ```
pub fn clustered_profiles(config: ClusteredConfig) -> (ProfileStore, Vec<u32>) {
    let ClusteredConfig {
        num_users,
        num_clusters,
        items_per_cluster,
        ratings_per_user,
        noise_ratings,
        noise_items,
        seed,
    } = config;
    assert!(num_clusters > 0, "need at least one cluster");
    assert!(
        items_per_cluster > 0,
        "cluster item blocks must be non-empty"
    );
    assert!(
        ratings_per_user <= items_per_cluster,
        "ratings_per_user ({ratings_per_user}) exceeds items_per_cluster ({items_per_cluster})"
    );
    assert!(
        noise_ratings <= noise_items,
        "noise_ratings ({noise_ratings}) exceeds noise_items ({noise_items})"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let noise_base = (num_clusters * items_per_cluster) as u32;
    let mut profiles = Vec::with_capacity(num_users);
    let mut labels = Vec::with_capacity(num_users);

    for u in 0..num_users {
        let cluster = (u % num_clusters) as u32;
        labels.push(cluster);
        let block_base = cluster * items_per_cluster as u32;
        let mut profile = Profile::new();
        sample_distinct(
            &mut rng,
            items_per_cluster,
            ratings_per_user,
            |item_off, rng| {
                let rating = 1.0 + rng.random_range(0.0..4.0f32);
                profile.set(ItemId::new(block_base + item_off as u32), rating);
            },
        );
        sample_distinct(
            &mut rng,
            noise_items.max(1),
            noise_ratings,
            |item_off, rng| {
                let rating = 1.0 + rng.random_range(0.0..4.0f32);
                profile.set(ItemId::new(noise_base + item_off as u32), rating);
            },
        );
        profiles.push(profile);
    }

    (ProfileStore::from_profiles(profiles), labels)
}

/// Configuration for [`clustered_bipartite`]: a user–item bipartite
/// workload with planted user clusters, *controllable overlap* between
/// neighboring clusters' item blocks, and a Zipf-skewed global noise
/// tail. This is the workload a locality-aware placement policy is
/// measured on: `overlap = 0` gives perfectly separable communities,
/// raising it blurs the boundary that clustering has to recover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BipartiteConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of planted user clusters (≥ 1).
    pub num_clusters: usize,
    /// Items in each cluster's dedicated block. Keep this ≥ 64 (one
    /// `knn-sim` sketch block) so the planted structure survives in
    /// the 32-dim sketch embeddings the `knn-cluster` pre-pass uses.
    pub items_per_cluster: usize,
    /// Ratings drawn per user from cluster blocks (own + overlap).
    pub ratings_per_user: usize,
    /// Fraction of `ratings_per_user` drawn from the *next* cluster's
    /// block instead of the user's own (`0.0..=0.5`): the knob blurring
    /// cluster boundaries.
    pub overlap: f64,
    /// Extra ratings per user from the global noise block, drawn with
    /// Zipf-skewed popularity (hub items every user may share).
    pub noise_ratings: usize,
    /// Items in the global noise block.
    pub noise_items: usize,
    /// Zipf skew of the noise-item popularity (0 = uniform).
    pub noise_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BipartiteConfig {
    /// A balanced default: 8 clusters, 192-item blocks (three sketch
    /// blocks each), 24 cluster ratings with 10% overlap, 4 Zipf-1.0
    /// noise ratings from a 512-item tail.
    pub fn new(num_users: usize, seed: u64) -> Self {
        BipartiteConfig {
            num_users,
            num_clusters: 8,
            items_per_cluster: 192,
            ratings_per_user: 24,
            overlap: 0.1,
            noise_ratings: 4,
            noise_items: 512,
            noise_skew: 1.0,
            seed,
        }
    }

    /// Overrides the number of clusters.
    pub fn with_clusters(mut self, num_clusters: usize) -> Self {
        self.num_clusters = num_clusters;
        self
    }

    /// Overrides the cross-cluster overlap fraction.
    pub fn with_overlap(mut self, overlap: f64) -> Self {
        self.overlap = overlap;
        self
    }

    /// Overrides the noise-tail shape.
    pub fn with_noise(mut self, ratings: usize, skew: f64) -> Self {
        self.noise_ratings = ratings;
        self.noise_skew = skew;
        self
    }
}

/// Generates the clustered user–item bipartite workload described by
/// [`BipartiteConfig`], returning the store and each user's planted
/// cluster label (`u % num_clusters`). Ratings are in `[1.0, 5.0]`;
/// deterministic in `config.seed`.
///
/// # Panics
///
/// Panics if `num_clusters == 0`, `items_per_cluster == 0`, `overlap`
/// is outside `0.0..=0.5`, the per-block sample counts exceed the block
/// sizes, or `noise_skew < 0`.
pub fn clustered_bipartite(config: BipartiteConfig) -> (ProfileStore, Vec<u32>) {
    let BipartiteConfig {
        num_users,
        num_clusters,
        items_per_cluster,
        ratings_per_user,
        overlap,
        noise_ratings,
        noise_items,
        noise_skew,
        seed,
    } = config;
    assert!(num_clusters > 0, "need at least one cluster");
    assert!(
        items_per_cluster > 0,
        "cluster item blocks must be non-empty"
    );
    assert!(
        (0.0..=0.5).contains(&overlap),
        "overlap must be in 0.0..=0.5, got {overlap}"
    );
    let cross = (ratings_per_user as f64 * overlap).round() as usize;
    let own = ratings_per_user - cross;
    assert!(
        ratings_per_user <= items_per_cluster,
        "ratings_per_user ({ratings_per_user}) exceeds items_per_cluster ({items_per_cluster})"
    );
    assert!(
        noise_ratings <= noise_items,
        "noise_ratings ({noise_ratings}) exceeds noise_items ({noise_items})"
    );
    assert!(noise_skew >= 0.0, "noise_skew must be non-negative");

    let mut rng = StdRng::seed_from_u64(seed);
    let noise_base = (num_clusters * items_per_cluster) as u32;

    // Inverse-CDF table for the Zipf noise popularity.
    let mut cumulative = Vec::with_capacity(noise_items);
    let mut acc = 0.0f64;
    for rank in 1..=noise_items.max(1) {
        acc += (rank as f64).powf(-noise_skew);
        cumulative.push(acc);
    }
    let total = acc;

    let mut profiles = Vec::with_capacity(num_users);
    let mut labels = Vec::with_capacity(num_users);
    for u in 0..num_users {
        let cluster = (u % num_clusters) as u32;
        labels.push(cluster);
        let own_base = cluster * items_per_cluster as u32;
        let next_base = ((cluster + 1) % num_clusters as u32) * items_per_cluster as u32;
        let mut profile = Profile::new();
        // With one cluster, "next" is "own": fold the cross budget back
        // into one distinct draw so every user still gets
        // `ratings_per_user` cluster items.
        let own_take = if next_base == own_base {
            own + cross
        } else {
            own
        };
        sample_distinct(&mut rng, items_per_cluster, own_take, |item_off, rng| {
            let rating = 1.0 + rng.random_range(0.0..4.0f32);
            profile.set(ItemId::new(own_base + item_off as u32), rating);
        });
        if cross > 0 && next_base != own_base {
            sample_distinct(&mut rng, items_per_cluster, cross, |item_off, rng| {
                let rating = 1.0 + rng.random_range(0.0..4.0f32);
                profile.set(ItemId::new(next_base + item_off as u32), rating);
            });
        }
        // Zipf noise tail (duplicates collapse via Profile::set; retry
        // until the profile grew by noise_ratings distinct items).
        let before = profile.len();
        while profile.len() < before + noise_ratings {
            let x = rng.random_range(0.0..total);
            let item = cumulative.partition_point(|&c| c <= x) as u32;
            let rating = 1.0 + rng.random_range(0.0..4.0f32);
            profile.set(ItemId::new(noise_base + item), rating);
        }
        profiles.push(profile);
    }
    (ProfileStore::from_profiles(profiles), labels)
}

/// Configuration for [`zipf_profiles`]: each user holds a set of items
/// sampled from a Zipf popularity distribution — the shape of tag/like
/// data, exercising the set-based measures (Jaccard, overlap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfConfig {
    /// Number of users.
    pub num_users: usize,
    /// Size of the item universe.
    pub num_items: usize,
    /// Items per user.
    pub items_per_user: usize,
    /// Zipf skew `s` (0 = uniform; 1 ≈ classic Zipf).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ZipfConfig {
    /// A typical tag-like workload: 10k items, 20 per user, skew 1.0.
    pub fn new(num_users: usize, seed: u64) -> Self {
        ZipfConfig {
            num_users,
            num_items: 10_000,
            items_per_user: 20,
            skew: 1.0,
            seed,
        }
    }
}

/// Generates set-semantics profiles with Zipf-distributed item
/// popularity. Deterministic in `config.seed`.
///
/// # Panics
///
/// Panics if `items_per_user > num_items`, `num_items == 0`, or
/// `skew < 0`.
pub fn zipf_profiles(config: ZipfConfig) -> ProfileStore {
    let ZipfConfig {
        num_users,
        num_items,
        items_per_user,
        skew,
        seed,
    } = config;
    assert!(num_items > 0, "item universe must be non-empty");
    assert!(
        items_per_user <= num_items,
        "items_per_user ({items_per_user}) exceeds num_items ({num_items})"
    );
    assert!(skew >= 0.0, "skew must be non-negative, got {skew}");

    let mut rng = StdRng::seed_from_u64(seed);

    // Inverse-CDF table for the Zipf distribution over ranks 1..=num_items.
    let mut cumulative = Vec::with_capacity(num_items);
    let mut acc = 0.0f64;
    for rank in 1..=num_items {
        acc += (rank as f64).powf(-skew);
        cumulative.push(acc);
    }
    let total = acc;

    let mut profiles = Vec::with_capacity(num_users);
    for _ in 0..num_users {
        let mut items: Vec<u32> = Vec::with_capacity(items_per_user);
        let mut seen = std::collections::HashSet::with_capacity(items_per_user);
        while items.len() < items_per_user {
            let x = rng.random_range(0.0..total);
            let item = cumulative.partition_point(|&c| c <= x) as u32;
            if seen.insert(item) {
                items.push(item);
            }
        }
        profiles.push(Profile::from_items(items).expect("sampled items are distinct"));
    }
    ProfileStore::from_profiles(profiles)
}

/// Samples `take` distinct offsets in `0..universe` (Floyd-ish via
/// retry; `take << universe` in practice) and invokes `f` for each.
fn sample_distinct<F: FnMut(usize, &mut StdRng)>(
    rng: &mut StdRng,
    universe: usize,
    take: usize,
    mut f: F,
) {
    let mut seen = std::collections::HashSet::with_capacity(take);
    while seen.len() < take {
        let x = rng.random_range(0..universe);
        if seen.insert(x) {
            f(x, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Measure, Similarity};

    #[test]
    fn clustered_profiles_have_planted_structure() {
        let cfg = ClusteredConfig::new(60, 3)
            .with_clusters(3)
            .with_ratings(20, 2);
        let (store, labels) = clustered_profiles(cfg);
        // Average intra-cluster cosine must beat inter-cluster cosine.
        let (mut intra, mut inter) = (Vec::new(), Vec::new());
        for a in 0..30usize {
            for b in (a + 1)..30 {
                let s = Measure::Cosine.score(
                    store.get(knn_graph::UserId::new(a as u32)),
                    store.get(knn_graph::UserId::new(b as u32)),
                );
                if labels[a] == labels[b] {
                    intra.push(s);
                } else {
                    inter.push(s);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&intra) > mean(&inter) + 0.05,
            "intra {} vs inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn clustered_is_deterministic() {
        let cfg = ClusteredConfig::new(20, 9);
        assert_eq!(clustered_profiles(cfg), clustered_profiles(cfg));
    }

    #[test]
    fn clustered_ratings_are_in_range() {
        let (store, _) = clustered_profiles(ClusteredConfig::new(30, 1));
        for (_, p) in store.iter() {
            for (_, w) in p.iter() {
                assert!((1.0..=5.0).contains(&w), "rating {w} out of range");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ratings_per_user")]
    fn clustered_rejects_oversampling() {
        let cfg = ClusteredConfig {
            num_users: 5,
            num_clusters: 1,
            items_per_cluster: 3,
            ratings_per_user: 10,
            noise_ratings: 0,
            noise_items: 1,
            seed: 0,
        };
        let _ = clustered_profiles(cfg);
    }

    #[test]
    fn bipartite_overlap_blurs_cluster_boundaries() {
        // Higher overlap must raise the neighbor-cluster similarity
        // relative to the zero-overlap baseline, while intra-cluster
        // similarity still dominates.
        let score = |overlap: f64| {
            let (store, labels) = clustered_bipartite(
                BipartiteConfig::new(60, 4)
                    .with_clusters(3)
                    .with_overlap(overlap),
            );
            let (mut intra, mut inter) = (Vec::new(), Vec::new());
            for a in 0..60usize {
                for b in (a + 1)..60 {
                    let s = Measure::Cosine.score(
                        store.get(knn_graph::UserId::new(a as u32)),
                        store.get(knn_graph::UserId::new(b as u32)),
                    );
                    if labels[a] == labels[b] {
                        intra.push(s);
                    } else {
                        inter.push(s);
                    }
                }
            }
            let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
            (mean(&intra), mean(&inter))
        };
        let (intra0, inter0) = score(0.0);
        let (intra4, inter4) = score(0.4);
        assert!(
            intra0 > 3.0 * inter0,
            "no planted structure: {intra0} vs {inter0}"
        );
        assert!(intra4 > inter4, "overlap 0.4 destroyed the structure");
        assert!(
            inter4 > inter0 + 0.01,
            "overlap knob had no effect: {inter4} vs {inter0}"
        );
    }

    #[test]
    fn bipartite_is_deterministic_and_sized() {
        let cfg = BipartiteConfig::new(40, 6);
        let (a, la) = clustered_bipartite(cfg);
        let (b, lb) = clustered_bipartite(cfg);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert_eq!(a.num_users(), 40);
        for (_, p) in a.iter() {
            assert_eq!(p.len(), 24 + 4, "ratings + noise");
        }
    }

    #[test]
    fn bipartite_single_cluster_keeps_rating_count() {
        let (store, _) = clustered_bipartite(
            BipartiteConfig::new(10, 1)
                .with_clusters(1)
                .with_overlap(0.3),
        );
        for (_, p) in store.iter() {
            assert_eq!(p.len(), 24 + 4);
        }
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn bipartite_rejects_wild_overlap() {
        let _ = clustered_bipartite(BipartiteConfig::new(5, 1).with_overlap(0.9));
    }

    #[test]
    fn zipf_profiles_have_exact_sizes() {
        let store = zipf_profiles(ZipfConfig {
            num_users: 40,
            num_items: 100,
            items_per_user: 7,
            skew: 1.1,
            seed: 2,
        });
        assert_eq!(store.num_users(), 40);
        for (_, p) in store.iter() {
            assert_eq!(p.len(), 7);
            assert!(p.iter().all(|(i, w)| w == 1.0 && i.raw() < 100));
        }
    }

    #[test]
    fn zipf_skew_concentrates_popularity() {
        let skewed = zipf_profiles(ZipfConfig {
            num_users: 200,
            num_items: 1000,
            items_per_user: 10,
            skew: 1.2,
            seed: 5,
        });
        let uniform = zipf_profiles(ZipfConfig {
            num_users: 200,
            num_items: 1000,
            items_per_user: 10,
            skew: 0.0,
            seed: 5,
        });
        let popularity = |s: &ProfileStore| {
            let mut count = vec![0usize; 1000];
            for (_, p) in s.iter() {
                for (i, _) in p.iter() {
                    count[i.raw() as usize] += 1;
                }
            }
            count.sort_unstable_by(|a, b| b.cmp(a));
            count[..10].iter().sum::<usize>()
        };
        assert!(
            popularity(&skewed) > 2 * popularity(&uniform),
            "skewed head {} vs uniform head {}",
            popularity(&skewed),
            popularity(&uniform)
        );
    }

    #[test]
    fn zipf_is_deterministic() {
        let cfg = ZipfConfig::new(15, 77);
        assert_eq!(zipf_profiles(cfg), zipf_profiles(cfg));
    }
}
