//! Prepared profiles: per-profile statistics computed once, reused
//! across every similarity evaluation.
//!
//! The phase-4 executor scores each resident profile against thousands
//! of candidates. The unprepared kernels recompute per-profile
//! aggregates — most expensively the L2 norm for cosine — on **every**
//! pair. [`PreparedProfile`] hoists those aggregates into a one-pass
//! [`ProfileStats`] computed at partition-load time, so the per-pair
//! cost drops to the intersection walk itself.
//!
//! The stats also power O(1) **upper bounds**
//! ([`crate::Measure::upper_bound`]): a cheap score ceiling the
//! executor compares against the current k-th best candidate to skip
//! whole kernel evaluations that cannot possibly enter the top-K.
//!
//! Determinism contract: [`crate::Measure::score_prepared`] performs
//! the *same* floating-point operations in the same order as
//! [`crate::Similarity::score`] — the two are bit-identical for every
//! measure (property-tested in `tests/properties.rs`), so preparing
//! profiles never changes a computed graph.

use crate::{Measure, Profile};

/// Number of item-id blocks in the bound sketch. Items map to block
/// `(id >> BLOCK_SHIFT) % SKETCH_BLOCKS`, so ids are grouped in runs
/// of 2^[`BLOCK_SHIFT`] consecutive ids — real catalogs cluster
/// related items in id ranges (and the workload generators plant
/// exactly that structure), which is what makes the per-block bounds
/// sharp. Arbitrary id layouts only loosen the bounds; they stay
/// valid.
pub const SKETCH_BLOCKS: usize = 32;

/// Log2 of the id run length per sketch block (64 consecutive ids).
pub const BLOCK_SHIFT: u32 = 6;

/// Multiplicative slack covering the f32 storage rounding of the
/// sketch entries (relative error ≤ ~1e-7 per term): bounds derived
/// from the sketch are widened by this factor so they *provably*
/// dominate the exact f64 kernels.
const SKETCH_SLACK: f64 = 1.0 + 1e-6;

/// One-pass scalar aggregates of a [`Profile`], sufficient for every
/// prepared kernel — kept small (they sit inline on the kernels'
/// hottest cache lines; the larger bound sketch lives behind a box,
/// touched only by the pruning filter).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProfileStats {
    /// Number of entries (`Profile::len`).
    pub len: usize,
    /// Euclidean norm of the weight vector, computed exactly as
    /// [`Profile::l2_norm`] does (same summation order, bit-identical).
    pub l2_norm: f64,
    /// Sum of weights ([`Profile::weight_sum`]).
    pub weight_sum: f64,
    /// Largest absolute weight (0 for an empty profile).
    pub max_abs_weight: f64,
    /// Smallest weight (0 for an empty profile); negative iff the
    /// profile carries any negative weight.
    pub min_weight: f64,
}

/// The per-block id-range sketch powering [`Measure::upper_bound`]:
/// block norms (blocked Cauchy–Schwarz for cosine), block counts
/// (intersection caps for the set measures), and block weight sums
/// (the non-negative weighted-Jaccard numerator cap).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSketch {
    /// Per-block L2 norms (`dot(a, b) <= Σ_k ‖a_k‖·‖b_k‖`).
    pub block_norms: [f32; SKETCH_BLOCKS],
    /// Per-block entry counts (`|A ∩ B| <= Σ_k min(cnt_a_k, cnt_b_k)`).
    pub block_counts: [u32; SKETCH_BLOCKS],
    /// Per-block weight sums (`Σ min(aᵢ, bᵢ) <= Σ_k min of sums`, for
    /// non-negative weights).
    pub block_weight_sums: [f32; SKETCH_BLOCKS],
}

/// The sketch block of an item id.
fn block_of(item: u32) -> usize {
    ((item >> BLOCK_SHIFT) as usize) % SKETCH_BLOCKS
}

impl ProfileStats {
    /// Computes the scalar aggregates in one pass over the entries.
    pub fn of(profile: &Profile) -> Self {
        Self::with_sketch(profile).0
    }

    /// Computes the scalar aggregates and the bound sketch in one
    /// shared pass.
    pub fn with_sketch(profile: &Profile) -> (Self, BoundSketch) {
        Self::with_sketch_of_entries(profile.entries())
    }

    /// The entry-slice form of [`ProfileStats::with_sketch`]: the same
    /// one-pass aggregation over a sorted entry slice — the arena
    /// builder runs it over each user's freshly appended CSR rows, so
    /// the borrowed and owned prepared paths carry identical stats.
    pub fn with_sketch_of_entries(entries: &[(crate::ItemId, f32)]) -> (Self, BoundSketch) {
        let mut sq_sum = 0.0f64;
        let mut weight_sum = 0.0f64;
        let mut max_abs_weight = 0.0f64;
        let mut min_weight = f64::INFINITY;
        let mut block_sq = [0.0f64; SKETCH_BLOCKS];
        let mut block_counts = [0u32; SKETCH_BLOCKS];
        let mut block_sums = [0.0f64; SKETCH_BLOCKS];
        for &(item, w) in entries {
            let w = w as f64;
            sq_sum += w * w;
            weight_sum += w;
            max_abs_weight = max_abs_weight.max(w.abs());
            min_weight = min_weight.min(w);
            let k = block_of(item.raw());
            block_sq[k] += w * w;
            block_counts[k] += 1;
            block_sums[k] += w;
        }
        let mut block_norms = [0.0f32; SKETCH_BLOCKS];
        let mut block_weight_sums = [0.0f32; SKETCH_BLOCKS];
        for k in 0..SKETCH_BLOCKS {
            block_norms[k] = block_sq[k].sqrt() as f32;
            block_weight_sums[k] = block_sums[k] as f32;
        }
        let stats = ProfileStats {
            len: entries.len(),
            l2_norm: sq_sum.sqrt(),
            weight_sum,
            max_abs_weight,
            min_weight: if min_weight.is_finite() {
                min_weight
            } else {
                0.0
            },
        };
        let sketch = BoundSketch {
            block_norms,
            block_counts,
            block_weight_sums,
        };
        (stats, sketch)
    }

    /// Whether every weight is non-negative (vacuously true when
    /// empty) — the precondition for the weighted-Jaccard bound.
    pub fn is_non_negative(&self) -> bool {
        self.min_weight >= 0.0
    }
}

impl BoundSketch {
    /// An upper bound on `|A ∩ B|` from the block counts.
    fn common_items_cap(&self, other: &BoundSketch) -> usize {
        let mut cap = 0usize;
        for k in 0..SKETCH_BLOCKS {
            cap += self.block_counts[k].min(other.block_counts[k]) as usize;
        }
        cap
    }

    /// An upper bound on `dot(a, b)` from the block norms (blocked
    /// Cauchy–Schwarz, widened by the storage-rounding slack). Valid
    /// for arbitrary weights: each block's true dot is at most the
    /// product of the block norms.
    fn dot_cap(&self, other: &BoundSketch) -> f64 {
        let mut cap = 0.0f64;
        for k in 0..SKETCH_BLOCKS {
            cap += self.block_norms[k] as f64 * other.block_norms[k] as f64;
        }
        cap * SKETCH_SLACK
    }

    /// An upper bound on `Σ min(aᵢ, bᵢ)` for non-negative weights,
    /// from the block weight sums.
    fn min_sum_cap(&self, other: &BoundSketch) -> f64 {
        let mut cap = 0.0f64;
        for k in 0..SKETCH_BLOCKS {
            cap += (self.block_weight_sums[k] as f64).min(other.block_weight_sums[k] as f64);
        }
        cap * SKETCH_SLACK
    }
}

/// A [`Profile`] bundled with its precomputed [`ProfileStats`]
/// (inline, on the kernel hot path) and boxed [`BoundSketch`]
/// (pointer-chased only by the pruning filter) — the operand of the
/// prepared similarity kernels.
///
/// ```
/// use knn_sim::{Measure, PreparedProfile, Profile, Similarity};
///
/// let a = PreparedProfile::new(Profile::from_items(vec![1, 2, 3]).unwrap());
/// let b = PreparedProfile::new(Profile::from_items(vec![2, 3, 4]).unwrap());
/// // Bit-identical to the unprepared path…
/// assert_eq!(
///     Measure::Cosine.score_prepared(&a, &b),
///     Measure::Cosine.score(a.profile(), b.profile()),
/// );
/// // …and the O(1) bound dominates the true score.
/// assert!(Measure::Jaccard.upper_bound(&a, &b) >= Measure::Jaccard.score_prepared(&a, &b));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedProfile {
    profile: Profile,
    stats: ProfileStats,
    sketch: Box<BoundSketch>,
}

impl PreparedProfile {
    /// Prepares a profile, computing its stats and sketch in one pass.
    pub fn new(profile: Profile) -> Self {
        let (stats, sketch) = ProfileStats::with_sketch(&profile);
        PreparedProfile {
            profile,
            stats,
            sketch: Box::new(sketch),
        }
    }

    /// The wrapped profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The precomputed scalar aggregates.
    pub fn stats(&self) -> &ProfileStats {
        &self.stats
    }

    /// The precomputed bound sketch.
    pub fn sketch(&self) -> &BoundSketch {
        &self.sketch
    }

    /// Unwraps the profile, dropping the stats.
    pub fn into_profile(self) -> Profile {
        self.profile
    }
}

impl From<Profile> for PreparedProfile {
    fn from(profile: Profile) -> Self {
        PreparedProfile::new(profile)
    }
}

impl Measure {
    /// Scores two prepared profiles.
    ///
    /// Bit-identical to [`crate::Similarity::score`] on the wrapped
    /// profiles for every measure — the prepared path reuses the
    /// precomputed aggregates and the SoA intersection walk but
    /// performs the same arithmetic in the same order.
    pub fn score_prepared(&self, a: &PreparedProfile, b: &PreparedProfile) -> f32 {
        let v = crate::similarity::score_entries(
            *self,
            a.profile().entries(),
            a.stats(),
            b.profile().entries(),
            b.stats(),
        );
        debug_assert!(v.is_finite(), "{self} produced non-finite score {v}");
        v as f32
    }

    /// An O(1) upper bound on [`Measure::score_prepared`] for the same
    /// operands: `score_prepared(a, b) <= upper_bound(a, b)` always
    /// (property-tested). Measures without a useful cheap bound return
    /// a trivial ceiling; a bound of `f32::INFINITY` means "no bound
    /// available" (never prunes).
    ///
    /// The executor uses this against the current k-th accumulator
    /// score: when even the ceiling cannot beat the current worst
    /// top-K entry, the full intersection walk is skipped.
    pub fn upper_bound(&self, a: &PreparedProfile, b: &PreparedProfile) -> f32 {
        upper_bound_parts(*self, a.stats(), a.sketch(), b.stats(), b.sketch())
    }
}

/// The aggregate-only core of [`Measure::upper_bound`]: every bound is
/// a function of the two operands' [`ProfileStats`] and
/// [`BoundSketch`] alone, so the owned ([`PreparedProfile`]) and
/// borrowed ([`crate::PreparedRef`]) prepared paths share one
/// implementation.
pub(crate) fn upper_bound_parts(
    measure: Measure,
    sa: &ProfileStats,
    ka: &BoundSketch,
    sb: &ProfileStats,
    kb: &BoundSketch,
) -> f32 {
    {
        let min_len = sa.len.min(sb.len) as f64;
        let v = match measure {
            Measure::Cosine => {
                // Blocked Cauchy–Schwarz: dot <= Σ_k ‖a_k‖·‖b_k‖ —
                // profiles concentrated in disjoint id blocks bound
                // near 0 even when both are long. Scalar fallback:
                // |dot| <= min(|A|, |B|) · max|a| · max|b|.
                let denom = sa.l2_norm * sb.l2_norm;
                if denom == 0.0 {
                    0.0
                } else {
                    let scalar_cap = min_len * sa.max_abs_weight * sb.max_abs_weight;
                    (ka.dot_cap(kb).min(scalar_cap) / denom).min(1.0)
                }
            }
            Measure::Jaccard => {
                // inter <= Σ_k min-counts <= min(|A|, |B|); Jaccard is
                // increasing in the intersection size, so
                // J <= cap / (|A| + |B| - cap).
                let cap = ka.common_items_cap(kb) as f64;
                let union_floor = (sa.len + sb.len) as f64 - cap;
                if cap == 0.0 || union_floor <= 0.0 {
                    0.0
                } else {
                    (cap / union_floor).min(1.0)
                }
            }
            Measure::WeightedJaccard => {
                // Σ min(aᵢ, bᵢ) <= Σ_k min of block sums <= min(ΣA, ΣB)
                // and Σ max(aᵢ, bᵢ) >= max(ΣA, ΣB) — for non-negative
                // weights only; with negative weights there is no
                // cheap ceiling.
                if !sa.is_non_negative() || !sb.is_non_negative() {
                    return f32::INFINITY;
                }
                let max_sum = sa.weight_sum.max(sb.weight_sum);
                if max_sum == 0.0 {
                    0.0
                } else {
                    let num_cap = ka.min_sum_cap(kb).min(sa.weight_sum.min(sb.weight_sum));
                    (num_cap / max_sum).min(1.0)
                }
            }
            Measure::Overlap => {
                // inter <= Σ_k min-counts, so overlap <= cap / min.
                if min_len == 0.0 {
                    0.0
                } else {
                    (ka.common_items_cap(kb) as f64 / min_len).min(1.0)
                }
            }
            Measure::CommonItems => ka.common_items_cap(kb) as f64,
            Measure::Pearson => {
                // Fewer than two common items scores exactly 0.
                if min_len < 2.0 || ka.common_items_cap(kb) < 2 {
                    0.0
                } else {
                    1.0
                }
            }
            Measure::Dice => {
                let total = (sa.len + sb.len) as f64;
                if total == 0.0 {
                    0.0
                } else {
                    (2.0 * ka.common_items_cap(kb) as f64 / total).min(1.0)
                }
            }
        };
        v as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Similarity;

    fn prep(pairs: &[(u32, f32)]) -> PreparedProfile {
        PreparedProfile::new(Profile::from_unsorted_pairs(pairs.to_vec()).unwrap())
    }

    #[test]
    fn stats_match_profile_accessors() {
        let p = Profile::from_unsorted_pairs(vec![(1, 3.0), (4, -4.0), (9, 0.5)]).unwrap();
        let s = ProfileStats::of(&p);
        assert_eq!(s.len, 3);
        assert_eq!(s.l2_norm.to_bits(), p.l2_norm().to_bits());
        assert_eq!(s.weight_sum.to_bits(), p.weight_sum().to_bits());
        assert_eq!(s.max_abs_weight, 4.0);
        assert_eq!(s.min_weight, -4.0);
        assert!(!s.is_non_negative());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ProfileStats::of(&Profile::new());
        assert_eq!(s.len, 0);
        assert_eq!(s.l2_norm, 0.0);
        assert_eq!(s.weight_sum, 0.0);
        assert_eq!(s.max_abs_weight, 0.0);
        assert_eq!(s.min_weight, 0.0);
        assert!(s.is_non_negative());
    }

    #[test]
    fn prepared_scores_match_unprepared_on_samples() {
        let samples = [
            prep(&[(1, 1.0), (2, -2.0), (9, 0.5)]),
            prep(&[(2, 3.0), (9, 1.0)]),
            prep(&[(100, 1.0)]),
            PreparedProfile::new(Profile::new()),
            prep(&[(1, 0.25), (2, 0.5), (3, 4.0), (7, 1.5)]),
        ];
        for m in Measure::ALL {
            for a in &samples {
                for b in &samples {
                    let prepared = m.score_prepared(a, b);
                    let plain = m.score(a.profile(), b.profile());
                    assert_eq!(
                        prepared.to_bits(),
                        plain.to_bits(),
                        "{m} diverged: {prepared} vs {plain}"
                    );
                }
            }
        }
    }

    #[test]
    fn upper_bounds_dominate_scores_on_samples() {
        let samples = [
            prep(&[(1, 1.0), (2, -2.0), (9, 0.5)]),
            prep(&[(2, 3.0), (9, 1.0)]),
            prep(&[(1, 1.0), (2, 1.0), (3, 1.0)]),
            prep(&[(2, 1.0), (3, 1.0), (4, 1.0), (5, 1.0)]),
            PreparedProfile::new(Profile::new()),
        ];
        for m in Measure::ALL {
            for a in &samples {
                for b in &samples {
                    let bound = m.upper_bound(a, b);
                    let score = m.score_prepared(a, b);
                    assert!(bound >= score, "{m}: bound {bound} < score {score}");
                }
            }
        }
    }

    #[test]
    fn jaccard_bound_is_tight_for_subsets() {
        let a = prep(&[(1, 1.0), (2, 1.0)]);
        let b = prep(&[(1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0)]);
        assert_eq!(Measure::Jaccard.upper_bound(&a, &b), 0.5);
        assert_eq!(Measure::Jaccard.score_prepared(&a, &b), 0.5);
    }

    #[test]
    fn weighted_jaccard_bound_disabled_for_negative_weights() {
        let a = prep(&[(1, -1.0)]);
        let b = prep(&[(1, 2.0)]);
        assert_eq!(Measure::WeightedJaccard.upper_bound(&a, &b), f32::INFINITY);
    }

    #[test]
    fn bounds_on_disjoint_short_profiles_prune_hard() {
        // A singleton vs. a long profile: set-measure bounds collapse.
        let a = prep(&[(1, 1.0)]);
        let b = prep(&[(2, 1.0), (3, 1.0), (4, 1.0), (5, 1.0), (6, 1.0)]);
        assert!(Measure::Jaccard.upper_bound(&a, &b) <= 0.2);
        assert!(Measure::Dice.upper_bound(&a, &b) <= 2.0 / 6.0);
        assert_eq!(Measure::Pearson.upper_bound(&a, &b), 0.0);
    }

    /// The sketch's reason to exist: profiles living in disjoint
    /// item-id blocks bound to (near) zero for every measure, even
    /// when both are long — the cross-cluster case the phase-4 filter
    /// prunes wholesale.
    #[test]
    fn disjoint_block_profiles_bound_near_zero() {
        // Block 0 (ids 0–63) vs block 4 (ids 256–319).
        let a = prep(&[(1, 3.0), (5, 2.0), (20, 4.0)]);
        let b = prep(&[(260, 3.0), (270, 1.0), (300, 5.0)]);
        assert!(Measure::Cosine.upper_bound(&a, &b) < 1e-5);
        assert_eq!(Measure::Jaccard.upper_bound(&a, &b), 0.0);
        assert_eq!(Measure::Dice.upper_bound(&a, &b), 0.0);
        assert_eq!(Measure::Overlap.upper_bound(&a, &b), 0.0);
        assert_eq!(Measure::CommonItems.upper_bound(&a, &b), 0.0);
        assert_eq!(Measure::Pearson.upper_bound(&a, &b), 0.0);
        assert!(Measure::WeightedJaccard.upper_bound(&a, &b) < 1e-5);
        // Same-block long profiles still bound high.
        let c = prep(&[(2, 3.0), (6, 2.0), (21, 4.0)]);
        assert!(Measure::Cosine.upper_bound(&a, &c) > 0.5);
    }

    #[test]
    fn block_sketch_partitions_the_entries() {
        let p = prep(&[(1, 3.0), (70, 4.0), (70 + 64 * 32, 1.0)]);
        let k = p.sketch();
        // Items 1 → block 0; 70 → block 1; 70+2048 wraps back to 1.
        assert_eq!(k.block_counts[0], 1);
        assert_eq!(k.block_counts[1], 2);
        assert_eq!(k.block_counts.iter().sum::<u32>() as usize, p.stats().len);
        assert!((k.block_norms[0] - 3.0).abs() < 1e-6);
        assert!((k.block_norms[1] - (17.0f32).sqrt()).abs() < 1e-5);
        assert!((k.block_weight_sums[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn into_profile_round_trips() {
        let p = Profile::from_items(vec![1, 2]).unwrap();
        let prepared = PreparedProfile::from(p.clone());
        assert_eq!(prepared.profile(), &p);
        assert_eq!(prepared.into_profile(), p);
    }
}
