use std::fmt;

/// Errors produced when constructing or mutating profiles.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A weight was NaN or infinite.
    NonFiniteWeight {
        /// The item carrying the invalid weight.
        item: u32,
        /// The invalid weight (printed via Debug to preserve NaN).
        weight: f32,
    },
    /// The same item appeared twice in one profile.
    DuplicateItem {
        /// The repeated item.
        item: u32,
    },
    /// A profile-arena row arrived out of ascending user order (the
    /// arena's CSR layout requires the partition stream's sort order).
    OutOfOrderUser {
        /// The offending user.
        user: u32,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NonFiniteWeight { item, weight } => {
                write!(f, "non-finite weight {weight:?} for item {item}")
            }
            ProfileError::DuplicateItem { item } => {
                write!(f, "duplicate item {item} in profile")
            }
            ProfileError::OutOfOrderUser { user } => {
                write!(f, "arena row for user {user} out of ascending order")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e1 = ProfileError::NonFiniteWeight {
            item: 3,
            weight: f32::NAN,
        };
        let e2 = ProfileError::DuplicateItem { item: 5 };
        assert!(!e1.to_string().is_empty());
        assert!(!e2.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ProfileError>();
    }
}
