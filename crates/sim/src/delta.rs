//! Profile update objects (the entries of the phase-5 lazy queue).

use knn_graph::UserId;

use crate::{ItemId, Profile};

/// A single mutation of one profile entry or of a whole profile.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeltaOp {
    /// Insert or overwrite one item's weight.
    Set(ItemId, f32),
    /// Remove one item (no-op if absent).
    Remove(ItemId),
    /// Replace the entire profile.
    Replace(Profile),
    /// Remove every item.
    Clear,
}

/// A queued profile update: *which* user changes and *how*.
///
/// Updates produced during iteration `t` are buffered (the paper's
/// queue `q`) and only become visible in `P(t+1)` — the engine's
/// phase 5 applies them in arrival order.
///
/// ```
/// use knn_graph::UserId;
/// use knn_sim::{DeltaOp, ItemId, Profile, ProfileDelta};
///
/// let mut p = Profile::new();
/// let d = ProfileDelta::new(UserId::new(0), DeltaOp::Set(ItemId::new(3), 2.0));
/// d.op.apply(&mut p);
/// assert_eq!(p.get(ItemId::new(3)), Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileDelta {
    /// The user whose profile changes.
    pub user: UserId,
    /// The mutation to apply.
    pub op: DeltaOp,
}

impl ProfileDelta {
    /// Creates a delta.
    pub fn new(user: UserId, op: DeltaOp) -> Self {
        ProfileDelta { user, op }
    }

    /// Convenience constructor for a single item set.
    pub fn set(user: UserId, item: ItemId, weight: f32) -> Self {
        ProfileDelta::new(user, DeltaOp::Set(item, weight))
    }

    /// Convenience constructor for a single item removal.
    pub fn remove(user: UserId, item: ItemId) -> Self {
        ProfileDelta::new(user, DeltaOp::Remove(item))
    }

    /// Convenience constructor for a full replacement.
    pub fn replace(user: UserId, profile: Profile) -> Self {
        ProfileDelta::new(user, DeltaOp::Replace(profile))
    }
}

impl DeltaOp {
    /// Whether every weight this operation carries is finite — the
    /// validation rule shared by the serving layer's ingest queue and
    /// the engine's phase-5 update queue.
    ///
    /// `DeltaOp` is `#[non_exhaustive]`, so downstream crates cannot
    /// match it exhaustively; this in-crate match *is* exhaustive on
    /// purpose, so a future weight-carrying variant fails compilation
    /// here instead of silently skipping validation behind a
    /// catch-all arm.
    pub fn weights_finite(&self) -> bool {
        match self {
            DeltaOp::Set(_, w) => w.is_finite(),
            DeltaOp::Replace(p) => p.iter().all(|(_, w)| w.is_finite()),
            DeltaOp::Remove(_) | DeltaOp::Clear => true,
        }
    }

    /// Applies the mutation to a profile in place.
    ///
    /// # Panics
    ///
    /// Panics if a `Set` weight is non-finite (deltas are validated when
    /// queued; see `knn-core`'s update queue).
    pub fn apply(&self, profile: &mut Profile) {
        match self {
            DeltaOp::Set(item, weight) => profile.set(*item, *weight),
            DeltaOp::Remove(item) => {
                profile.remove(*item);
            }
            DeltaOp::Replace(p) => *profile = p.clone(),
            DeltaOp::Clear => *profile = Profile::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(pairs: &[(u32, f32)]) -> Profile {
        Profile::from_unsorted_pairs(pairs.to_vec()).unwrap()
    }

    #[test]
    fn set_inserts_and_overwrites() {
        let mut p = prof(&[(1, 1.0)]);
        DeltaOp::Set(ItemId::new(1), 5.0).apply(&mut p);
        DeltaOp::Set(ItemId::new(2), 7.0).apply(&mut p);
        assert_eq!(p.get(ItemId::new(1)), Some(5.0));
        assert_eq!(p.get(ItemId::new(2)), Some(7.0));
    }

    #[test]
    fn remove_is_noop_when_absent() {
        let mut p = prof(&[(1, 1.0)]);
        DeltaOp::Remove(ItemId::new(9)).apply(&mut p);
        assert_eq!(p.len(), 1);
        DeltaOp::Remove(ItemId::new(1)).apply(&mut p);
        assert!(p.is_empty());
    }

    #[test]
    fn replace_and_clear() {
        let mut p = prof(&[(1, 1.0), (2, 2.0)]);
        DeltaOp::Replace(prof(&[(9, 9.0)])).apply(&mut p);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(ItemId::new(9)), Some(9.0));
        DeltaOp::Clear.apply(&mut p);
        assert!(p.is_empty());
    }

    #[test]
    fn weights_finite_covers_every_op() {
        assert!(DeltaOp::Set(ItemId::new(1), 2.0).weights_finite());
        assert!(!DeltaOp::Set(ItemId::new(1), f32::NAN).weights_finite());
        assert!(!DeltaOp::Set(ItemId::new(1), f32::INFINITY).weights_finite());
        assert!(DeltaOp::Remove(ItemId::new(1)).weights_finite());
        assert!(DeltaOp::Clear.weights_finite());
        assert!(DeltaOp::Replace(prof(&[(1, 1.0)])).weights_finite());
        // A poisoned Replace is only constructible through the
        // trusted/unchecked profile path — exactly what downstream
        // validation must still catch.
        let poisoned = Profile::from_sorted_pairs_unchecked(vec![(ItemId::new(3), f32::NAN)]);
        assert!(!DeltaOp::Replace(poisoned).weights_finite());
    }

    #[test]
    fn application_order_matters() {
        let mut p = Profile::new();
        for d in [
            ProfileDelta::set(UserId::new(0), ItemId::new(1), 1.0),
            ProfileDelta::set(UserId::new(0), ItemId::new(1), 2.0),
            ProfileDelta::remove(UserId::new(0), ItemId::new(1)),
            ProfileDelta::set(UserId::new(0), ItemId::new(1), 3.0),
        ] {
            d.op.apply(&mut p);
        }
        assert_eq!(p.get(ItemId::new(1)), Some(3.0));
    }
}
