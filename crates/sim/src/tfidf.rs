//! TF-IDF re-weighting of set/bag profiles.
//!
//! Document-style workloads (see the `document_similarity` example)
//! suffer from popular-term dominance: a stop-word shared by half the
//! corpus contributes as much cosine mass as a rare discriminative
//! term. The classic fix re-weights entry `(u, i)` to
//! `tf(u, i) × idf(i)` with `idf(i) = ln(N / df(i))`, where `df(i)` is
//! the number of profiles containing item `i`.

use std::collections::HashMap;

use crate::{ItemId, Profile, ProfileStore};

/// Item document frequencies over a profile store.
///
/// ```
/// use knn_sim::tfidf::DocumentFrequencies;
/// use knn_sim::{ItemId, Profile, ProfileStore};
///
/// let store: ProfileStore = vec![
///     Profile::from_items(vec![1, 2]).unwrap(),
///     Profile::from_items(vec![2]).unwrap(),
/// ]
/// .into_iter()
/// .collect();
/// let df = DocumentFrequencies::from_store(&store);
/// assert_eq!(df.frequency(ItemId::new(2)), 2);
/// assert!(df.idf(ItemId::new(1)) > df.idf(ItemId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentFrequencies {
    num_profiles: usize,
    df: HashMap<ItemId, u32>,
}

impl DocumentFrequencies {
    /// Counts document frequencies across every profile of `store`.
    pub fn from_store(store: &ProfileStore) -> Self {
        let mut df: HashMap<ItemId, u32> = HashMap::new();
        for (_, profile) in store.iter() {
            for (item, _) in profile.iter() {
                *df.entry(item).or_insert(0) += 1;
            }
        }
        DocumentFrequencies {
            num_profiles: store.num_users(),
            df,
        }
    }

    /// Number of profiles the statistics cover.
    pub fn num_profiles(&self) -> usize {
        self.num_profiles
    }

    /// How many profiles contain `item` (0 for unseen items).
    pub fn frequency(&self, item: ItemId) -> u32 {
        self.df.get(&item).copied().unwrap_or(0)
    }

    /// The smoothed inverse document frequency
    /// `ln((1 + N) / (1 + df)) + 1` — always positive and finite, even
    /// for unseen or ubiquitous items.
    pub fn idf(&self, item: ItemId) -> f32 {
        let n = self.num_profiles as f64;
        let df = self.frequency(item) as f64;
        (((1.0 + n) / (1.0 + df)).ln() + 1.0) as f32
    }

    /// Returns `profile` re-weighted by IDF (`weight × idf(item)`).
    pub fn reweight(&self, profile: &Profile) -> Profile {
        profile
            .iter()
            .map(|(item, w)| (item, w * self.idf(item)))
            .collect()
    }

    /// Re-weights every profile of `store` in place.
    pub fn reweight_store(&self, store: &mut ProfileStore) {
        for u in 0..store.num_users() {
            let user = knn_graph::UserId::new(u as u32);
            let new = self.reweight(store.get(user));
            store.set(user, new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Measure, Similarity};

    fn corpus() -> ProfileStore {
        // Item 0 is ubiquitous ("the"); items 10/11 are discriminative.
        vec![
            Profile::from_items(vec![0, 10]).unwrap(),
            Profile::from_items(vec![0, 10]).unwrap(),
            Profile::from_items(vec![0, 11]).unwrap(),
            Profile::from_items(vec![0, 11]).unwrap(),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn df_counts_profiles_not_occurrences() {
        let df = DocumentFrequencies::from_store(&corpus());
        assert_eq!(df.frequency(ItemId::new(0)), 4);
        assert_eq!(df.frequency(ItemId::new(10)), 2);
        assert_eq!(df.frequency(ItemId::new(99)), 0);
        assert_eq!(df.num_profiles(), 4);
    }

    #[test]
    fn idf_is_positive_and_monotone_in_rarity() {
        let df = DocumentFrequencies::from_store(&corpus());
        let common = df.idf(ItemId::new(0));
        let rare = df.idf(ItemId::new(10));
        let unseen = df.idf(ItemId::new(99));
        assert!(common > 0.0);
        assert!(rare > common);
        assert!(unseen > rare);
    }

    #[test]
    fn reweighting_sharpens_cosine_contrast() {
        let store = corpus();
        let df = DocumentFrequencies::from_store(&store);
        let u = |i: u32| knn_graph::UserId::new(i);
        // Raw cosine: docs 0 and 2 share the stop item → high sim.
        let raw = Measure::Cosine.score(store.get(u(0)), store.get(u(2)));
        let a = df.reweight(store.get(u(0)));
        let b = df.reweight(store.get(u(2)));
        let weighted = Measure::Cosine.score(&a, &b);
        assert!(
            weighted < raw,
            "tf-idf should suppress stop-item similarity: {weighted} vs {raw}"
        );
        // Same-topic docs stay close to 1.
        let c = df.reweight(store.get(u(1)));
        assert!(Measure::Cosine.score(&a, &c) > 0.99);
    }

    #[test]
    fn reweight_store_applies_to_everyone() {
        let mut store = corpus();
        let df = DocumentFrequencies::from_store(&store);
        let before = store.get(knn_graph::UserId::new(0)).clone();
        df.reweight_store(&mut store);
        let after = store.get(knn_graph::UserId::new(0));
        assert_ne!(&before, after);
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn reweight_preserves_item_set() {
        let df = DocumentFrequencies::from_store(&corpus());
        let p = Profile::from_unsorted_pairs(vec![(0, 2.0), (10, 1.0)]).unwrap();
        let rw = df.reweight(&p);
        let items: Vec<u32> = rw.iter().map(|(i, _)| i.raw()).collect();
        assert_eq!(items, vec![0, 10]);
    }
}
