//! Similarity measures over sparse profiles.
//!
//! Two evaluation paths share one set of kernels:
//!
//! * [`Similarity::score`] — the classic two-profile entry point; any
//!   per-profile aggregate a kernel needs (the L2 norm for cosine) is
//!   computed on the spot.
//! * [`crate::Measure::score_prepared`] — the hot-path entry point
//!   over [`crate::PreparedProfile`] operands whose aggregates were
//!   computed once up front.
//!
//! Both paths execute the same floating-point operations in the same
//! order, so their results are bit-identical (property-tested).

use std::fmt;

use crate::prepared::ProfileStats;
use crate::{ItemId, Profile};

/// One sorted entry slice — the common operand of every kernel. Both
/// the owned [`Profile`] and the arena-backed
/// [`crate::PreparedRef`] views resolve to this shape, which is what
/// makes the owned and borrowed scoring paths bit-identical by
/// construction.
pub(crate) type Entries<'a> = &'a [(ItemId, f32)];

/// A similarity function between two user profiles.
///
/// Implementations must be symmetric (`score(a, b) == score(b, a)`) and
/// always return a **finite** value — the KNN graph rejects NaN edges.
/// Higher is more similar.
///
/// The engine is generic over this trait; [`Measure`] provides the
/// standard kernels.
pub trait Similarity: Send + Sync {
    /// Scores the similarity between `a` and `b`.
    fn score(&self, a: &Profile, b: &Profile) -> f32;

    /// Short human-readable kernel name (for reports and benches).
    fn name(&self) -> &'static str;
}

/// The built-in similarity kernels.
///
/// ```
/// use knn_sim::{Measure, Profile, Similarity};
///
/// let a = Profile::from_items(vec![1, 2, 3]).unwrap();
/// let b = Profile::from_items(vec![2, 3, 4]).unwrap();
/// assert_eq!(Measure::Jaccard.score(&a, &b), 0.5);
/// assert_eq!(Measure::CommonItems.score(&a, &b), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Measure {
    /// Cosine similarity of the weight vectors; in `[-1, 1]`
    /// (`[0, 1]` for non-negative weights). Empty profiles score 0.
    #[default]
    Cosine,
    /// Set Jaccard: `|A ∩ B| / |A ∪ B|` over item sets, ignoring
    /// weights; in `[0, 1]`. Two empty profiles score 0.
    Jaccard,
    /// Weighted Jaccard (Ruzicka): `Σ min(aᵢ, bᵢ) / Σ max(aᵢ, bᵢ)`,
    /// for non-negative weights; in `[0, 1]`.
    WeightedJaccard,
    /// Overlap (Szymkiewicz–Simpson): `|A ∩ B| / min(|A|, |B|)`;
    /// in `[0, 1]`.
    Overlap,
    /// Raw count of common items (unnormalized; useful for debugging
    /// and for triangle-counting-style workloads).
    CommonItems,
    /// Pearson correlation over co-rated items (mean-centered per
    /// profile over the intersection); in `[-1, 1]`. Fewer than two
    /// common items scores 0.
    Pearson,
    /// Sørensen–Dice coefficient: `2·|A ∩ B| / (|A| + |B|)` over item
    /// sets; in `[0, 1]`. Two empty profiles score 0.
    Dice,
}

impl Measure {
    /// All built-in measures, for sweeps and tests.
    pub const ALL: [Measure; 7] = [
        Measure::Cosine,
        Measure::Jaccard,
        Measure::WeightedJaccard,
        Measure::Overlap,
        Measure::CommonItems,
        Measure::Pearson,
        Measure::Dice,
    ];
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(Similarity::name(self))
    }
}

impl Similarity for Measure {
    /// Scores two plain profiles — a thin wrapper over the shared
    /// kernels that computes the needed per-profile aggregates on the
    /// spot. Bit-identical to [`Measure::score_prepared`] on prepared
    /// operands.
    fn score(&self, a: &Profile, b: &Profile) -> f32 {
        let (ae, be) = (a.entries(), b.entries());
        let v = match self {
            Measure::Cosine => cosine(ae, a.l2_norm(), be, b.l2_norm()),
            Measure::Jaccard => jaccard(ae, be),
            Measure::WeightedJaccard => weighted_jaccard(ae, be),
            Measure::Overlap => overlap(ae, be),
            Measure::CommonItems => common_items(ae, be) as f64,
            Measure::Pearson => pearson(ae, be),
            Measure::Dice => dice(ae, be),
        };
        debug_assert!(v.is_finite(), "{self} produced non-finite score {v}");
        v as f32
    }

    fn name(&self) -> &'static str {
        match self {
            Measure::Cosine => "cosine",
            Measure::Jaccard => "jaccard",
            Measure::WeightedJaccard => "weighted-jaccard",
            Measure::Overlap => "overlap",
            Measure::CommonItems => "common-items",
            Measure::Pearson => "pearson",
            Measure::Dice => "dice",
        }
    }
}

/// The prepared-operand kernel dispatch: scores the entry slices of
/// `a` against `b` with their precomputed aggregates (called by
/// [`crate::Measure::score_prepared`] and the arena-backed
/// [`crate::Measure::score_ref`]; same arithmetic as
/// [`Similarity::score`]).
pub(crate) fn score_entries(
    measure: Measure,
    a: Entries<'_>,
    a_stats: &ProfileStats,
    b: Entries<'_>,
    b_stats: &ProfileStats,
) -> f64 {
    match measure {
        Measure::Cosine => cosine(a, a_stats.l2_norm, b, b_stats.l2_norm),
        Measure::Jaccard => jaccard(a, b),
        Measure::WeightedJaccard => weighted_jaccard(a, b),
        Measure::Overlap => overlap(a, b),
        Measure::CommonItems => common_items(a, b) as f64,
        Measure::Pearson => pearson(a, b),
        Measure::Dice => dice(a, b),
    }
}

/// Dot product of two sorted entry slices (merge join); shared by
/// [`Profile::dot`] and the cosine kernel.
pub(crate) fn dot(a: Entries<'_>, b: Entries<'_>) -> f64 {
    let mut acc = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a[i].1 as f64 * b[j].1 as f64;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Intersection size of two sorted entry slices; shared by
/// [`Profile::common_items`] and the set kernels.
pub(crate) fn common_items(a: Entries<'_>, b: Entries<'_>) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn cosine(a: Entries<'_>, a_norm: f64, b: Entries<'_>, b_norm: f64) -> f64 {
    let denom = a_norm * b_norm;
    if denom == 0.0 {
        return 0.0;
    }
    (dot(a, b) / denom).clamp(-1.0, 1.0)
}

fn jaccard(a: Entries<'_>, b: Entries<'_>) -> f64 {
    let inter = common_items(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 0.0;
    }
    inter as f64 / union as f64
}

fn weighted_jaccard(ae: Entries<'_>, be: Entries<'_>) -> f64 {
    let (mut min_sum, mut max_sum) = (0.0f64, 0.0f64);
    let (mut i, mut j) = (0usize, 0usize);
    while i < ae.len() || j < be.len() {
        match (ae.get(i), be.get(j)) {
            (Some(&(ia, wa)), Some(&(ib, wb))) => match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    max_sum += wa as f64;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    max_sum += wb as f64;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    min_sum += (wa as f64).min(wb as f64);
                    max_sum += (wa as f64).max(wb as f64);
                    i += 1;
                    j += 1;
                }
            },
            (Some(&(_, wa)), None) => {
                max_sum += wa as f64;
                i += 1;
            }
            (None, Some(&(_, wb))) => {
                max_sum += wb as f64;
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    if max_sum == 0.0 {
        0.0
    } else {
        min_sum / max_sum
    }
}

fn dice(a: Entries<'_>, b: Entries<'_>) -> f64 {
    let total = a.len() + b.len();
    if total == 0 {
        return 0.0;
    }
    2.0 * common_items(a, b) as f64 / total as f64
}

fn overlap(a: Entries<'_>, b: Entries<'_>) -> f64 {
    let smaller = a.len().min(b.len());
    if smaller == 0 {
        return 0.0;
    }
    common_items(a, b) as f64 / smaller as f64
}

fn pearson(ae: Entries<'_>, be: Entries<'_>) -> f64 {
    // Collect co-rated weights.
    let (mut i, mut j) = (0usize, 0usize);
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    while i < ae.len() && j < be.len() {
        match ae[i].0.cmp(&be[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                xs.push(ae[i].1 as f64);
                ys.push(be[j].1 as f64);
                i += 1;
                j += 1;
            }
        }
    }
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for k in 0..n {
        let (a, b) = (xs[k] - mx, ys[k] - my);
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        return 0.0;
    }
    (num / (dx.sqrt() * dy.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(pairs: &[(u32, f32)]) -> Profile {
        Profile::from_unsorted_pairs(pairs.to_vec()).unwrap()
    }

    fn set(items: &[u32]) -> Profile {
        Profile::from_items(items.to_vec()).unwrap()
    }

    #[test]
    fn cosine_identical_is_one() {
        let p = prof(&[(1, 2.0), (5, 3.0)]);
        assert!((Measure::Cosine.score(&p, &p) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        let a = prof(&[(1, 2.0)]);
        let b = prof(&[(2, 3.0)]);
        assert_eq!(Measure::Cosine.score(&a, &b), 0.0);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let a = prof(&[(1, 1.0)]);
        let b = prof(&[(1, -1.0)]);
        assert!((Measure::Cosine.score(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_profiles_score_zero_everywhere() {
        let e = Profile::new();
        let p = prof(&[(1, 1.0)]);
        for m in Measure::ALL {
            assert_eq!(m.score(&e, &e), 0.0, "{m} on empty/empty");
            assert_eq!(m.score(&e, &p), 0.0, "{m} on empty/nonempty");
        }
    }

    #[test]
    fn jaccard_known_value() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5, 6]);
        assert!((Measure::Jaccard.score(&a, &b) - 2.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn jaccard_ignores_weights() {
        let a = prof(&[(1, 5.0), (2, 0.1)]);
        let b = prof(&[(1, 0.2), (2, 7.0)]);
        assert!((Measure::Jaccard.score(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_jaccard_known_value() {
        let a = prof(&[(1, 2.0), (2, 4.0)]);
        let b = prof(&[(1, 3.0), (3, 1.0)]);
        // min: 2; max: 3 + 4 + 1 = 8
        assert!((Measure::WeightedJaccard.score(&a, &b) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn weighted_jaccard_identical_is_one() {
        let p = prof(&[(1, 2.0), (2, 0.5)]);
        assert!((Measure::WeightedJaccard.score(&p, &p) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn overlap_subset_is_one() {
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 3, 4, 5]);
        assert!((Measure::Overlap.score(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn common_items_is_intersection_size() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4, 5]);
        assert_eq!(Measure::CommonItems.score(&a, &b), 2.0);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let a = prof(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let b = prof(&[(1, 2.0), (2, 4.0), (3, 6.0)]);
        assert!((Measure::Pearson.score(&a, &b) - 1.0).abs() < 1e-6);
        let c = prof(&[(1, 3.0), (2, 2.0), (3, 1.0)]);
        assert!((Measure::Pearson.score(&a, &c) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_fewer_than_two_common_items_is_zero() {
        let a = prof(&[(1, 1.0), (2, 2.0)]);
        let b = prof(&[(2, 4.0), (3, 6.0)]);
        assert_eq!(Measure::Pearson.score(&a, &b), 0.0);
    }

    #[test]
    fn pearson_constant_profile_is_zero() {
        let a = prof(&[(1, 2.0), (2, 2.0), (3, 2.0)]);
        let b = prof(&[(1, 1.0), (2, 5.0), (3, 9.0)]);
        assert_eq!(Measure::Pearson.score(&a, &b), 0.0);
    }

    #[test]
    fn dice_known_values() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4, 5]);
        // 2*2 / (3+4)
        assert!((Measure::Dice.score(&a, &b) - 4.0 / 7.0).abs() < 1e-6);
        assert!((Measure::Dice.score(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dice_dominates_jaccard() {
        // Dice = 2J/(1+J) >= J for J in [0, 1].
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5]);
        let j = Measure::Jaccard.score(&a, &b);
        let d = Measure::Dice.score(&a, &b);
        assert!(d >= j);
        assert!((d - 2.0 * j / (1.0 + j)).abs() < 1e-6);
    }

    #[test]
    fn all_measures_are_symmetric_on_samples() {
        let samples = [
            prof(&[(1, 1.0), (2, -2.0), (9, 0.5)]),
            prof(&[(2, 3.0), (9, 1.0)]),
            prof(&[(100, 1.0)]),
            Profile::new(),
        ];
        for m in Measure::ALL {
            for a in &samples {
                for b in &samples {
                    assert_eq!(m.score(a, b), m.score(b, a), "{m} not symmetric");
                }
            }
        }
    }

    #[test]
    fn display_matches_name() {
        for m in Measure::ALL {
            assert_eq!(m.to_string(), m.name());
        }
    }
}
