//! In-memory profile table.

use knn_graph::UserId;

use crate::{Profile, ProfileDelta};

/// The in-memory profile set `P(t)`: one [`Profile`] per user
/// `0..num_users`, with running byte accounting.
///
/// The out-of-core engine keeps only partition-sized slices of this in
/// memory; `ProfileStore` is the reference representation used to build
/// working directories, by the in-memory baselines, and by tests.
///
/// ```
/// use knn_graph::UserId;
/// use knn_sim::{Profile, ProfileStore};
///
/// let mut store = ProfileStore::new(2);
/// store.set(UserId::new(0), Profile::from_items(vec![1, 2]).unwrap());
/// assert_eq!(store.get(UserId::new(0)).len(), 2);
/// assert!(store.get(UserId::new(1)).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileStore {
    profiles: Vec<Profile>,
}

impl ProfileStore {
    /// Creates a store of `num_users` empty profiles.
    pub fn new(num_users: usize) -> Self {
        ProfileStore {
            profiles: vec![Profile::new(); num_users],
        }
    }

    /// Builds a store from an explicit profile vector.
    pub fn from_profiles(profiles: Vec<Profile>) -> Self {
        ProfileStore { profiles }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.profiles.len()
    }

    /// The profile of `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn get(&self, user: UserId) -> &Profile {
        &self.profiles[user.index()]
    }

    /// Mutable access to the profile of `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn get_mut(&mut self, user: UserId) -> &mut Profile {
        &mut self.profiles[user.index()]
    }

    /// Replaces the profile of `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn set(&mut self, user: UserId, profile: Profile) {
        self.profiles[user.index()] = profile;
    }

    /// The profile of `user`, or `None` when out of range — the
    /// non-panicking accessor used by read-only views (the serving
    /// layer must not crash on an out-of-range query id).
    pub fn get_checked(&self, user: UserId) -> Option<&Profile> {
        self.profiles.get(user.index())
    }

    /// Wraps the store in an [`std::sync::Arc`], freezing it into the
    /// shared read-only view that snapshots hand to concurrent readers.
    pub fn into_shared(self) -> std::sync::Arc<ProfileStore> {
        std::sync::Arc::new(self)
    }

    /// Applies one queued delta.
    ///
    /// # Panics
    ///
    /// Panics if the delta's user is out of range.
    pub fn apply_delta(&mut self, delta: &ProfileDelta) {
        delta.op.apply(&mut self.profiles[delta.user.index()]);
    }

    /// Applies a batch of deltas in order.
    pub fn apply_deltas<'a, I: IntoIterator<Item = &'a ProfileDelta>>(&mut self, deltas: I) {
        for d in deltas {
            self.apply_delta(d);
        }
    }

    /// Iterates `(user, profile)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &Profile)> + '_ {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (UserId::new(i as u32), p))
    }

    /// Approximate total heap footprint of all profiles, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.profiles.iter().map(Profile::approx_bytes).sum()
    }

    /// Total number of non-zero entries across all profiles.
    pub fn total_entries(&self) -> usize {
        self.profiles.iter().map(Profile::len).sum()
    }
}

impl FromIterator<Profile> for ProfileStore {
    fn from_iter<T: IntoIterator<Item = Profile>>(iter: T) -> Self {
        ProfileStore {
            profiles: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeltaOp, ItemId};

    #[test]
    fn new_store_is_all_empty() {
        let s = ProfileStore::new(3);
        assert_eq!(s.num_users(), 3);
        assert_eq!(s.total_entries(), 0);
        assert!(s.iter().all(|(_, p)| p.is_empty()));
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut s = ProfileStore::new(2);
        let p = Profile::from_items(vec![4, 7]).unwrap();
        s.set(UserId::new(1), p.clone());
        assert_eq!(s.get(UserId::new(1)), &p);
        assert_eq!(s.total_entries(), 2);
    }

    #[test]
    fn apply_deltas_in_order() {
        let mut s = ProfileStore::new(1);
        let u = UserId::new(0);
        s.apply_deltas(&[
            ProfileDelta::set(u, ItemId::new(1), 1.0),
            ProfileDelta::set(u, ItemId::new(1), 2.0),
            ProfileDelta::new(u, DeltaOp::Clear),
            ProfileDelta::set(u, ItemId::new(2), 5.0),
        ]);
        assert_eq!(s.get(u).get(ItemId::new(1)), None);
        assert_eq!(s.get(u).get(ItemId::new(2)), Some(5.0));
    }

    #[test]
    fn collects_from_iterator() {
        let s: ProfileStore = vec![Profile::new(), Profile::from_items(vec![1]).unwrap()]
            .into_iter()
            .collect();
        assert_eq!(s.num_users(), 2);
        assert_eq!(s.total_entries(), 1);
    }

    #[test]
    fn get_checked_bounds() {
        let mut s = ProfileStore::new(2);
        s.get_mut(UserId::new(1)).set(ItemId::new(3), 1.5);
        assert_eq!(
            s.get_checked(UserId::new(1)).unwrap().get(ItemId::new(3)),
            Some(1.5)
        );
        assert!(s.get_checked(UserId::new(2)).is_none());
        let shared = s.into_shared();
        assert_eq!(shared.num_users(), 2);
    }

    #[test]
    fn byte_accounting_tracks_growth() {
        let mut s = ProfileStore::new(1);
        let before = s.approx_bytes();
        s.get_mut(UserId::new(0)).set(ItemId::new(1), 1.0);
        assert!(s.approx_bytes() > before);
    }
}
