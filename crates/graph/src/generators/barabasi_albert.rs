//! Preferential-attachment generators: Barabási–Albert and Holme–Kim.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use super::{norm, sort_dedup};
use crate::EdgePair;

/// Generates an undirected Barabási–Albert preferential-attachment
/// graph: starts from a clique of `m_attach + 1` seed vertices, then
/// each arriving vertex attaches to `m_attach` distinct existing
/// vertices with probability proportional to their current degree.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
///
/// ```
/// use knn_graph::generators::{barabasi_albert, validate_undirected};
///
/// let edges = barabasi_albert(200, 3, 1);
/// assert!(validate_undirected(200, &edges));
/// ```
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Vec<EdgePair> {
    holme_kim(n, m_attach, 0.0, seed)
}

/// Generates a Holme–Kim graph: Barabási–Albert with *triad formation* —
/// after each preferential attachment, with probability `p_triangle`
/// the next link closes a triangle with a neighbor of the previous
/// target instead of attaching preferentially. Produces the clustered
/// heavy-tailed structure typical of collaboration networks.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `m_attach == 0`, `n <= m_attach`, or
/// `p_triangle ∉ [0, 1]`.
pub fn holme_kim(n: usize, m_attach: usize, p_triangle: f64, seed: u64) -> Vec<EdgePair> {
    assert!(m_attach > 0, "m_attach must be positive");
    assert!(
        n > m_attach,
        "need n > m_attach (got n={n}, m_attach={m_attach})"
    );
    assert!(
        (0.0..=1.0).contains(&p_triangle),
        "p_triangle must be in [0,1], got {p_triangle}"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let seeds = m_attach + 1;
    let mut edges: Vec<EdgePair> = Vec::new();
    // `endpoints` lists every edge endpoint; sampling it uniformly is
    // degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::new();
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];

    let connect = |edges: &mut Vec<EdgePair>,
                   endpoints: &mut Vec<u32>,
                   adjacency: &mut Vec<Vec<u32>>,
                   a: u32,
                   b: u32| {
        edges.push(norm(a, b));
        endpoints.push(a);
        endpoints.push(b);
        adjacency[a as usize].push(b);
        adjacency[b as usize].push(a);
    };

    // Seed clique.
    for a in 0..seeds as u32 {
        for b in (a + 1)..seeds as u32 {
            connect(&mut edges, &mut endpoints, &mut adjacency, a, b);
        }
    }

    for v in seeds as u32..n as u32 {
        let mut chosen: HashSet<u32> = HashSet::with_capacity(m_attach);
        let mut last_target: Option<u32> = None;
        while chosen.len() < m_attach {
            let triad = last_target
                .filter(|_| rng.random_range(0.0..1.0) < p_triangle)
                .and_then(|t| {
                    let nbrs = &adjacency[t as usize];
                    if nbrs.is_empty() {
                        None
                    } else {
                        Some(nbrs[rng.random_range(0..nbrs.len())])
                    }
                });
            let target = match triad {
                Some(t) if t != v && !chosen.contains(&t) => t,
                _ => {
                    // Preferential attachment via the endpoints list.
                    let t = endpoints[rng.random_range(0..endpoints.len())];
                    if t == v || chosen.contains(&t) {
                        continue;
                    }
                    t
                }
            };
            chosen.insert(target);
            last_target = Some(target);
        }
        // Sort before connecting: HashSet iteration order would otherwise
        // leak into `endpoints` and break seed determinism.
        let mut chosen: Vec<u32> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for t in chosen {
            connect(&mut edges, &mut endpoints, &mut adjacency, v, t);
        }
    }

    sort_dedup(&mut edges);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::validate_undirected;

    #[test]
    fn ba_edge_count_formula_holds_before_dedup_effects() {
        // Seed clique has C(m+1, 2) edges; every later vertex adds m.
        let (n, m) = (300, 3);
        let edges = barabasi_albert(n, m, 2);
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(edges.len(), expected);
        assert!(validate_undirected(n, &edges));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(barabasi_albert(100, 2, 8), barabasi_albert(100, 2, 8));
        assert_ne!(barabasi_albert(100, 2, 8), barabasi_albert(100, 2, 9));
    }

    #[test]
    fn ba_produces_hubs() {
        let n = 1000;
        let edges = barabasi_albert(n, 2, 4);
        let mut deg = vec![0usize; n];
        for &(a, b) in &edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = 2.0 * edges.len() as f64 / n as f64;
        assert!(max as f64 > 6.0 * mean, "max degree {max} vs mean {mean}");
    }

    #[test]
    fn holme_kim_increases_triangles() {
        let n = 600;
        let count_triangles = |edges: &[EdgePair]| {
            let mut adj = vec![HashSet::new(); n];
            for &(a, b) in edges {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
            let mut tri = 0usize;
            for &(a, b) in edges {
                tri += adj[a as usize].intersection(&adj[b as usize]).count();
            }
            tri / 3
        };
        let plain = count_triangles(&barabasi_albert(n, 3, 5));
        let clustered = count_triangles(&holme_kim(n, 3, 0.9, 5));
        assert!(
            clustered > plain,
            "triad formation should add triangles ({clustered} <= {plain})"
        );
    }

    #[test]
    fn holme_kim_output_is_valid() {
        let edges = holme_kim(250, 4, 0.5, 12);
        assert!(validate_undirected(250, &edges));
    }

    #[test]
    #[should_panic(expected = "n > m_attach")]
    fn rejects_tiny_n() {
        let _ = barabasi_albert(3, 3, 0);
    }

    #[test]
    #[should_panic(expected = "p_triangle")]
    fn rejects_bad_probability() {
        let _ = holme_kim(10, 2, 1.5, 0);
    }
}
