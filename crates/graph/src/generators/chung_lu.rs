//! Chung–Lu power-law generator with an exact edge count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use super::norm;
use crate::EdgePair;

/// Configuration for the [`chung_lu`] power-law generator.
///
/// The generator draws both endpoints of every edge from the weight
/// distribution `w_i ∝ (i + offset)^(−alpha)`, which yields expected
/// degrees following a power law with exponent `gamma ≈ 1 + 1/alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub n: usize,
    /// Exact number of distinct unordered edges to produce.
    pub num_edges: usize,
    /// Weight decay exponent `alpha` (0 < alpha < 1 typical; larger =
    /// more skewed hubs). `alpha = 0.5` ⇒ degree exponent `γ ≈ 3`.
    pub alpha: f64,
    /// Rank offset smoothing the head of the distribution.
    pub offset: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ChungLuConfig {
    /// A reasonable default shape for social/collaboration networks:
    /// `alpha = 0.6`, `offset = 10`.
    pub fn new(n: usize, num_edges: usize, seed: u64) -> Self {
        ChungLuConfig {
            n,
            num_edges,
            alpha: 0.6,
            offset: 10.0,
            seed,
        }
    }

    /// Overrides the decay exponent.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the rank offset.
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }
}

/// Generates a heavy-tailed random graph with **exactly**
/// `config.num_edges` distinct unordered edges over `config.n` vertices
/// (Chung–Lu sampling with rejection of duplicates and self-loops, plus
/// a uniform top-up if weighted sampling stalls near saturation).
/// Deterministic in `config.seed`.
///
/// This is the generator behind the Table-1 dataset replicas: the
/// paper's metric depends on degree structure, which Chung–Lu matches,
/// while the exact `(n, M)` match keeps the op-count magnitudes
/// comparable.
///
/// # Panics
///
/// Panics if `num_edges > n·(n−1)/2`, if `alpha` is not in `(0, 1]`, or
/// if `offset <= 0`.
///
/// ```
/// use knn_graph::generators::{chung_lu, ChungLuConfig, validate_undirected};
///
/// let edges = chung_lu(ChungLuConfig::new(1000, 5000, 7));
/// assert_eq!(edges.len(), 5000);
/// assert!(validate_undirected(1000, &edges));
/// ```
pub fn chung_lu(config: ChungLuConfig) -> Vec<EdgePair> {
    let ChungLuConfig {
        n,
        num_edges,
        alpha,
        offset,
        seed,
    } = config;
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        num_edges <= possible,
        "requested {num_edges} edges but only {possible} distinct pairs exist for n={n}"
    );
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "alpha must be in (0, 1], got {alpha}"
    );
    assert!(offset > 0.0, "offset must be positive, got {offset}");

    let mut rng = StdRng::seed_from_u64(seed);

    // Cumulative weights for inverse-CDF sampling of ranked vertices.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += (i as f64 + offset).powf(-alpha);
        cumulative.push(acc);
    }
    let total = acc;

    let sample_vertex = |rng: &mut StdRng| -> u32 {
        let x = rng.random_range(0.0..total);
        cumulative.partition_point(|&c| c <= x) as u32
    };

    let mut seen: HashSet<EdgePair> = HashSet::with_capacity(num_edges);
    let mut edges = Vec::with_capacity(num_edges);

    // Weighted phase: stop if rejections dominate (dense head saturated).
    let max_attempts = num_edges.saturating_mul(50).max(1000);
    let mut attempts = 0usize;
    while edges.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let a = sample_vertex(&mut rng);
        let b = sample_vertex(&mut rng);
        if a == b {
            continue;
        }
        let pair = norm(a, b);
        if seen.insert(pair) {
            edges.push(pair);
        }
    }

    // Uniform top-up: guarantees the exact edge count terminates.
    while edges.len() < num_edges {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a == b {
            continue;
        }
        let pair = norm(a, b);
        if seen.insert(pair) {
            edges.push(pair);
        }
    }

    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::validate_undirected;

    #[test]
    fn exact_vertex_and_edge_counts() {
        let edges = chung_lu(ChungLuConfig::new(500, 2000, 11));
        assert_eq!(edges.len(), 2000);
        assert!(validate_undirected(500, &edges));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = chung_lu(ChungLuConfig::new(300, 900, 4));
        let b = chung_lu(ChungLuConfig::new(300, 900, 4));
        let c = chung_lu(ChungLuConfig::new(300, 900, 5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let n = 2000;
        let edges = chung_lu(ChungLuConfig::new(n, 10_000, 3));
        let mut deg = vec![0usize; n];
        for &(a, b) in &edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let mean = 2.0 * 10_000.0 / n as f64;
        // The hubs should far exceed the mean degree.
        assert!(
            deg[0] as f64 > 5.0 * mean,
            "max degree {} not heavy-tailed vs mean {mean}",
            deg[0]
        );
        // ... and the top 1% of vertices should hold a disproportionate
        // share of the endpoints (expected ≈7.5% for alpha=0.6, vs 1%
        // under a uniform distribution).
        let top: usize = deg.iter().take(n / 100).sum();
        assert!(
            top as f64 > 0.05 * 20_000.0,
            "top-1% endpoint share too small: {top}"
        );
    }

    #[test]
    fn saturating_a_small_graph_terminates() {
        let n = 12;
        let all = n * (n - 1) / 2;
        let edges = chung_lu(ChungLuConfig::new(n, all, 0));
        assert_eq!(edges.len(), all);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = chung_lu(ChungLuConfig::new(10, 5, 0).with_alpha(1.5));
    }

    #[test]
    #[should_panic(expected = "distinct pairs")]
    fn rejects_impossible_edge_count() {
        let _ = chung_lu(ChungLuConfig::new(4, 1000, 0));
    }
}
