//! Erdős–Rényi `G(n, M)` generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use super::norm;
use crate::EdgePair;

/// Generates an undirected Erdős–Rényi `G(n, M)` graph: exactly
/// `num_edges` distinct unordered pairs chosen uniformly at random.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `num_edges` exceeds the number of possible pairs
/// `n·(n−1)/2` or if `n < 2` while `num_edges > 0`.
///
/// ```
/// use knn_graph::generators::{erdos_renyi, validate_undirected};
///
/// let edges = erdos_renyi(100, 250, 42);
/// assert_eq!(edges.len(), 250);
/// assert!(validate_undirected(100, &edges));
/// ```
pub fn erdos_renyi(n: usize, num_edges: usize, seed: u64) -> Vec<EdgePair> {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        num_edges <= possible,
        "requested {num_edges} edges but only {possible} distinct pairs exist for n={n}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<EdgePair> = HashSet::with_capacity(num_edges);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a == b {
            continue;
        }
        let pair = norm(a, b);
        if seen.insert(pair) {
            edges.push(pair);
        }
    }
    edges.sort_unstable();
    edges
}

/// Generates a directed Erdős–Rényi graph: exactly `num_edges` distinct
/// ordered pairs `(s, d)` with `s != d`. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `num_edges > n·(n−1)`.
pub fn erdos_renyi_directed(n: usize, num_edges: usize, seed: u64) -> Vec<EdgePair> {
    let possible = n.saturating_mul(n.saturating_sub(1));
    assert!(
        num_edges <= possible,
        "requested {num_edges} directed edges but only {possible} exist for n={n}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<EdgePair> = HashSet::with_capacity(num_edges);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let s = rng.random_range(0..n as u32);
        let d = rng.random_range(0..n as u32);
        if s == d {
            continue;
        }
        if seen.insert((s, d)) {
            edges.push((s, d));
        }
    }
    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::validate_undirected;

    #[test]
    fn produces_exact_edge_count() {
        let edges = erdos_renyi(50, 100, 1);
        assert_eq!(edges.len(), 100);
        assert!(validate_undirected(50, &edges));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(erdos_renyi(40, 60, 5), erdos_renyi(40, 60, 5));
        assert_ne!(erdos_renyi(40, 60, 5), erdos_renyi(40, 60, 6));
    }

    #[test]
    fn can_saturate_the_complete_graph() {
        let n = 10;
        let all = n * (n - 1) / 2;
        let edges = erdos_renyi(n, all, 3);
        assert_eq!(edges.len(), all);
    }

    #[test]
    #[should_panic(expected = "distinct pairs")]
    fn rejects_impossible_edge_count() {
        let _ = erdos_renyi(4, 100, 0);
    }

    #[test]
    fn zero_edges_is_fine() {
        assert!(erdos_renyi(10, 0, 0).is_empty());
        assert!(erdos_renyi_directed(10, 0, 0).is_empty());
    }

    #[test]
    fn directed_variant_allows_both_orientations() {
        let n = 6;
        let all = n * (n - 1);
        let edges = erdos_renyi_directed(n, all, 2);
        assert_eq!(edges.len(), all);
        assert!(edges.contains(&(0, 1)) && edges.contains(&(1, 0)));
        assert!(edges.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn directed_deterministic_in_seed() {
        assert_eq!(
            erdos_renyi_directed(30, 80, 9),
            erdos_renyi_directed(30, 80, 9)
        );
    }
}
