//! Seeded random-graph generators.
//!
//! All generators are deterministic in their `seed` argument and return
//! **undirected unique pairs** `(a, b)` with `a < b` unless the function
//! name says `directed`. Callers orient the pairs as needed (e.g.
//! [`crate::DiGraph::from_undirected_edges`]).
//!
//! The power-law [`chung_lu`] generator is the workhorse for replicating
//! the Middleware'14 Table-1 datasets: it hits an exact vertex count and
//! an exact unique-pair edge count while matching a heavy-tailed degree
//! shape.

mod barabasi_albert;
mod chung_lu;
mod core_periphery;
mod erdos_renyi;
mod watts_strogatz;

pub use barabasi_albert::{barabasi_albert, holme_kim};
pub use chung_lu::{chung_lu, ChungLuConfig};
pub use core_periphery::{core_periphery, CorePeripheryConfig};
pub use erdos_renyi::{erdos_renyi, erdos_renyi_directed};
pub use watts_strogatz::watts_strogatz;

use crate::EdgePair;

/// Normalizes a pair to `(min, max)` form.
pub(crate) fn norm(a: u32, b: u32) -> EdgePair {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Sorts pairs and removes duplicates in place.
pub(crate) fn sort_dedup(edges: &mut Vec<EdgePair>) {
    edges.sort_unstable();
    edges.dedup();
}

/// Checks the output contract shared by the undirected generators:
/// every pair `(a, b)` satisfies `a < b < n` and pairs are unique.
///
/// Intended for tests and debug assertions.
pub fn validate_undirected(n: usize, edges: &[EdgePair]) -> bool {
    let mut seen = std::collections::HashSet::with_capacity(edges.len());
    edges
        .iter()
        .all(|&(a, b)| a < b && (b as usize) < n && seen.insert((a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_orders_endpoints() {
        assert_eq!(norm(5, 2), (2, 5));
        assert_eq!(norm(2, 5), (2, 5));
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let mut v = vec![(3, 4), (1, 2), (3, 4)];
        sort_dedup(&mut v);
        assert_eq!(v, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn validate_undirected_catches_violations() {
        assert!(validate_undirected(5, &[(0, 1), (1, 4)]));
        assert!(!validate_undirected(5, &[(1, 1)]), "self-loop");
        assert!(!validate_undirected(5, &[(2, 1)]), "unordered");
        assert!(!validate_undirected(5, &[(0, 7)]), "out of range");
        assert!(!validate_undirected(5, &[(0, 1), (0, 1)]), "duplicate");
    }
}
