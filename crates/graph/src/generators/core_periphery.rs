//! Core–periphery generator with an exact edge count.
//!
//! Several of the paper's evaluation networks (Wiki-Vote's
//! voters→candidates structure, Gnutella's leaves→ultrapeers topology)
//! concentrate almost every edge on a small *core*: the graph's vertex
//! cover is far smaller than its vertex count. That property is what
//! makes degree-ordered PI-graph traversals much cheaper than
//! sequential ones, so the Table-1 replicas need it. Plain Chung–Lu
//! sampling produces hubs but too many periphery–periphery edges; this
//! generator controls that fraction explicitly.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use super::norm;
use crate::EdgePair;

/// Configuration for [`core_periphery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePeripheryConfig {
    /// Number of vertices.
    pub n: usize,
    /// Exact number of distinct unordered edges.
    pub num_edges: usize,
    /// Fraction of vertices forming the core (`0 < f <= 1`).
    pub core_fraction: f64,
    /// Probability that an edge connects two periphery vertices
    /// (everything else touches the core).
    pub p_periphery: f64,
    /// Weight decay across core ranks (higher = more skewed core hubs).
    pub core_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorePeripheryConfig {
    /// A typical voters→candidates shape: 20 % core, 2 %
    /// periphery–periphery edges, moderately skewed core.
    pub fn new(n: usize, num_edges: usize, seed: u64) -> Self {
        CorePeripheryConfig {
            n,
            num_edges,
            core_fraction: 0.2,
            p_periphery: 0.02,
            core_alpha: 0.6,
            seed,
        }
    }

    /// Overrides the core fraction.
    pub fn with_core_fraction(mut self, f: f64) -> Self {
        self.core_fraction = f;
        self
    }

    /// Overrides the periphery–periphery edge probability.
    pub fn with_p_periphery(mut self, p: f64) -> Self {
        self.p_periphery = p;
        self
    }

    /// Overrides the core weight skew.
    pub fn with_core_alpha(mut self, alpha: f64) -> Self {
        self.core_alpha = alpha;
        self
    }
}

/// Generates a core–periphery graph with **exactly**
/// `config.num_edges` unique undirected edges. Core membership is a
/// seeded random subset (ids are *not* clustered, so id-ordered
/// traversals see no artificial locality). Deterministic in
/// `config.seed`.
///
/// # Panics
///
/// Panics if `num_edges > n·(n−1)/2`, `core_fraction ∉ (0, 1]`,
/// `p_periphery ∉ [0, 1]`, or `core_alpha <= 0`.
///
/// ```
/// use knn_graph::generators::{core_periphery, CorePeripheryConfig, validate_undirected};
///
/// let edges = core_periphery(CorePeripheryConfig::new(1000, 4000, 7));
/// assert_eq!(edges.len(), 4000);
/// assert!(validate_undirected(1000, &edges));
/// ```
pub fn core_periphery(config: CorePeripheryConfig) -> Vec<EdgePair> {
    let CorePeripheryConfig {
        n,
        num_edges,
        core_fraction,
        p_periphery,
        core_alpha,
        seed,
    } = config;
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        num_edges <= possible,
        "requested {num_edges} edges but only {possible} distinct pairs exist for n={n}"
    );
    assert!(
        core_fraction > 0.0 && core_fraction <= 1.0,
        "core_fraction must be in (0, 1], got {core_fraction}"
    );
    assert!(
        (0.0..=1.0).contains(&p_periphery),
        "p_periphery must be in [0, 1], got {p_periphery}"
    );
    assert!(
        core_alpha > 0.0,
        "core_alpha must be positive, got {core_alpha}"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let core_size = ((n as f64 * core_fraction).round() as usize).clamp(1, n);

    // Random core membership (shuffled ids).
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let core: Vec<u32> = ids[..core_size].to_vec();

    // Rank-weighted core sampling (inverse CDF).
    let mut cumulative = Vec::with_capacity(core_size);
    let mut acc = 0.0f64;
    for i in 0..core_size {
        acc += (i as f64 + 1.0).powf(-core_alpha);
        cumulative.push(acc);
    }
    let total = acc;

    let mut seen: HashSet<EdgePair> = HashSet::with_capacity(num_edges);
    let mut edges = Vec::with_capacity(num_edges);
    let max_attempts = num_edges.saturating_mul(60).max(1000);
    let mut attempts = 0usize;
    while edges.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let (a, b) = if rng.random_range(0.0..1.0) < p_periphery {
            // Periphery–periphery (uniform over all vertices keeps it
            // simple; core members may occasionally appear here too).
            (rng.random_range(0..n as u32), rng.random_range(0..n as u32))
        } else {
            // Anyone → rank-weighted core member.
            let x = rng.random_range(0.0..total);
            let c = core[cumulative.partition_point(|&cum| cum <= x)];
            (rng.random_range(0..n as u32), c)
        };
        if a == b {
            continue;
        }
        let pair = norm(a, b);
        if seen.insert(pair) {
            edges.push(pair);
        }
    }
    // Uniform top-up guarantees termination at the exact edge count.
    while edges.len() < num_edges {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a == b {
            continue;
        }
        let pair = norm(a, b);
        if seen.insert(pair) {
            edges.push(pair);
        }
    }

    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::validate_undirected;

    #[test]
    fn exact_counts_and_validity() {
        let edges = core_periphery(CorePeripheryConfig::new(500, 2500, 3));
        assert_eq!(edges.len(), 2500);
        assert!(validate_undirected(500, &edges));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = core_periphery(CorePeripheryConfig::new(300, 900, 5));
        let b = core_periphery(CorePeripheryConfig::new(300, 900, 5));
        let c = core_periphery(CorePeripheryConfig::new(300, 900, 6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn most_edges_touch_the_core() {
        let n = 2000;
        let cfg = CorePeripheryConfig::new(n, 8000, 1)
            .with_core_fraction(0.1)
            .with_p_periphery(0.05);
        let edges = core_periphery(cfg);
        // Recover the core: the 10% highest-degree vertices.
        let mut deg = vec![0usize; n];
        for &(a, b) in &edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut by_degree: Vec<usize> = (0..n).collect();
        by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(deg[v]));
        let core: std::collections::HashSet<usize> = by_degree[..n / 10].iter().copied().collect();
        let touching = edges
            .iter()
            .filter(|&&(a, b)| core.contains(&(a as usize)) || core.contains(&(b as usize)))
            .count();
        assert!(
            touching as f64 > 0.9 * edges.len() as f64,
            "only {touching}/{} edges touch the top-degree decile",
            edges.len()
        );
    }

    #[test]
    fn saturates_small_graphs() {
        let n = 10;
        let all = n * (n - 1) / 2;
        let edges = core_periphery(CorePeripheryConfig::new(n, all, 0));
        assert_eq!(edges.len(), all);
    }

    #[test]
    #[should_panic(expected = "core_fraction")]
    fn rejects_bad_core_fraction() {
        let _ = core_periphery(CorePeripheryConfig::new(10, 5, 0).with_core_fraction(0.0));
    }
}
