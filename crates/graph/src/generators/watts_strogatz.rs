//! Watts–Strogatz small-world generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use super::norm;
use crate::EdgePair;

/// Generates a Watts–Strogatz small-world graph: a ring lattice where
/// each vertex connects to its `k_each_side` nearest neighbors on each
/// side, with every edge rewired to a random target with probability
/// `beta`. Deterministic in `seed`.
///
/// The output keeps exactly `n · k_each_side` unique undirected edges
/// (a rewire that would create a duplicate or self-loop is skipped,
/// keeping the original edge).
///
/// # Panics
///
/// Panics if `k_each_side == 0`, `2·k_each_side >= n`, or
/// `beta ∉ [0, 1]`.
///
/// ```
/// use knn_graph::generators::{watts_strogatz, validate_undirected};
///
/// let edges = watts_strogatz(50, 3, 0.1, 9);
/// assert_eq!(edges.len(), 150);
/// assert!(validate_undirected(50, &edges));
/// ```
pub fn watts_strogatz(n: usize, k_each_side: usize, beta: f64, seed: u64) -> Vec<EdgePair> {
    assert!(k_each_side > 0, "k_each_side must be positive");
    assert!(2 * k_each_side < n, "ring requires 2*k_each_side < n");
    assert!(
        (0.0..=1.0).contains(&beta),
        "beta must be in [0,1], got {beta}"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<EdgePair> = HashSet::with_capacity(n * k_each_side);
    for v in 0..n as u32 {
        for hop in 1..=k_each_side as u32 {
            seen.insert(norm(v, (v + hop) % n as u32));
        }
    }

    let lattice: Vec<EdgePair> = {
        let mut v: Vec<EdgePair> = seen.iter().copied().collect();
        v.sort_unstable();
        v
    };

    for &(a, b) in &lattice {
        if rng.random_range(0.0..1.0) >= beta {
            continue;
        }
        // Rewire the far endpoint of (a, b) to a uniform random target.
        let target = rng.random_range(0..n as u32);
        let candidate = norm(a, target);
        if target == a || seen.contains(&candidate) {
            continue; // keep the original edge
        }
        seen.remove(&(a, b));
        seen.insert(candidate);
    }

    let mut edges: Vec<EdgePair> = seen.into_iter().collect();
    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::validate_undirected;

    #[test]
    fn zero_beta_is_the_pure_ring_lattice() {
        let n = 20;
        let edges = watts_strogatz(n, 2, 0.0, 0);
        assert_eq!(edges.len(), n * 2);
        // Every vertex has degree exactly 2*k.
        let mut deg = vec![0usize; n];
        for &(a, b) in &edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d == 4));
    }

    #[test]
    fn edge_count_is_preserved_under_rewiring() {
        let n = 100;
        for beta in [0.1, 0.5, 1.0] {
            let edges = watts_strogatz(n, 3, beta, 7);
            assert_eq!(edges.len(), n * 3, "beta={beta}");
            assert!(validate_undirected(n, &edges));
        }
    }

    #[test]
    fn rewiring_changes_the_lattice() {
        let a = watts_strogatz(60, 2, 0.0, 1);
        let b = watts_strogatz(60, 2, 0.8, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(watts_strogatz(80, 2, 0.3, 5), watts_strogatz(80, 2, 0.3, 5));
    }

    #[test]
    #[should_panic(expected = "2*k_each_side < n")]
    fn rejects_overfull_ring() {
        let _ = watts_strogatz(6, 3, 0.1, 0);
    }
}
