use std::fmt;

/// Identifier of a user (a vertex of the KNN graph).
///
/// `UserId` is a zero-cost newtype over `u32`; users are always numbered
/// densely `0..n` so a `UserId` doubles as an index into per-user arrays
/// (see [`UserId::index`]).
///
/// ```
/// use knn_graph::UserId;
///
/// let u = UserId::new(7);
/// assert_eq!(u.raw(), 7);
/// assert_eq!(u.index(), 7usize);
/// assert_eq!(u.to_string(), "u7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UserId(u32);

impl UserId {
    /// Creates a user id from its raw `u32` value.
    pub const fn new(raw: u32) -> Self {
        UserId(raw)
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for UserId {
    fn from(raw: u32) -> Self {
        UserId(raw)
    }
}

impl From<UserId> for u32 {
    fn from(id: UserId) -> Self {
        id.0
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UserId({})", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_raw_value() {
        let id = UserId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(UserId::from(42u32), id);
    }

    #[test]
    fn orders_by_raw_value() {
        assert!(UserId::new(1) < UserId::new(2));
        assert_eq!(UserId::new(5), UserId::new(5));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(UserId::default(), UserId::new(0));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", UserId::new(3)), "u3");
        assert_eq!(format!("{:?}", UserId::new(3)), "UserId(3)");
    }

    #[test]
    fn index_matches_raw() {
        for raw in [0u32, 1, 1000, u32::MAX] {
            assert_eq!(UserId::new(raw).index(), raw as usize);
        }
    }
}
