//! The K-bounded, similarity-scored directed graph `G(t)`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::neighbor::cmp_best_first;
use crate::{DiGraph, GraphError, Neighbor, UserId};

/// The KNN graph `G(t)`: a directed graph where every vertex keeps at
/// most `K` scored out-neighbors, ordered best-first.
///
/// This is the structure the Middleware'14 engine evolves each
/// iteration: `G(t) → G(t+1)` replaces each user's neighbor list with
/// the top-`K` most similar users found among its neighbors and
/// neighbors' neighbors.
///
/// Neighbor lists maintain three invariants, enforced on every mutation:
/// no self-loops, no duplicate targets, and length ≤ `K` (kept sorted by
/// the deterministic best-first order of [`Neighbor`]).
///
/// ```
/// use knn_graph::{KnnGraph, Neighbor, UserId};
///
/// let mut g = KnnGraph::new(3, 2);
/// let u = UserId::new(0);
/// g.insert(u, Neighbor::new(UserId::new(1), 0.5));
/// g.insert(u, Neighbor::new(UserId::new(2), 0.9));
/// // A third candidate only displaces the worst if it is better.
/// assert!(!g.insert(u, Neighbor::new(UserId::new(1), 0.4)));
/// assert_eq!(g.neighbors(u)[0].id, UserId::new(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnGraph {
    k: usize,
    lists: Vec<Vec<Neighbor>>,
}

impl KnnGraph {
    /// Creates a graph with `n` vertices, no edges, and bound `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        KnnGraph {
            k,
            lists: vec![Vec::new(); n],
        }
    }

    /// Builds the random initial graph `G(0)`: every vertex receives
    /// `min(k, n-1)` distinct random out-neighbors (no self-loops),
    /// marked [`Neighbor::unscored`] so that any real similarity
    /// computed in iteration 1 displaces them.
    ///
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn random_init(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "K must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = KnnGraph::new(n, k);
        if n <= 1 {
            return g;
        }
        let take = k.min(n - 1);
        let mut pool: Vec<u32> = (0..n as u32).collect();
        for v in 0..n as u32 {
            pool.shuffle(&mut rng);
            let mut list = Vec::with_capacity(take);
            for &c in pool.iter() {
                if c != v {
                    list.push(Neighbor::unscored(UserId::new(c)));
                    if list.len() == take {
                        break;
                    }
                }
            }
            list.sort_by(cmp_best_first);
            g.lists[v as usize] = list;
        }
        g
    }

    /// The neighbor bound `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.lists.len()
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// The best-first-ordered neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: UserId) -> &[Neighbor] {
        &self.lists[v.index()]
    }

    /// Offers candidate `cand` to vertex `v`'s list; keeps the top-`K`.
    ///
    /// Returns `true` if the list changed (candidate inserted, or an
    /// existing entry for the same target upgraded to a better score).
    /// A candidate equal to the current entry, worse than the current
    /// entry, or worse than a full list's tail is rejected.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `cand.id == v` (self-loop).
    pub fn insert(&mut self, v: UserId, cand: Neighbor) -> bool {
        assert_ne!(v, cand.id, "self-loop offered to KNN list of {v}");
        let k = self.k;
        let list = &mut self.lists[v.index()];
        if let Some(pos) = list.iter().position(|n| n.id == cand.id) {
            if cand.beats(&list[pos]) {
                list.remove(pos);
                let at = list.partition_point(|n| n.beats(&cand));
                list.insert(at, cand);
                return true;
            }
            return false;
        }
        if list.len() < k {
            let at = list.partition_point(|n| n.beats(&cand));
            list.insert(at, cand);
            return true;
        }
        // List full: candidate must beat the current worst.
        if cand.beats(list.last().expect("k > 0 so a full list is non-empty")) {
            list.pop();
            let at = list.partition_point(|n| n.beats(&cand));
            list.insert(at, cand);
            return true;
        }
        false
    }

    /// Re-scores an existing edge `v → target` to `sim`, repositioning
    /// it in the best-first order. Unlike [`insert`](KnnGraph::insert),
    /// this **allows downgrades** — it is the primitive the online
    /// repair path uses when a profile change moves a similarity in
    /// either direction.
    ///
    /// Returns `false` (and changes nothing) if `target` is not in
    /// `v`'s list or the score is bit-identical already.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `sim` is non-finite.
    pub fn rescore_neighbor(&mut self, v: UserId, target: UserId, sim: f32) -> bool {
        assert!(
            sim.is_finite(),
            "non-finite rescore of edge {v} -> {target}"
        );
        let list = &mut self.lists[v.index()];
        let Some(pos) = list.iter().position(|n| n.id == target) else {
            return false;
        };
        if list[pos].sim.to_bits() == sim.to_bits() {
            return false;
        }
        list.remove(pos);
        let cand = Neighbor::new(target, sim);
        let at = list.partition_point(|n| n.beats(&cand));
        list.insert(at, cand);
        true
    }

    /// Offers `cand` to `v`'s list with **rescore semantics**: if the
    /// target is already listed its score is moved to `cand.sim` (up
    /// *or* down, via [`rescore_neighbor`](KnnGraph::rescore_neighbor));
    /// otherwise this is a plain [`insert`](KnnGraph::insert). Returns
    /// whether the list changed.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range, `cand.id == v`, or `cand.sim` is
    /// non-finite.
    pub fn offer_rescored(&mut self, v: UserId, cand: Neighbor) -> bool {
        assert_ne!(v, cand.id, "self-loop offered to KNN list of {v}");
        assert!(
            cand.sim.is_finite(),
            "non-finite score offered to KNN list of {v}"
        );
        if self.lists[v.index()].iter().any(|n| n.id == cand.id) {
            self.rescore_neighbor(v, cand.id, cand.sim)
        } else {
            self.insert(v, cand)
        }
    }

    /// Copy-on-write [`set_neighbors`](KnnGraph::set_neighbors): the
    /// first patch on a shared graph clones it once (`Arc::make_mut`),
    /// subsequent patches in the same batch mutate that private copy
    /// in place. Published snapshots holding the old `Arc` are never
    /// touched — this is how the serving layer's repair path edits
    /// rows next to live readers.
    ///
    /// # Errors
    ///
    /// Same validation as [`set_neighbors`](KnnGraph::set_neighbors).
    pub fn patch_row(
        graph: &mut std::sync::Arc<KnnGraph>,
        v: UserId,
        list: Vec<Neighbor>,
    ) -> Result<(), GraphError> {
        std::sync::Arc::make_mut(graph).set_neighbors(v, list)
    }

    /// Copy-on-write [`insert`](KnnGraph::insert) (see
    /// [`patch_row`](KnnGraph::patch_row) for the sharing contract).
    pub fn patch_offer(graph: &mut std::sync::Arc<KnnGraph>, v: UserId, cand: Neighbor) -> bool {
        std::sync::Arc::make_mut(graph).offer_rescored(v, cand)
    }

    /// Copy-on-write [`rescore_neighbor`](KnnGraph::rescore_neighbor)
    /// (see [`patch_row`](KnnGraph::patch_row) for the sharing
    /// contract).
    pub fn patch_rescore(
        graph: &mut std::sync::Arc<KnnGraph>,
        v: UserId,
        target: UserId,
        sim: f32,
    ) -> bool {
        std::sync::Arc::make_mut(graph).rescore_neighbor(v, target, sim)
    }

    /// Replaces `v`'s entire neighbor list after validating the KNN
    /// invariants; the list is sorted internally.
    ///
    /// # Errors
    ///
    /// Returns an error if the list contains a self-loop, duplicate
    /// target, non-finite similarity, an out-of-range target, or more
    /// than `K` entries.
    pub fn set_neighbors(&mut self, v: UserId, mut list: Vec<Neighbor>) -> Result<(), GraphError> {
        let n = self.num_vertices();
        if v.index() >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: n,
            });
        }
        if list.len() > self.k {
            return Err(GraphError::TooManyNeighbors {
                vertex: v,
                supplied: list.len(),
                k: self.k,
            });
        }
        let mut seen = std::collections::HashSet::with_capacity(list.len());
        for nb in &list {
            if nb.id == v {
                return Err(GraphError::SelfLoop { vertex: v });
            }
            if nb.id.index() >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: nb.id,
                    num_vertices: n,
                });
            }
            if !nb.sim.is_finite() && !nb.is_unscored() {
                return Err(GraphError::NonFiniteSimilarity { edge: (v, nb.id) });
            }
            if !seen.insert(nb.id) {
                return Err(GraphError::DuplicateNeighbor {
                    vertex: v,
                    neighbor: nb.id,
                });
            }
        }
        list.sort_by(cmp_best_first);
        self.lists[v.index()] = list;
        Ok(())
    }

    /// Iterates all scored directed edges `(source, neighbor)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (UserId, Neighbor)> + '_ {
        self.lists
            .iter()
            .enumerate()
            .flat_map(|(s, list)| list.iter().map(move |&nb| (UserId::new(s as u32), nb)))
    }

    /// Drops the scores, yielding the plain directed graph.
    pub fn to_digraph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.num_vertices());
        for (s, nb) in self.iter_edges() {
            g.add_edge(s, nb.id);
        }
        g.sort_and_dedup();
        g
    }

    /// Fraction of directed edges of `self` that are **not** present in
    /// `other` (by target id, scores ignored) — the convergence metric
    /// `δ(G(t), G(t+1))` used by the iteration driver.
    ///
    /// Returns 0.0 when `self` has no edges.
    ///
    /// # Panics
    ///
    /// Panics if the vertex counts differ.
    pub fn edge_change_fraction(&self, other: &KnnGraph) -> f64 {
        assert_eq!(
            self.num_vertices(),
            other.num_vertices(),
            "graphs must have the same vertex set"
        );
        let mut total = 0usize;
        let mut changed = 0usize;
        for v in 0..self.num_vertices() {
            let u = UserId::new(v as u32);
            let theirs: std::collections::HashSet<UserId> =
                other.neighbors(u).iter().map(|n| n.id).collect();
            for nb in self.neighbors(u) {
                total += 1;
                if !theirs.contains(&nb.id) {
                    changed += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            changed as f64 / total as f64
        }
    }

    /// The distinct vertices reachable from `v` in one or two hops,
    /// excluding `v` itself — exactly the candidate set one KNN
    /// iteration scores for `v`, and the neighborhood the serving
    /// layer brute-forces for ad-hoc profile queries anchored at a
    /// known user.
    ///
    /// The result is sorted by vertex id (deterministic, and ready for
    /// merge joins).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn two_hop_candidates(&self, v: UserId) -> Vec<UserId> {
        let mut seen = std::collections::HashSet::new();
        for nb in self.neighbors(v) {
            seen.insert(nb.id);
            for nb2 in self.neighbors(nb.id) {
                seen.insert(nb2.id);
            }
        }
        seen.remove(&v);
        let mut out: Vec<UserId> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Whether every neighbor of `v` carries a real similarity (no
    /// [`Neighbor::unscored`] sentinel) — the precondition for using
    /// `v`'s list as a top-K accumulator seed.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn fully_scored(&self, v: UserId) -> bool {
        self.neighbors(v).iter().all(|n| !n.is_unscored())
    }

    /// `v`'s neighbor list as on-storage accumulator rows
    /// `(target, sim)`, best-first — the phase-4 **seed row** that
    /// replays iteration `t-1`'s scores into iteration `t`'s top-K
    /// accumulator so that suppressed (already-evaluated) pairs keep
    /// their standing without being re-scored.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn seed_row(&self, v: UserId) -> Vec<(u32, f32)> {
        self.neighbors(v)
            .iter()
            .map(|n| (n.id.raw(), n.sim))
            .collect()
    }

    /// The edges of `self` that are **not** in `previous`, grouped by
    /// source — the "new edge" oracle of cross-iteration pair
    /// suppression: a candidate tuple needs (re-)scoring only if some
    /// edge on its generating path is new.
    ///
    /// # Panics
    ///
    /// Panics if the vertex counts differ.
    pub fn additions_since(&self, previous: &KnnGraph) -> EdgeAdditions {
        assert_eq!(
            self.num_vertices(),
            previous.num_vertices(),
            "graphs must have the same vertex set"
        );
        let mut added: Vec<Vec<u32>> = Vec::with_capacity(self.num_vertices());
        for v in 0..self.num_vertices() {
            let u = UserId::new(v as u32);
            let old: std::collections::HashSet<UserId> =
                previous.neighbors(u).iter().map(|n| n.id).collect();
            let mut fresh: Vec<u32> = self
                .neighbors(u)
                .iter()
                .filter(|n| !old.contains(&n.id))
                .map(|n| n.id.raw())
                .collect();
            fresh.sort_unstable();
            added.push(fresh);
        }
        EdgeAdditions { added }
    }

    /// Sum of all edge similarities, ignoring unscored sentinels — a
    /// monotonicity probe used by tests and convergence diagnostics.
    pub fn total_similarity(&self) -> f64 {
        self.iter_edges()
            .filter(|(_, nb)| !nb.is_unscored())
            .map(|(_, nb)| nb.sim as f64)
            .sum()
    }
}

/// The per-source sets of edges added between two KNN graphs
/// (`G(t-1) → G(t)`), queryable in `O(log K)` — produced by
/// [`KnnGraph::additions_since`] and consumed by phase 2's
/// cross-iteration tuple-freshness tagging.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgeAdditions {
    /// Sorted added target ids, indexed by source.
    added: Vec<Vec<u32>>,
}

impl EdgeAdditions {
    /// Whether the edge `s → d` is an addition (present now, absent
    /// before). Out-of-range sources are never additions.
    pub fn is_added(&self, s: u32, d: u32) -> bool {
        self.added
            .get(s as usize)
            .is_some_and(|targets| targets.binary_search(&d).is_ok())
    }

    /// Whether source `s` gained any out-edge.
    pub fn any_added_from(&self, s: u32) -> bool {
        self.added
            .get(s as usize)
            .is_some_and(|targets| !targets.is_empty())
    }

    /// Total number of added edges.
    pub fn num_added(&self) -> usize {
        self.added.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(id: u32, sim: f32) -> Neighbor {
        Neighbor::new(UserId::new(id), sim)
    }

    #[test]
    fn insert_keeps_best_first_order() {
        let mut g = KnnGraph::new(5, 3);
        let v = UserId::new(0);
        for cand in [nb(1, 0.1), nb(2, 0.9), nb(3, 0.5)] {
            assert!(g.insert(v, cand));
        }
        let sims: Vec<f32> = g.neighbors(v).iter().map(|n| n.sim).collect();
        assert_eq!(sims, vec![0.9, 0.5, 0.1]);
    }

    #[test]
    fn insert_evicts_worst_when_full() {
        let mut g = KnnGraph::new(5, 2);
        let v = UserId::new(0);
        g.insert(v, nb(1, 0.1));
        g.insert(v, nb(2, 0.2));
        assert!(g.insert(v, nb(3, 0.3)));
        let ids: Vec<u32> = g.neighbors(v).iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn insert_rejects_worse_candidate_when_full() {
        let mut g = KnnGraph::new(5, 2);
        let v = UserId::new(0);
        g.insert(v, nb(1, 0.5));
        g.insert(v, nb(2, 0.6));
        assert!(!g.insert(v, nb(3, 0.4)));
        assert_eq!(g.neighbors(v).len(), 2);
    }

    #[test]
    fn insert_upgrades_existing_target() {
        let mut g = KnnGraph::new(5, 3);
        let v = UserId::new(0);
        g.insert(v, nb(1, 0.2));
        g.insert(v, nb(2, 0.5));
        assert!(g.insert(v, nb(1, 0.9)));
        assert_eq!(g.neighbors(v)[0], nb(1, 0.9));
        assert_eq!(g.neighbors(v).len(), 2);
        // A downgrade for an existing target is ignored.
        assert!(!g.insert(v, nb(1, 0.05)));
        assert_eq!(g.neighbors(v)[0], nb(1, 0.9));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn insert_panics_on_self_loop() {
        let mut g = KnnGraph::new(3, 2);
        g.insert(UserId::new(1), nb(1, 0.5));
    }

    #[test]
    fn random_init_respects_invariants() {
        let g = KnnGraph::random_init(50, 5, 7);
        assert_eq!(g.num_edges(), 50 * 5);
        for v in 0..50u32 {
            let u = UserId::new(v);
            let list = g.neighbors(u);
            assert_eq!(list.len(), 5);
            assert!(list.iter().all(|n| n.id != u), "no self-loops");
            assert!(list.iter().all(|n| n.is_unscored()));
            let mut ids: Vec<u32> = list.iter().map(|n| n.id.raw()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "no duplicates");
        }
    }

    #[test]
    fn random_init_is_deterministic_in_seed() {
        assert_eq!(
            KnnGraph::random_init(30, 4, 9),
            KnnGraph::random_init(30, 4, 9)
        );
        assert_ne!(
            KnnGraph::random_init(30, 4, 9),
            KnnGraph::random_init(30, 4, 10)
        );
    }

    #[test]
    fn random_init_small_n_caps_at_n_minus_one() {
        let g = KnnGraph::random_init(3, 10, 1);
        for v in 0..3u32 {
            assert_eq!(g.neighbors(UserId::new(v)).len(), 2);
        }
        let lone = KnnGraph::random_init(1, 4, 1);
        assert_eq!(lone.num_edges(), 0);
    }

    #[test]
    fn set_neighbors_validates_all_invariants() {
        let mut g = KnnGraph::new(4, 2);
        let v = UserId::new(0);
        assert!(matches!(
            g.set_neighbors(v, vec![nb(0, 0.5)]),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.set_neighbors(v, vec![nb(1, 0.5), nb(1, 0.6)]),
            Err(GraphError::DuplicateNeighbor { .. })
        ));
        assert!(matches!(
            g.set_neighbors(v, vec![nb(1, 0.1), nb(2, 0.2), nb(3, 0.3)]),
            Err(GraphError::TooManyNeighbors { .. })
        ));
        assert!(matches!(
            g.set_neighbors(v, vec![nb(9, 0.5)]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            g.set_neighbors(
                v,
                vec![Neighbor {
                    id: UserId::new(1),
                    sim: f32::NAN
                }]
            ),
            Err(GraphError::NonFiniteSimilarity { .. })
        ));
        assert!(g.set_neighbors(v, vec![nb(2, 0.1), nb(1, 0.9)]).is_ok());
        assert_eq!(g.neighbors(v)[0], nb(1, 0.9));
    }

    #[test]
    fn rescore_repositions_in_both_directions() {
        let mut g = KnnGraph::new(5, 3);
        let v = UserId::new(0);
        g.insert(v, nb(1, 0.9));
        g.insert(v, nb(2, 0.5));
        g.insert(v, nb(3, 0.1));
        // Downgrade: 1 falls from the top to the bottom.
        assert!(g.rescore_neighbor(v, UserId::new(1), 0.05));
        let ids: Vec<u32> = g.neighbors(v).iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        // Upgrade: 3 climbs to the top.
        assert!(g.rescore_neighbor(v, UserId::new(3), 0.95));
        assert_eq!(g.neighbors(v)[0], nb(3, 0.95));
        // Absent target and bit-identical score are both no-ops.
        assert!(!g.rescore_neighbor(v, UserId::new(4), 0.5));
        assert!(!g.rescore_neighbor(v, UserId::new(2), 0.5));
        assert_eq!(g.neighbors(v).len(), 3);
    }

    #[test]
    fn offer_rescored_downgrades_where_insert_would_not() {
        let mut g = KnnGraph::new(5, 2);
        let v = UserId::new(0);
        g.insert(v, nb(1, 0.9));
        g.insert(v, nb(2, 0.5));
        // insert() ignores a downgrade for a listed target...
        assert!(!g.insert(v, nb(1, 0.2)));
        assert_eq!(g.neighbors(v)[0], nb(1, 0.9));
        // ...offer_rescored applies it.
        assert!(g.offer_rescored(v, nb(1, 0.2)));
        let ids: Vec<u32> = g.neighbors(v).iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, vec![2, 1]);
        // Unlisted targets go through plain insert (top-K eviction).
        assert!(g.offer_rescored(v, nb(3, 0.7)));
        let ids: Vec<u32> = g.neighbors(v).iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, vec![3, 2]);
        assert!(!g.offer_rescored(v, nb(4, 0.1)), "worse than a full tail");
    }

    #[test]
    fn patch_helpers_leave_shared_readers_untouched() {
        let mut base = KnnGraph::new(4, 2);
        base.insert(UserId::new(0), nb(1, 0.5));
        base.insert(UserId::new(1), nb(0, 0.5));
        let published = std::sync::Arc::new(base);
        let reader = std::sync::Arc::clone(&published);

        let mut patched = std::sync::Arc::clone(&published);
        KnnGraph::patch_row(&mut patched, UserId::new(0), vec![nb(2, 0.8), nb(3, 0.6)])
            .expect("valid row");
        assert!(KnnGraph::patch_offer(
            &mut patched,
            UserId::new(2),
            nb(0, 0.8)
        ));
        assert!(KnnGraph::patch_rescore(
            &mut patched,
            UserId::new(1),
            UserId::new(0),
            0.1
        ));

        // The reader still sees the pre-patch generation, bit for bit.
        assert_eq!(reader.neighbors(UserId::new(0)), &[nb(1, 0.5)]);
        assert_eq!(reader.neighbors(UserId::new(1)), &[nb(0, 0.5)]);
        assert!(reader.neighbors(UserId::new(2)).is_empty());
        // The patched copy has all three edits.
        assert_eq!(patched.neighbors(UserId::new(0))[0], nb(2, 0.8));
        assert_eq!(patched.neighbors(UserId::new(2)), &[nb(0, 0.8)]);
        assert_eq!(patched.neighbors(UserId::new(1)), &[nb(0, 0.1)]);
        // An exclusively held Arc is patched in place (no clone).
        let before = std::sync::Arc::as_ptr(&patched);
        assert!(KnnGraph::patch_offer(
            &mut patched,
            UserId::new(3),
            nb(1, 0.3)
        ));
        assert_eq!(std::sync::Arc::as_ptr(&patched), before);
    }

    #[test]
    fn edge_change_fraction_detects_differences() {
        let mut a = KnnGraph::new(3, 2);
        let mut b = KnnGraph::new(3, 2);
        a.insert(UserId::new(0), nb(1, 0.5));
        a.insert(UserId::new(0), nb(2, 0.5));
        b.insert(UserId::new(0), nb(1, 0.9)); // same target, different score
        assert!((a.edge_change_fraction(&a) - 0.0).abs() < 1e-12);
        assert!((a.edge_change_fraction(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edge_change_fraction_empty_graph_is_zero() {
        let a = KnnGraph::new(3, 2);
        assert_eq!(a.edge_change_fraction(&a), 0.0);
    }

    #[test]
    fn to_digraph_preserves_targets() {
        let mut g = KnnGraph::new(4, 2);
        g.insert(UserId::new(0), nb(2, 0.4));
        g.insert(UserId::new(3), nb(0, 0.7));
        let d = g.to_digraph();
        assert!(d.has_edge(UserId::new(0), UserId::new(2)));
        assert!(d.has_edge(UserId::new(3), UserId::new(0)));
        assert_eq!(d.num_edges(), 2);
    }

    #[test]
    fn two_hop_candidates_cover_both_rings() {
        // 0 → 1 → {2, 3}, 0 → 4; two-hop set of 0 is {1, 2, 3, 4}.
        let mut g = KnnGraph::new(6, 3);
        g.insert(UserId::new(0), nb(1, 0.9));
        g.insert(UserId::new(0), nb(4, 0.2));
        g.insert(UserId::new(1), nb(2, 0.8));
        g.insert(UserId::new(1), nb(3, 0.7));
        let hops = g.two_hop_candidates(UserId::new(0));
        let raw: Vec<u32> = hops.iter().map(|u| u.raw()).collect();
        assert_eq!(raw, vec![1, 2, 3, 4]);
    }

    #[test]
    fn two_hop_candidates_exclude_self_and_dedup() {
        // 0 ↔ 1 plus 1 → 2: the back-edge to 0 must not appear.
        let mut g = KnnGraph::new(3, 2);
        g.insert(UserId::new(0), nb(1, 0.5));
        g.insert(UserId::new(1), nb(0, 0.5));
        g.insert(UserId::new(1), nb(2, 0.4));
        let raw: Vec<u32> = g
            .two_hop_candidates(UserId::new(0))
            .iter()
            .map(|u| u.raw())
            .collect();
        assert_eq!(raw, vec![1, 2]);
        assert!(g.two_hop_candidates(UserId::new(2)).is_empty());
    }

    #[test]
    fn seed_row_and_fully_scored_track_sentinels() {
        let mut g = KnnGraph::new(4, 3);
        g.insert(UserId::new(0), nb(1, 0.75));
        g.insert(UserId::new(0), nb(2, 0.25));
        assert!(g.fully_scored(UserId::new(0)));
        assert_eq!(g.seed_row(UserId::new(0)), vec![(1, 0.75), (2, 0.25)]);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(3)));
        assert!(!g.fully_scored(UserId::new(0)));
        // Empty lists are vacuously fully scored.
        assert!(g.fully_scored(UserId::new(1)));
        assert!(g.seed_row(UserId::new(1)).is_empty());
    }

    #[test]
    fn additions_since_finds_exactly_the_new_edges() {
        let mut old = KnnGraph::new(4, 2);
        old.insert(UserId::new(0), nb(1, 0.5));
        old.insert(UserId::new(1), nb(2, 0.5));
        let mut new = KnnGraph::new(4, 2);
        new.insert(UserId::new(0), nb(1, 0.9)); // same target, new score: not an addition
        new.insert(UserId::new(0), nb(3, 0.4)); // added
        new.insert(UserId::new(2), nb(0, 0.2)); // added
        let adds = new.additions_since(&old);
        assert!(!adds.is_added(0, 1), "rescored edge is not an addition");
        assert!(adds.is_added(0, 3));
        assert!(adds.is_added(2, 0));
        assert!(!adds.is_added(1, 2));
        assert!(!adds.is_added(9, 9), "out-of-range source");
        assert!(adds.any_added_from(0));
        assert!(!adds.any_added_from(1));
        assert_eq!(adds.num_added(), 2);
        // A graph diffed against itself has no additions.
        assert_eq!(new.additions_since(&new).num_added(), 0);
    }

    #[test]
    fn total_similarity_ignores_unscored() {
        let mut g = KnnGraph::new(4, 3);
        g.insert(UserId::new(0), Neighbor::unscored(UserId::new(1)));
        g.insert(UserId::new(0), nb(2, 0.25));
        g.insert(UserId::new(1), nb(3, 0.75));
        assert!((g.total_similarity() - 1.0).abs() < 1e-6);
    }
}
