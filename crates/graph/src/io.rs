//! SNAP-style text edge-list reading and writing.
//!
//! The format is the one used by the SNAP datasets the paper evaluates
//! on: `#`-prefixed comment lines, then one whitespace-separated
//! `source destination` pair per line.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{EdgePair, GraphError};

/// Reads a SNAP-style text edge list.
///
/// Blank lines and lines starting with `#` are skipped. Each remaining
/// line must hold exactly two unsigned integers separated by
/// whitespace.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on I/O failure and
/// [`GraphError::MalformedLine`] on parse failure (with the 1-based
/// line number).
///
/// ```no_run
/// # fn main() -> Result<(), knn_graph::GraphError> {
/// let edges = knn_graph::io::read_edge_list_text("graph.txt")?;
/// println!("{} edges", edges.len());
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list_text<P: AsRef<Path>>(path: P) -> Result<Vec<EdgePair>, GraphError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut edges = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok.and_then(|t| t.parse().ok()) };
        match (parse(it.next()), parse(it.next()), it.next()) {
            (Some(s), Some(d), None) => edges.push((s, d)),
            _ => {
                return Err(GraphError::MalformedLine {
                    line: idx + 1,
                    content: truncate_for_error(trimmed),
                })
            }
        }
    }
    Ok(edges)
}

/// Writes edges in SNAP-style text format with a comment header.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on I/O failure.
pub fn write_edge_list_text<P: AsRef<Path>>(
    path: P,
    header: &str,
    edges: &[EdgePair],
) -> Result<(), GraphError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for line in header.lines() {
        writeln!(w, "# {line}")?;
    }
    writeln!(w, "# Edges: {}", edges.len())?;
    for &(s, d) in edges {
        writeln!(w, "{s}\t{d}")?;
    }
    w.flush()?;
    Ok(())
}

fn truncate_for_error(s: &str) -> String {
    const MAX: usize = 64;
    if s.len() <= MAX {
        s.to_string()
    } else {
        format!("{}…", &s[..MAX])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("knn_graph_io_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_edges() {
        let path = temp_path("roundtrip.txt");
        let edges = vec![(0, 1), (5, 2), (1000000, 7)];
        write_edge_list_text(&path, "test graph\nsecond line", &edges).unwrap();
        let back = read_edge_list_text(&path).unwrap();
        assert_eq!(back, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let path = temp_path("comments.txt");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "# header").unwrap();
        writeln!(f).unwrap();
        writeln!(f, "3 4").unwrap();
        writeln!(
            f,
            "  # indented comment is not a comment per SNAP, but trim handles it"
        )
        .unwrap();
        writeln!(f, "5\t6").unwrap();
        drop(f);
        let edges = read_edge_list_text(&path).unwrap();
        assert_eq!(edges, vec![(3, 4), (5, 6)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reports_malformed_line_with_number() {
        let path = temp_path("malformed.txt");
        std::fs::write(&path, "0 1\nnot numbers\n2 3\n").unwrap();
        let err = read_edge_list_text(&path).unwrap_err();
        match err {
            GraphError::MalformedLine { line, .. } => assert_eq!(line, 2),
            other => panic!("expected MalformedLine, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_three_column_lines() {
        let path = temp_path("threecol.txt");
        std::fs::write(&path, "0 1 2\n").unwrap();
        assert!(matches!(
            read_edge_list_text(&path),
            Err(GraphError::MalformedLine { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_edge_list_text("/nonexistent/definitely/missing.txt"),
            Err(GraphError::Io(_))
        ));
    }

    #[test]
    fn empty_edge_list_round_trips() {
        let path = temp_path("empty.txt");
        write_edge_list_text(&path, "empty", &[]).unwrap();
        assert!(read_edge_list_text(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
