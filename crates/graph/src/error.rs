use std::fmt;
use std::io;

use crate::UserId;

/// Errors produced by graph construction, validation, and edge-list I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id referenced a vertex outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: UserId,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// A self-loop `(v, v)` was supplied where self-loops are forbidden.
    SelfLoop {
        /// The looping vertex.
        vertex: UserId,
    },
    /// A duplicate neighbor id was supplied in a neighbor list.
    DuplicateNeighbor {
        /// The owning vertex.
        vertex: UserId,
        /// The repeated neighbor.
        neighbor: UserId,
    },
    /// A neighbor list exceeded the graph's `K` bound.
    TooManyNeighbors {
        /// The owning vertex.
        vertex: UserId,
        /// Supplied list length.
        supplied: usize,
        /// The graph's bound.
        k: usize,
    },
    /// A similarity score was NaN or infinite.
    NonFiniteSimilarity {
        /// The edge whose score was invalid.
        edge: (UserId, UserId),
    },
    /// An edge-list file contained a malformed line.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending content (possibly truncated).
        content: String,
    },
    /// Underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {num_vertices} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphError::DuplicateNeighbor { vertex, neighbor } => {
                write!(
                    f,
                    "duplicate neighbor {neighbor} in neighbor list of {vertex}"
                )
            }
            GraphError::TooManyNeighbors {
                vertex,
                supplied,
                k,
            } => {
                write!(
                    f,
                    "{supplied} neighbors supplied for {vertex} but the graph bound is K={k}"
                )
            }
            GraphError::NonFiniteSimilarity { edge: (s, d) } => {
                write!(f, "non-finite similarity on edge ({s}, {d})")
            }
            GraphError::MalformedLine { line, content } => {
                write!(f, "malformed edge-list line {line}: {content:?}")
            }
            GraphError::Io(e) => write!(f, "edge-list i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<GraphError> = vec![
            GraphError::VertexOutOfRange {
                vertex: UserId::new(9),
                num_vertices: 4,
            },
            GraphError::SelfLoop {
                vertex: UserId::new(1),
            },
            GraphError::DuplicateNeighbor {
                vertex: UserId::new(1),
                neighbor: UserId::new(2),
            },
            GraphError::TooManyNeighbors {
                vertex: UserId::new(0),
                supplied: 5,
                k: 3,
            },
            GraphError::NonFiniteSimilarity {
                edge: (UserId::new(0), UserId::new(1)),
            },
            GraphError::MalformedLine {
                line: 3,
                content: "a b".into(),
            },
            GraphError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn io_variant_exposes_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(GraphError::SelfLoop {
            vertex: UserId::new(0)
        }
        .source()
        .is_none());
    }
}
