//! Directed-graph substrate for out-of-core KNN computation.
//!
//! This crate provides the graph data structures, random-graph
//! generators, text/binary edge-list I/O, and structural statistics used
//! by the out-of-core KNN engine (`knn-core`) and its baselines. It is
//! deliberately free of any storage or similarity concerns: vertices are
//! plain [`UserId`]s and edges are either unscored ([`DiGraph`], [`Csr`])
//! or carry a similarity score ([`KnnGraph`]).
//!
//! # Quick example
//!
//! ```
//! use knn_graph::{DiGraph, UserId};
//!
//! let mut g = DiGraph::new(4);
//! g.add_edge(UserId::new(0), UserId::new(1));
//! g.add_edge(UserId::new(1), UserId::new(2));
//! g.add_edge(UserId::new(1), UserId::new(3));
//! assert_eq!(g.out_degree(UserId::new(1)), 2);
//! assert_eq!(g.num_edges(), 3);
//! ```

pub mod csr;
pub mod digraph;
pub mod error;
pub mod generators;
pub mod io;
pub mod knn;
pub mod neighbor;
pub mod pagerank;
pub mod stats;

mod id;

pub use csr::Csr;
pub use digraph::DiGraph;
pub use error::GraphError;
pub use id::UserId;
pub use knn::{EdgeAdditions, KnnGraph};
pub use neighbor::Neighbor;
pub use stats::DegreeStats;

/// A directed edge as a raw `(source, destination)` pair of vertex ids.
///
/// Generators and I/O functions traffic in raw pairs; structured graph
/// types ([`DiGraph`], [`Csr`], [`KnnGraph`]) are built from them.
pub type EdgePair = (u32, u32);
