//! Compressed sparse row (CSR) read-only graph.

use crate::{DiGraph, UserId};

/// An immutable directed graph in compressed-sparse-row form.
///
/// `Csr` trades mutability for cache-friendly sequential neighbor scans;
/// the heavy inner loops (tuple generation, NN-Descent joins, statistics)
/// run on `Csr` rather than [`DiGraph`].
///
/// ```
/// use knn_graph::{Csr, DiGraph, UserId};
///
/// let g = DiGraph::from_edges(3, [(0, 1), (0, 2), (2, 0)]).unwrap();
/// let csr = Csr::from_digraph(&g);
/// assert_eq!(csr.neighbors(UserId::new(0)), &[1, 2]);
/// assert_eq!(csr.degree(UserId::new(1)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from a [`DiGraph`], sorting each adjacency run.
    pub fn from_digraph(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.num_edges());
        offsets.push(0);
        for v in 0..n as u32 {
            let mut run: Vec<u32> = g.out_neighbors(UserId::new(v)).to_vec();
            run.sort_unstable();
            targets.extend_from_slice(&run);
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR directly from raw edges over `n` vertices.
    ///
    /// Duplicate edges are preserved; call
    /// [`DiGraph::sort_and_dedup`] first if uniqueness matters.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(s, d) in edges {
            assert!(
                (s as usize) < n && (d as usize) < n,
                "edge endpoint out of range"
            );
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, d) in edges {
            targets[cursor[s as usize]] = d;
            cursor[s as usize] += 1;
        }
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The sorted out-neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: UserId) -> &[u32] {
        &self.targets[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: UserId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Whether the edge `(s, d)` exists (binary search).
    pub fn has_edge(&self, s: UserId, d: UserId) -> bool {
        self.neighbors(s).binary_search(&d.raw()).is_ok()
    }

    /// Iterates all edges in source order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        (0..self.num_vertices()).flat_map(move |s| {
            self.neighbors(UserId::new(s as u32))
                .iter()
                .map(move |&d| (UserId::new(s as u32), UserId::new(d)))
        })
    }

    /// Builds the transpose CSR (all edges reversed).
    pub fn transpose(&self) -> Csr {
        let edges: Vec<(u32, u32)> = self.iter_edges().map(|(s, d)| (d.raw(), s.raw())).collect();
        Csr::from_edges(self.num_vertices(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_edges(4, &[(0, 3), (0, 1), (2, 0), (2, 3), (3, 2)])
    }

    #[test]
    fn from_edges_sorts_runs() {
        let csr = sample();
        assert_eq!(csr.neighbors(UserId::new(0)), &[1, 3]);
        assert_eq!(csr.neighbors(UserId::new(2)), &[0, 3]);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.num_vertices(), 4);
    }

    #[test]
    fn empty_vertex_has_empty_slice() {
        let csr = sample();
        assert_eq!(csr.neighbors(UserId::new(1)), &[] as &[u32]);
        assert_eq!(csr.degree(UserId::new(1)), 0);
    }

    #[test]
    fn from_digraph_matches_from_edges() {
        let edges = [(0u32, 3u32), (0, 1), (2, 0), (2, 3), (3, 2)];
        let g = DiGraph::from_edges(4, edges).unwrap();
        assert_eq!(Csr::from_digraph(&g), sample());
    }

    #[test]
    fn has_edge_uses_binary_search() {
        let csr = sample();
        assert!(csr.has_edge(UserId::new(0), UserId::new(3)));
        assert!(!csr.has_edge(UserId::new(3), UserId::new(0)));
    }

    #[test]
    fn transpose_is_involutive() {
        let csr = sample();
        assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn iter_edges_yields_all() {
        let csr = sample();
        assert_eq!(csr.iter_edges().count(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_panics_on_bad_vertex() {
        let _ = Csr::from_edges(2, &[(0, 5)]);
    }
}
