//! Structural statistics used to validate the synthetic dataset
//! replicas against the shapes the paper's datasets exhibit.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::EdgePair;

/// Summary statistics of an (undirected) degree sequence.
///
/// ```
/// use knn_graph::DegreeStats;
///
/// let stats = DegreeStats::from_undirected_edges(4, &[(0, 1), (1, 2), (1, 3)]);
/// assert_eq!(stats.max, 3);
/// assert_eq!(stats.mean, 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Gini coefficient of the degree sequence (0 = uniform,
    /// → 1 = concentrated on few hubs).
    pub gini: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
}

impl DegreeStats {
    /// Computes degree statistics for an undirected pair list over `n`
    /// vertices.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_undirected_edges(n: usize, edges: &[EdgePair]) -> Self {
        let mut deg = vec![0usize; n];
        for &(a, b) in edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        Self::from_degrees(&deg)
    }

    /// Computes statistics from an explicit degree sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn from_degrees(degrees: &[usize]) -> Self {
        assert!(!degrees.is_empty(), "degree sequence must be non-empty");
        let n = degrees.len();
        let sum: usize = degrees.iter().sum();
        let min = *degrees.iter().min().expect("non-empty");
        let max = *degrees.iter().max().expect("non-empty");
        let mean = sum as f64 / n as f64;
        let isolated = degrees.iter().filter(|&&d| d == 0).count();

        // Gini via the sorted-sequence formula.
        let mut sorted: Vec<usize> = degrees.to_vec();
        sorted.sort_unstable();
        let gini = if sum == 0 {
            0.0
        } else {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &d)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64)
                .sum();
            weighted / (n as f64 * sum as f64)
        };

        DegreeStats {
            min,
            max,
            mean,
            gini,
            isolated,
        }
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(n: usize, edges: &[EdgePair]) -> Vec<usize> {
    let mut deg = vec![0usize; n];
    for &(a, b) in edges {
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    let max = deg.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in deg {
        hist[d] += 1;
    }
    hist
}

/// Number of connected components of the undirected graph (union-find).
pub fn connected_components(n: usize, edges: &[EdgePair]) -> usize {
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut components = n;
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra as usize] = rb;
            components -= 1;
        }
    }
    components
}

/// Estimates the mean local clustering coefficient by sampling up to
/// `samples` vertices with degree ≥ 2. Deterministic in `seed`.
///
/// Returns 0.0 when no vertex has degree ≥ 2.
pub fn clustering_coefficient_estimate(
    n: usize,
    edges: &[EdgePair],
    samples: usize,
    seed: u64,
) -> f64 {
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    for &(a, b) in edges {
        adj[a as usize].insert(b);
        adj[b as usize].insert(a);
    }
    let eligible: Vec<usize> = (0..n).filter(|&v| adj[v].len() >= 2).collect();
    if eligible.is_empty() {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let take = samples.min(eligible.len());
    let mut total = 0.0f64;
    for _ in 0..take {
        let v = eligible[rng.random_range(0..eligible.len())];
        let nbrs: Vec<u32> = adj[v].iter().copied().collect();
        let d = nbrs.len();
        let mut closed = 0usize;
        for i in 0..d {
            for j in (i + 1)..d {
                if adj[nbrs[i] as usize].contains(&nbrs[j]) {
                    closed += 1;
                }
            }
        }
        total += closed as f64 / (d * (d - 1) / 2) as f64;
    }
    total / take as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_graph_stats() {
        // Star: center 0 connected to 1..=4.
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let s = DegreeStats::from_undirected_edges(5, &edges);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.mean, 8.0 / 5.0);
        assert_eq!(s.isolated, 0);
        assert!(s.gini > 0.0);
    }

    #[test]
    fn uniform_degrees_have_zero_gini() {
        let s = DegreeStats::from_degrees(&[3, 3, 3, 3]);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn empty_graph_has_zero_gini_and_all_isolated() {
        let s = DegreeStats::from_undirected_edges(4, &[]);
        assert_eq!(s.isolated, 4);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_counts_each_degree() {
        let edges = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let h = degree_histogram(5, &edges);
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn components_of_two_triangles() {
        let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
        assert_eq!(connected_components(6, &edges), 2);
        assert_eq!(connected_components(7, &edges), 3, "vertex 6 isolated");
    }

    #[test]
    fn clustering_of_a_triangle_is_one() {
        let edges = [(0, 1), (1, 2), (2, 0)];
        let c = clustering_coefficient_estimate(3, &edges, 100, 0);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_a_star_is_zero() {
        let edges = [(0, 1), (0, 2), (0, 3)];
        let c = clustering_coefficient_estimate(4, &edges, 100, 0);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn clustering_handles_no_eligible_vertices() {
        assert_eq!(clustering_coefficient_estimate(3, &[(0, 1)], 10, 0), 0.0);
    }
}
