//! Adjacency-list directed graph.

use crate::{EdgePair, GraphError, UserId};

/// A mutable directed graph over a fixed vertex set `0..n`.
///
/// Edges are stored as out-adjacency lists. Parallel edges are permitted
/// during construction and removed by [`DiGraph::sort_and_dedup`]; most
/// algorithms in this workspace call that once after building.
///
/// ```
/// use knn_graph::{DiGraph, UserId};
///
/// let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (0, 1)]).unwrap();
/// let mut g = g;
/// g.sort_and_dedup();
/// assert_eq!(g.num_edges(), 2);
/// assert!(g.has_edge(UserId::new(0), UserId::new(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiGraph {
    out: Vec<Vec<u32>>,
    num_edges: usize,
    sorted: bool,
}

impl DiGraph {
    /// Creates an empty graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out: vec![Vec::new(); n],
            num_edges: 0,
            sorted: true,
        }
    }

    /// Builds a graph from raw edge pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = EdgePair>,
    {
        let mut g = DiGraph::new(n);
        for (s, d) in edges {
            g.try_add_edge(UserId::new(s), UserId::new(d))?;
        }
        Ok(g)
    }

    /// Builds a graph from undirected pairs, inserting both directions.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if any endpoint is `>= n`.
    pub fn from_undirected_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = EdgePair>,
    {
        let mut g = DiGraph::new(n);
        for (a, b) in edges {
            g.try_add_edge(UserId::new(a), UserId::new(b))?;
            g.try_add_edge(UserId::new(b), UserId::new(a))?;
        }
        Ok(g)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges currently stored (including parallels
    /// until [`DiGraph::sort_and_dedup`] runs).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the directed edge `(s, d)`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range; use
    /// [`DiGraph::try_add_edge`] for a checked variant.
    pub fn add_edge(&mut self, s: UserId, d: UserId) {
        self.try_add_edge(s, d)
            .expect("edge endpoints must be in range");
    }

    /// Adds the directed edge `(s, d)`, validating both endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint is
    /// `>= num_vertices`.
    pub fn try_add_edge(&mut self, s: UserId, d: UserId) -> Result<(), GraphError> {
        let n = self.out.len();
        for v in [s, d] {
            if v.index() >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: n,
                });
            }
        }
        self.out[s.index()].push(d.raw());
        self.num_edges += 1;
        self.sorted = false;
        Ok(())
    }

    /// Out-neighbors of `v` as raw ids.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_neighbors(&self, v: UserId) -> &[u32] {
        &self.out[v.index()]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: UserId) -> usize {
        self.out[v.index()].len()
    }

    /// Whether the directed edge `(s, d)` exists.
    ///
    /// Uses binary search when the graph has been
    /// [sorted](DiGraph::sort_and_dedup), linear scan otherwise.
    pub fn has_edge(&self, s: UserId, d: UserId) -> bool {
        let list = &self.out[s.index()];
        if self.sorted {
            list.binary_search(&d.raw()).is_ok()
        } else {
            list.contains(&d.raw())
        }
    }

    /// Sorts every adjacency list and removes parallel edges.
    pub fn sort_and_dedup(&mut self) {
        let mut count = 0;
        for list in &mut self.out {
            list.sort_unstable();
            list.dedup();
            count += list.len();
        }
        self.num_edges = count;
        self.sorted = true;
    }

    /// Iterates over all directed edges in `(source, destination)` order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (UserId, UserId)> + '_ {
        self.out.iter().enumerate().flat_map(|(s, list)| {
            list.iter()
                .map(move |&d| (UserId::new(s as u32), UserId::new(d)))
        })
    }

    /// Computes the in-degree of every vertex in one pass.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.out.len()];
        for list in &self.out {
            for &d in list {
                deg[d as usize] += 1;
            }
        }
        deg
    }

    /// Builds the transpose graph (every edge reversed).
    pub fn transpose(&self) -> DiGraph {
        let mut t = DiGraph::new(self.num_vertices());
        for (s, d) in self.iter_edges() {
            t.add_edge(d, s);
        }
        if self.sorted {
            t.sort_and_dedup();
        }
        t
    }

    /// Returns the subgraph induced by `keep`, relabeling vertices to
    /// `0..keep.len()` in the order given.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if `keep` references a
    /// missing vertex.
    pub fn induced_subgraph(&self, keep: &[UserId]) -> Result<DiGraph, GraphError> {
        let n = self.num_vertices();
        let mut remap = vec![u32::MAX; n];
        for (new, &v) in keep.iter().enumerate() {
            if v.index() >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: n,
                });
            }
            remap[v.index()] = new as u32;
        }
        let mut sub = DiGraph::new(keep.len());
        for &v in keep {
            let new_s = remap[v.index()];
            for &d in self.out_neighbors(v) {
                let new_d = remap[d as usize];
                if new_d != u32::MAX {
                    sub.add_edge(UserId::new(new_s), UserId::new(new_d));
                }
            }
        }
        Ok(sub)
    }

    /// Collects all edges into a vector of raw pairs.
    pub fn to_edge_pairs(&self) -> Vec<EdgePair> {
        self.iter_edges().map(|(s, d)| (s.raw(), d.raw())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> DiGraph {
        DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn new_graph_is_empty() {
        let g = DiGraph::new(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.iter_edges().count(), 0);
    }

    #[test]
    fn add_edge_updates_degree_and_count() {
        let g = path_graph();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(UserId::new(1)), 1);
        assert_eq!(g.out_neighbors(UserId::new(0)), &[1]);
    }

    #[test]
    fn try_add_edge_rejects_out_of_range() {
        let mut g = DiGraph::new(2);
        let err = g.try_add_edge(UserId::new(0), UserId::new(5)).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn sort_and_dedup_removes_parallel_edges() {
        let mut g = DiGraph::from_edges(3, [(0, 2), (0, 1), (0, 2), (0, 2)]).unwrap();
        assert_eq!(g.num_edges(), 4);
        g.sort_and_dedup();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(UserId::new(0)), &[1, 2]);
    }

    #[test]
    fn has_edge_works_sorted_and_unsorted() {
        let mut g = DiGraph::from_edges(3, [(0, 2), (0, 1)]).unwrap();
        assert!(g.has_edge(UserId::new(0), UserId::new(2)));
        assert!(!g.has_edge(UserId::new(1), UserId::new(0)));
        g.sort_and_dedup();
        assert!(g.has_edge(UserId::new(0), UserId::new(2)));
        assert!(!g.has_edge(UserId::new(2), UserId::new(0)));
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = path_graph();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        for (s, d) in g.iter_edges() {
            assert!(t.has_edge(d, s));
        }
    }

    #[test]
    fn in_degrees_match_transpose_out_degrees() {
        let g = path_graph();
        let t = g.transpose();
        let deg = g.in_degrees();
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(deg[v as usize], t.out_degree(UserId::new(v)));
        }
    }

    #[test]
    fn from_undirected_inserts_both_directions() {
        let g = DiGraph::from_undirected_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(g.has_edge(UserId::new(0), UserId::new(1)));
        assert!(g.has_edge(UserId::new(1), UserId::new(0)));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn induced_subgraph_relabels_and_filters() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let sub = g
            .induced_subgraph(&[UserId::new(0), UserId::new(1), UserId::new(4)])
            .unwrap();
        assert_eq!(sub.num_vertices(), 3);
        // 0->1 kept (0->1), 0->4 kept (0->2); 1->2, 2->3, 3->4 dropped.
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(UserId::new(0), UserId::new(1)));
        assert!(sub.has_edge(UserId::new(0), UserId::new(2)));
    }

    #[test]
    fn induced_subgraph_rejects_bad_vertex() {
        let g = path_graph();
        assert!(g.induced_subgraph(&[UserId::new(99)]).is_err());
    }

    #[test]
    fn to_edge_pairs_round_trips() {
        let g = path_graph();
        let pairs = g.to_edge_pairs();
        let g2 = DiGraph::from_edges(4, pairs).unwrap();
        assert_eq!(g, g2);
    }
}
