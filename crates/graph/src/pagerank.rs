//! PageRank over [`Csr`] graphs.
//!
//! Used to characterize the dataset replicas (hub mass concentration is
//! the structural property behind the Table-1 heuristic savings) and as
//! a general-purpose centrality tool for workload analysis.

use crate::{Csr, UserId};

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d` (standard 0.85).
    pub damping: f64,
    /// Stop when the L1 change between sweeps drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 100,
        }
    }
}

/// Result of a PageRank computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRank {
    scores: Vec<f64>,
    iterations: usize,
    converged: bool,
}

impl PageRank {
    /// The score vector (sums to 1 over non-empty graphs).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The score of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn score(&self, v: UserId) -> f64 {
        self.scores[v.index()]
    }

    /// Power-iteration sweeps performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the tolerance was reached (vs. the iteration cap).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Vertices sorted by descending score (ties by ascending id).
    pub fn ranking(&self) -> Vec<UserId> {
        let mut order: Vec<u32> = (0..self.scores.len() as u32).collect();
        order.sort_by(|&a, &b| {
            self.scores[b as usize]
                .total_cmp(&self.scores[a as usize])
                .then(a.cmp(&b))
        });
        order.into_iter().map(UserId::new).collect()
    }

    /// Total score mass held by the `k` highest-ranked vertices — the
    /// hub-concentration statistic the replica calibration targets.
    pub fn top_mass(&self, k: usize) -> f64 {
        let mut sorted: Vec<f64> = self.scores.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        sorted.iter().take(k).sum()
    }
}

/// Computes PageRank by power iteration with uniform teleport and
/// dangling-mass redistribution.
///
/// # Panics
///
/// Panics if `config.damping ∉ [0, 1)` or `config.tolerance <= 0`.
///
/// ```
/// use knn_graph::pagerank::{pagerank, PageRankConfig};
/// use knn_graph::{Csr, UserId};
///
/// // A star: everyone points at vertex 0.
/// let csr = Csr::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
/// let pr = pagerank(&csr, PageRankConfig::default());
/// assert_eq!(pr.ranking()[0], UserId::new(0));
/// assert!((pr.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn pagerank(graph: &Csr, config: PageRankConfig) -> PageRank {
    let PageRankConfig {
        damping,
        tolerance,
        max_iterations,
    } = config;
    assert!(
        (0.0..1.0).contains(&damping),
        "damping must be in [0, 1), got {damping}"
    );
    assert!(tolerance > 0.0, "tolerance must be positive");

    let n = graph.num_vertices();
    if n == 0 {
        return PageRank {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
        };
    }
    let uniform = 1.0 / n as f64;
    let mut scores = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..max_iterations {
        iterations += 1;
        next.fill(0.0);
        let mut dangling = 0.0f64;
        for v in 0..n as u32 {
            let targets = graph.neighbors(UserId::new(v));
            let mass = scores[v as usize];
            if targets.is_empty() {
                dangling += mass;
            } else {
                let share = mass / targets.len() as f64;
                for &t in targets {
                    next[t as usize] += share;
                }
            }
        }
        let teleport = (1.0 - damping) * uniform + damping * dangling * uniform;
        let mut delta = 0.0f64;
        for v in 0..n {
            let value = teleport + damping * next[v];
            delta += (value - scores[v]).abs();
            scores[v] = value;
        }
        if delta < tolerance {
            converged = true;
            break;
        }
    }
    PageRank {
        scores,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    fn pr(csr: &Csr) -> PageRank {
        pagerank(csr, PageRankConfig::default())
    }

    #[test]
    fn scores_sum_to_one() {
        let csr = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let result = pr(&csr);
        assert!((result.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(result.converged());
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        // Directed 4-cycle: perfect symmetry ⇒ uniform scores.
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let result = pr(&csr);
        for &s in result.scores() {
            assert!((s - 0.25).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn star_center_dominates() {
        let csr = Csr::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let result = pr(&csr);
        assert_eq!(result.ranking()[0], UserId::new(0));
        assert!(result.score(UserId::new(0)) > 0.5);
        // Leaves tie; ranking breaks by id.
        assert_eq!(result.ranking()[1], UserId::new(1));
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // 0 → 1, 1 dangles: mass must not leak.
        let csr = Csr::from_edges(2, &[(0, 1)]);
        let result = pr(&csr);
        assert!((result.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(result.score(UserId::new(1)) > result.score(UserId::new(0)));
    }

    #[test]
    fn empty_graph_is_fine() {
        let result = pr(&Csr::from_edges(0, &[]));
        assert!(result.scores().is_empty());
        assert!(result.converged());
    }

    #[test]
    fn top_mass_measures_hub_concentration() {
        use crate::generators::{core_periphery, erdos_renyi, CorePeripheryConfig};
        let n = 500;
        let hubby = core_periphery(
            CorePeripheryConfig::new(n, 2500, 3)
                .with_core_fraction(0.05)
                .with_p_periphery(0.02),
        );
        let flat = erdos_renyi(n, 2500, 3);
        let rank = |edges: &[(u32, u32)]| {
            let g = DiGraph::from_undirected_edges(n, edges.to_vec()).unwrap();
            pr(&Csr::from_digraph(&g)).top_mass(n / 20)
        };
        let (hub_mass, flat_mass) = (rank(&hubby), rank(&flat));
        assert!(
            hub_mass > 2.0 * flat_mass,
            "core-periphery top-5% mass {hub_mass:.3} vs ER {flat_mass:.3}"
        );
    }

    #[test]
    fn respects_iteration_cap() {
        // Asymmetric graph (a cycle converges in one sweep — uniform is
        // its exact fixed point — so it cannot exercise the cap).
        let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let result = pagerank(
            &csr,
            PageRankConfig {
                damping: 0.85,
                tolerance: 1e-30,
                max_iterations: 2,
            },
        );
        assert_eq!(result.iterations(), 2);
        assert!(!result.converged());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let csr = Csr::from_edges(2, &[(0, 1)]);
        let _ = pagerank(
            &csr,
            PageRankConfig {
                damping: 1.0,
                tolerance: 1e-9,
                max_iterations: 5,
            },
        );
    }
}
