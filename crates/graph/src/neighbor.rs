//! Scored neighbor entries and their deterministic ordering.

use std::cmp::Ordering;

use crate::UserId;

/// A candidate or accepted KNN neighbor: a target user plus the
/// similarity score of the edge pointing at it.
///
/// `Neighbor` carries the workspace-wide deterministic ordering used for
/// all top-K decisions: **higher similarity first, then lower id**. Ties
/// therefore never depend on insertion or traversal order, which is what
/// makes the out-of-core engine's results independent of the PI-graph
/// traversal heuristic and of the thread count.
///
/// ```
/// use knn_graph::{Neighbor, UserId};
///
/// let a = Neighbor::new(UserId::new(3), 0.9);
/// let b = Neighbor::new(UserId::new(1), 0.9);
/// let c = Neighbor::new(UserId::new(0), 0.2);
/// // a and b tie on similarity; the smaller id wins.
/// assert!(b.beats(&a));
/// assert!(a.beats(&c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The neighbor's user id.
    pub id: UserId,
    /// Similarity score of the edge (finite).
    pub sim: f32,
}

impl Neighbor {
    /// Sentinel similarity for neighbors that have never been scored
    /// (e.g. the random initial graph `G(0)`); any real score beats it.
    pub const UNSCORED: f32 = f32::MIN;

    /// Creates a scored neighbor.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `sim` is not finite; the engine
    /// validates similarities at its boundaries.
    pub fn new(id: UserId, sim: f32) -> Self {
        debug_assert!(sim.is_finite(), "similarity must be finite, got {sim}");
        Neighbor { id, sim }
    }

    /// Creates a placeholder neighbor with the [`UNSCORED`] sentinel
    /// similarity.
    ///
    /// [`UNSCORED`]: Neighbor::UNSCORED
    pub fn unscored(id: UserId) -> Self {
        Neighbor {
            id,
            sim: Self::UNSCORED,
        }
    }

    /// Whether this entry has never received a real score.
    pub fn is_unscored(&self) -> bool {
        self.sim == Self::UNSCORED
    }

    /// Whether `self` ranks strictly ahead of `other` under the
    /// deterministic best-first order (higher sim, then lower id).
    pub fn beats(&self, other: &Neighbor) -> bool {
        cmp_best_first(self, other) == Ordering::Less
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    /// Best-first total order: higher similarity sorts **earlier**
    /// (i.e. compares as `Less`), ties broken by ascending id.
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_best_first(self, other)
    }
}

/// The workspace-wide best-first comparison: descending similarity,
/// ascending id. Sorting a slice with this order puts the best neighbor
/// at index 0.
pub fn cmp_best_first(a: &Neighbor, b: &Neighbor) -> Ordering {
    b.sim.total_cmp(&a.sim).then_with(|| a.id.cmp(&b.id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_similarity_sorts_first() {
        let mut v = [
            Neighbor::new(UserId::new(0), 0.1),
            Neighbor::new(UserId::new(1), 0.9),
            Neighbor::new(UserId::new(2), 0.5),
        ];
        v.sort();
        let ids: Vec<u32> = v.iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_ascending_id() {
        let mut v = [
            Neighbor::new(UserId::new(9), 0.5),
            Neighbor::new(UserId::new(3), 0.5),
            Neighbor::new(UserId::new(7), 0.5),
        ];
        v.sort();
        let ids: Vec<u32> = v.iter().map(|n| n.id.raw()).collect();
        assert_eq!(ids, vec![3, 7, 9]);
    }

    #[test]
    fn beats_is_strict() {
        let a = Neighbor::new(UserId::new(1), 0.5);
        assert!(!a.beats(&a));
        let b = Neighbor::new(UserId::new(2), 0.5);
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
    }

    #[test]
    fn unscored_loses_to_any_real_score() {
        let u = Neighbor::unscored(UserId::new(0));
        assert!(u.is_unscored());
        let worst_real = Neighbor::new(UserId::new(1), -1.0e30);
        assert!(worst_real.beats(&u));
    }

    #[test]
    fn negative_zero_and_zero_order_consistently() {
        // total_cmp distinguishes -0.0 < 0.0; the order must stay total.
        let a = Neighbor::new(UserId::new(0), 0.0);
        let b = Neighbor::new(UserId::new(1), -0.0);
        assert!(a.beats(&b));
    }

    #[test]
    fn ord_agrees_with_partial_ord() {
        let a = Neighbor::new(UserId::new(0), 0.3);
        let b = Neighbor::new(UserId::new(1), 0.7);
        assert_eq!(a.partial_cmp(&b), Some(a.cmp(&b)));
    }
}
