//! Property-based tests for the graph substrate.

use knn_graph::generators::{
    chung_lu, erdos_renyi, erdos_renyi_directed, validate_undirected, watts_strogatz, ChungLuConfig,
};
use knn_graph::neighbor::cmp_best_first;
use knn_graph::{Csr, DiGraph, KnnGraph, Neighbor, UserId};
use proptest::prelude::*;

/// Strategy producing a small directed graph as (n, edges).
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..30).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..80))
    })
}

proptest! {
    #[test]
    fn digraph_transpose_is_involutive((n, edges) in small_digraph()) {
        let mut g = DiGraph::from_edges(n, edges).unwrap();
        g.sort_and_dedup();
        let tt = g.transpose().transpose();
        prop_assert_eq!(g, tt);
    }

    #[test]
    fn digraph_edge_count_matches_iterator((n, edges) in small_digraph()) {
        let mut g = DiGraph::from_edges(n, edges).unwrap();
        g.sort_and_dedup();
        prop_assert_eq!(g.num_edges(), g.iter_edges().count());
    }

    #[test]
    fn csr_agrees_with_digraph((n, edges) in small_digraph()) {
        let mut g = DiGraph::from_edges(n, edges).unwrap();
        g.sort_and_dedup();
        let csr = Csr::from_digraph(&g);
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        for v in 0..n as u32 {
            let u = UserId::new(v);
            prop_assert_eq!(csr.neighbors(u), g.out_neighbors(u));
        }
    }

    #[test]
    fn in_degrees_sum_to_edge_count((n, edges) in small_digraph()) {
        let mut g = DiGraph::from_edges(n, edges).unwrap();
        g.sort_and_dedup();
        let total: usize = g.in_degrees().iter().sum();
        prop_assert_eq!(total, g.num_edges());
    }

    #[test]
    fn knn_insert_never_violates_invariants(
        k in 1usize..6,
        cands in proptest::collection::vec((0u32..20, 0u32..20, -1.0f32..1.0), 0..200),
    ) {
        let mut g = KnnGraph::new(20, k);
        for (v, t, sim) in cands {
            if v == t { continue; }
            g.insert(UserId::new(v), Neighbor::new(UserId::new(t), sim));
        }
        for v in 0..20u32 {
            let u = UserId::new(v);
            let list = g.neighbors(u);
            prop_assert!(list.len() <= k);
            prop_assert!(list.iter().all(|n| n.id != u));
            // Sorted best-first.
            prop_assert!(list.windows(2).all(|w| cmp_best_first(&w[0], &w[1]) != std::cmp::Ordering::Greater));
            // No duplicate targets.
            let mut ids: Vec<u32> = list.iter().map(|n| n.id.raw()).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before);
        }
    }

    #[test]
    fn knn_insert_matches_sort_truncate_semantics(
        k in 1usize..5,
        cands in proptest::collection::vec((1u32..15, -1.0f32..1.0), 1..60),
    ) {
        // All candidates offered to vertex 0; reference = dedup-by-best
        // then sort best-first then truncate to k.
        let v = UserId::new(0);
        let mut g = KnnGraph::new(15, k);
        for &(t, sim) in &cands {
            g.insert(v, Neighbor::new(UserId::new(t), sim));
        }
        use std::collections::HashMap;
        let mut best: HashMap<u32, Neighbor> = HashMap::new();
        for &(t, sim) in &cands {
            let nb = Neighbor::new(UserId::new(t), sim);
            best.entry(t)
                .and_modify(|cur| {
                    if nb.beats(cur) {
                        *cur = nb;
                    }
                })
                .or_insert(nb);
        }
        let mut reference: Vec<Neighbor> = best.into_values().collect();
        reference.sort_by(cmp_best_first);
        reference.truncate(k);
        prop_assert_eq!(g.neighbors(v), reference.as_slice());
    }

    #[test]
    fn er_generator_contract(n in 2usize..40, seed in 0u64..50) {
        let max = n * (n - 1) / 2;
        let m = max / 2;
        let edges = erdos_renyi(n, m, seed);
        prop_assert_eq!(edges.len(), m);
        prop_assert!(validate_undirected(n, &edges));
    }

    #[test]
    fn er_directed_contract(n in 2usize..30, seed in 0u64..50) {
        let m = n; // sparse
        let edges = erdos_renyi_directed(n, m, seed);
        prop_assert_eq!(edges.len(), m);
        prop_assert!(edges.iter().all(|&(s, d)| s != d && (s as usize) < n && (d as usize) < n));
    }

    #[test]
    fn chung_lu_contract(n in 10usize..100, seed in 0u64..20) {
        let m = n * 2;
        let edges = chung_lu(ChungLuConfig::new(n, m, seed));
        prop_assert_eq!(edges.len(), m);
        prop_assert!(validate_undirected(n, &edges));
    }

    #[test]
    fn watts_strogatz_contract(n in 10usize..80, beta in 0.0f64..1.0, seed in 0u64..20) {
        let k = 2;
        let edges = watts_strogatz(n, k, beta, seed);
        prop_assert_eq!(edges.len(), n * k);
        prop_assert!(validate_undirected(n, &edges));
    }

    #[test]
    fn random_init_deterministic_and_valid(n in 2usize..40, k in 1usize..8, seed in 0u64..20) {
        let a = KnnGraph::random_init(n, k, seed);
        let b = KnnGraph::random_init(n, k, seed);
        prop_assert_eq!(&a, &b);
        let expect = k.min(n - 1);
        for v in 0..n as u32 {
            prop_assert_eq!(a.neighbors(UserId::new(v)).len(), expect);
        }
    }

    #[test]
    fn edge_change_fraction_bounds((n, edges) in small_digraph(), k in 1usize..4, seed in 0u64..5) {
        let _ = edges;
        let a = KnnGraph::random_init(n, k, seed);
        let b = KnnGraph::random_init(n, k, seed + 1);
        let f = a.edge_change_fraction(&b);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert_eq!(a.edge_change_fraction(&a), 0.0);
    }
}
