//! Guards the headline reproduction: the Table-1 simulation on the
//! calibrated replicas must keep the paper's shape. Uses the smallest
//! dataset so the check stays fast in debug builds; the full six-row
//! table is exercised by the `table1` bench binary.

use knn_core::traversal::{simulate_schedule_ops, Heuristic};
use knn_core::PiGraph;
use knn_datasets::Table1Dataset;

fn ops(pi: &PiGraph, h: Heuristic) -> u64 {
    simulate_schedule_ops(&h.schedule(pi), 2).total_ops()
}

#[test]
fn general_relativity_replica_keeps_the_paper_shape() {
    let ds = Table1Dataset::GeneralRelativity;
    let row = ds.paper_row();
    let edges = ds.generate(42);
    let pi = PiGraph::from_network_shape(row.nodes, &edges);

    let seq = ops(&pi, Heuristic::Sequential);
    let hi = ops(&pi, Heuristic::DegreeHighLow);
    let lo = ops(&pi, Heuristic::DegreeLowHigh);

    // Absolute magnitude: within 15% of the paper's sequential count
    // (the 2|E| term is matched exactly; pivot activity is approximate).
    let rel = (seq as f64 - row.seq_ops as f64).abs() / row.seq_ops as f64;
    assert!(
        rel < 0.15,
        "sequential ops {seq} vs paper {} ({rel:.3})",
        row.seq_ops
    );

    // Ordering: degree-based beats sequential, as in every paper row.
    assert!(hi < seq, "high-low {hi} must beat sequential {seq}");
    assert!(lo < seq, "low-high {lo} must beat sequential {seq}");

    // Savings magnitude: inside the paper's "5-15%" band (±few points).
    let saving = (seq - lo) as f64 / seq as f64;
    assert!(
        (0.03..=0.20).contains(&saving),
        "low-high saving {saving:.3} outside the plausible band"
    );
}

#[test]
fn lower_bound_of_the_op_model_holds_on_replicas() {
    // Any 2-slot schedule costs at least 2 ops per unordered pair
    // minus chaining reuse, and at least one load+unload per partition
    // that appears; the sequential pivot model lands near
    // 2·pairs + 2·active-pivots. Sanity-check the bound.
    let ds = Table1Dataset::GeneralRelativity;
    let row = ds.paper_row();
    let pi = PiGraph::from_network_shape(row.nodes, &ds.generate(7));
    let seq = ops(&pi, Heuristic::Sequential);
    let pairs = pi.num_pairs() as u64;
    assert!(
        seq >= 2 * pairs,
        "ops {seq} below the 2·pairs floor {}",
        2 * pairs
    );
    assert!(
        seq <= 2 * pairs + 2 * row.nodes as u64,
        "ops {seq} above the pivot ceiling"
    );
}

#[test]
fn extension_heuristics_never_lose_to_sequential_on_replicas() {
    let ds = Table1Dataset::GeneralRelativity;
    let row = ds.paper_row();
    let pi = PiGraph::from_network_shape(row.nodes, &ds.generate(11));
    let seq = ops(&pi, Heuristic::Sequential);
    for h in [Heuristic::GreedyChain, Heuristic::WeightAware] {
        assert!(ops(&pi, h) <= seq, "{h} lost to sequential");
    }
}

#[test]
fn replicas_concentrate_pagerank_mass_like_core_periphery_networks() {
    // The replica calibration relies on a small core covering most
    // edges; PageRank top-mass is an independent probe of that
    // structure. An equally-sized Erdős–Rényi graph must concentrate
    // far less mass in its top 5% of vertices.
    use knn_graph::generators::erdos_renyi;
    use knn_graph::pagerank::{pagerank, PageRankConfig};
    use knn_graph::{Csr, DiGraph};

    let ds = Table1Dataset::GeneralRelativity;
    let row = ds.paper_row();
    let top_mass = |edges: &[(u32, u32)]| {
        let g = DiGraph::from_undirected_edges(row.nodes, edges.to_vec()).unwrap();
        pagerank(&Csr::from_digraph(&g), PageRankConfig::default()).top_mass(row.nodes / 20)
    };
    let replica = top_mass(&ds.generate(42));
    let er = top_mass(&erdos_renyi(row.nodes, row.edges, 42));
    assert!(
        replica > 1.5 * er,
        "replica top-5% PageRank mass {replica:.3} vs ER {er:.3}"
    );
}
