//! End-to-end workload presets: a profile set plus engine-ready
//! parameters, used by the benches and examples.

use knn_sim::generators::{clustered_profiles, zipf_profiles, ClusteredConfig, ZipfConfig};
use knn_sim::{Measure, ProfileStore};

/// The kind of synthetic profile workload.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WorkloadConfig {
    /// Clustered rating vectors (recommender-style; cosine works well).
    ClusteredRatings {
        /// Number of planted clusters.
        clusters: usize,
        /// In-cluster ratings per user.
        ratings: usize,
    },
    /// Zipf-popularity item sets (tag-style; Jaccard works well).
    ZipfSets {
        /// Item-universe size.
        items: usize,
        /// Items per user.
        per_user: usize,
        /// Zipf skew.
        skew: f64,
    },
}

/// A ready-to-run workload: profiles plus the natural similarity
/// measure for them.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Descriptive name for reports.
    pub name: String,
    /// The generated profiles.
    pub profiles: ProfileStore,
    /// The measure the workload is designed for.
    pub measure: Measure,
}

impl WorkloadConfig {
    /// The default recommender-style workload.
    pub fn recommender() -> Self {
        WorkloadConfig::ClusteredRatings {
            clusters: 16,
            ratings: 25,
        }
    }

    /// The default tag-style workload.
    pub fn tags() -> Self {
        WorkloadConfig::ZipfSets {
            items: 20_000,
            per_user: 25,
            skew: 1.0,
        }
    }

    /// Instantiates the workload for `num_users` users.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero clusters/items, more
    /// items per user than the universe holds).
    pub fn build(&self, num_users: usize, seed: u64) -> Workload {
        match *self {
            WorkloadConfig::ClusteredRatings { clusters, ratings } => {
                let (profiles, _) = clustered_profiles(
                    ClusteredConfig::new(num_users, seed)
                        .with_clusters(clusters)
                        .with_ratings(ratings, 4),
                );
                Workload {
                    name: format!("clustered-ratings(c={clusters}, r={ratings})"),
                    profiles,
                    measure: Measure::Cosine,
                }
            }
            WorkloadConfig::ZipfSets {
                items,
                per_user,
                skew,
            } => {
                let profiles = zipf_profiles(ZipfConfig {
                    num_users,
                    num_items: items,
                    items_per_user: per_user,
                    skew,
                    seed,
                });
                Workload {
                    name: format!("zipf-sets(i={items}, p={per_user}, s={skew})"),
                    profiles,
                    measure: Measure::Jaccard,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommender_workload_builds() {
        let w = WorkloadConfig::recommender().build(100, 1);
        assert_eq!(w.profiles.num_users(), 100);
        assert_eq!(w.measure, Measure::Cosine);
        assert!(w.name.contains("clustered"));
    }

    #[test]
    fn tags_workload_builds() {
        let w = WorkloadConfig::tags().build(50, 2);
        assert_eq!(w.profiles.num_users(), 50);
        assert_eq!(w.measure, Measure::Jaccard);
        assert!(w.profiles.iter().all(|(_, p)| p.len() == 25));
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = WorkloadConfig::recommender().build(30, 9);
        let b = WorkloadConfig::recommender().build(30, 9);
        assert_eq!(a, b);
    }
}
