//! End-to-end workload presets: a profile set plus engine-ready
//! parameters, used by the benches and examples.

use knn_sim::generators::{
    clustered_bipartite, clustered_profiles, zipf_profiles, BipartiteConfig, ClusteredConfig,
    ZipfConfig,
};
use knn_sim::{Measure, ProfileStore};

/// The kind of synthetic profile workload.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WorkloadConfig {
    /// Clustered rating vectors (recommender-style; cosine works well).
    ClusteredRatings {
        /// Number of planted clusters.
        clusters: usize,
        /// In-cluster ratings per user.
        ratings: usize,
    },
    /// Zipf-popularity item sets (tag-style; Jaccard works well).
    ZipfSets {
        /// Item-universe size.
        items: usize,
        /// Items per user.
        per_user: usize,
        /// Zipf skew.
        skew: f64,
    },
    /// User–item bipartite ratings with planted user communities,
    /// controllable cross-community overlap, and a Zipf noise tail —
    /// the workload that exercises locality-aware placement
    /// (`PartitionerKind::Cluster` / cluster-seeded `G(0)`).
    ClusteredBipartite {
        /// Number of planted user communities.
        clusters: usize,
        /// Fraction of each user's ratings drawn from the neighboring
        /// community's item block (`0.0..=0.5`).
        overlap: f64,
        /// Zipf skew of the shared noise-item tail.
        noise_skew: f64,
    },
}

/// A ready-to-run workload: profiles plus the natural similarity
/// measure for them.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Descriptive name for reports.
    pub name: String,
    /// The generated profiles.
    pub profiles: ProfileStore,
    /// The measure the workload is designed for.
    pub measure: Measure,
}

impl WorkloadConfig {
    /// The default recommender-style workload.
    pub fn recommender() -> Self {
        WorkloadConfig::ClusteredRatings {
            clusters: 16,
            ratings: 25,
        }
    }

    /// The default tag-style workload.
    pub fn tags() -> Self {
        WorkloadConfig::ZipfSets {
            items: 20_000,
            per_user: 25,
            skew: 1.0,
        }
    }

    /// The default community-structured bipartite workload (the
    /// locality benchmark input).
    pub fn communities() -> Self {
        WorkloadConfig::ClusteredBipartite {
            clusters: 8,
            overlap: 0.1,
            noise_skew: 1.0,
        }
    }

    /// Instantiates the workload for `num_users` users.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero clusters/items, more
    /// items per user than the universe holds).
    pub fn build(&self, num_users: usize, seed: u64) -> Workload {
        match *self {
            WorkloadConfig::ClusteredRatings { clusters, ratings } => {
                let (profiles, _) = clustered_profiles(
                    ClusteredConfig::new(num_users, seed)
                        .with_clusters(clusters)
                        .with_ratings(ratings, 4),
                );
                Workload {
                    name: format!("clustered-ratings(c={clusters}, r={ratings})"),
                    profiles,
                    measure: Measure::Cosine,
                }
            }
            WorkloadConfig::ZipfSets {
                items,
                per_user,
                skew,
            } => {
                let profiles = zipf_profiles(ZipfConfig {
                    num_users,
                    num_items: items,
                    items_per_user: per_user,
                    skew,
                    seed,
                });
                Workload {
                    name: format!("zipf-sets(i={items}, p={per_user}, s={skew})"),
                    profiles,
                    measure: Measure::Jaccard,
                }
            }
            WorkloadConfig::ClusteredBipartite {
                clusters,
                overlap,
                noise_skew,
            } => {
                let (profiles, _) = clustered_bipartite(
                    BipartiteConfig::new(num_users, seed)
                        .with_clusters(clusters)
                        .with_overlap(overlap)
                        .with_noise(4, noise_skew),
                );
                Workload {
                    name: format!("clustered-bipartite(c={clusters}, o={overlap}, s={noise_skew})"),
                    profiles,
                    measure: Measure::Cosine,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommender_workload_builds() {
        let w = WorkloadConfig::recommender().build(100, 1);
        assert_eq!(w.profiles.num_users(), 100);
        assert_eq!(w.measure, Measure::Cosine);
        assert!(w.name.contains("clustered"));
    }

    #[test]
    fn tags_workload_builds() {
        let w = WorkloadConfig::tags().build(50, 2);
        assert_eq!(w.profiles.num_users(), 50);
        assert_eq!(w.measure, Measure::Jaccard);
        assert!(w.profiles.iter().all(|(_, p)| p.len() == 25));
    }

    #[test]
    fn workloads_are_deterministic() {
        for config in [WorkloadConfig::recommender(), WorkloadConfig::communities()] {
            let a = config.build(30, 9);
            let b = config.build(30, 9);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn communities_workload_builds() {
        let w = WorkloadConfig::communities().build(64, 3);
        assert_eq!(w.profiles.num_users(), 64);
        assert_eq!(w.measure, Measure::Cosine);
        assert!(w.name.contains("bipartite"));
    }

    /// Every measure must produce finite scores on the bipartite
    /// workload — the smoke check that the new generator plays with the
    /// whole similarity surface, not just cosine.
    #[test]
    fn communities_workload_smokes_every_measure() {
        use knn_sim::Similarity;
        let w = WorkloadConfig::communities().build(40, 11);
        for measure in Measure::ALL {
            let mut nontrivial = 0usize;
            for a in 0..10u32 {
                for b in (a + 1)..10 {
                    let s = measure.score(
                        w.profiles.get(knn_graph::UserId::new(a)),
                        w.profiles.get(knn_graph::UserId::new(b)),
                    );
                    assert!(s.is_finite(), "{measure} produced {s}");
                    if s != 0.0 {
                        nontrivial += 1;
                    }
                }
            }
            assert!(nontrivial > 0, "{measure} flat-zero on the workload");
        }
    }
}
