//! Synthetic replicas of the paper's evaluation datasets and workload
//! presets.
//!
//! The Middleware'14 paper evaluates its PI-graph traversal heuristics
//! (Table 1) on six SNAP networks. This environment has no network
//! access, so [`Table1Dataset`] regenerates each as a seeded synthetic
//! graph matched on the paper's **exact node and edge counts** with a
//! calibrated core–periphery degree structure — the two properties the
//! Table-1 metric actually depends on (total pair count and how small a
//! vertex set covers all edges). Per-dataset core parameters were
//! calibrated so that the sequential-heuristic operation count and the
//! degree-heuristic savings land in the paper's reported ranges. The
//! substitution is documented in DESIGN.md §5.
//!
//! ```
//! use knn_datasets::Table1Dataset;
//!
//! let wiki = Table1Dataset::WikiVote;
//! let edges = wiki.generate(42);
//! assert_eq!(edges.len(), wiki.paper_edges());
//! ```

pub mod workloads;

pub use workloads::{Workload, WorkloadConfig};

use knn_graph::generators::{core_periphery, CorePeripheryConfig};
use knn_graph::EdgePair;

/// The six datasets of the paper's Table 1, with the node/edge counts
/// and the Seq / High-Low / Low-High load-unload operation counts the
/// paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Table1Dataset {
    /// Wikipedia adminship votes (SNAP `wiki-Vote`).
    WikiVote,
    /// General Relativity collaboration (SNAP `ca-GrQc`).
    GeneralRelativity,
    /// High Energy Physics collaboration (SNAP `ca-HepPh`).
    HighEnergy,
    /// Astrophysics collaboration (SNAP `ca-AstroPh`).
    AstroPhysics,
    /// Enron e-mail network (SNAP `email-Enron`).
    Email,
    /// Gnutella peer-to-peer snapshot (SNAP `p2p-Gnutella24`).
    Gnutella,
}

/// The paper's Table-1 row for one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Dataset label as printed in the paper.
    pub label: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Edge count (unique pairs).
    pub edges: usize,
    /// Load/unload operations, sequential heuristic.
    pub seq_ops: u64,
    /// Load/unload operations, degree high→low heuristic.
    pub high_low_ops: u64,
    /// Load/unload operations, degree low→high heuristic.
    pub low_high_ops: u64,
}

impl Table1Dataset {
    /// All six datasets in the paper's row order.
    pub const ALL: [Table1Dataset; 6] = [
        Table1Dataset::WikiVote,
        Table1Dataset::GeneralRelativity,
        Table1Dataset::HighEnergy,
        Table1Dataset::AstroPhysics,
        Table1Dataset::Email,
        Table1Dataset::Gnutella,
    ];

    /// The numbers the paper reports for this dataset.
    pub fn paper_row(&self) -> PaperRow {
        match self {
            Table1Dataset::WikiVote => PaperRow {
                label: "Wiki-Vote",
                nodes: 7115,
                edges: 100_762,
                seq_ops: 211_856,
                high_low_ops: 204_706,
                low_high_ops: 202_290,
            },
            Table1Dataset::GeneralRelativity => PaperRow {
                label: "Gen. Rel.",
                nodes: 5241,
                edges: 14_484,
                seq_ops: 34_506,
                high_low_ops: 32_220,
                low_high_ops: 31_256,
            },
            Table1Dataset::HighEnergy => PaperRow {
                label: "High Ener.",
                nodes: 12_006,
                edges: 118_489,
                seq_ops: 252_754,
                high_low_ops: 242_132,
                low_high_ops: 240_872,
            },
            Table1Dataset::AstroPhysics => PaperRow {
                label: "AstroPhy.",
                nodes: 18_771,
                edges: 198_050,
                seq_ops: 420_442,
                high_low_ops: 400_050,
                low_high_ops: 401_770,
            },
            Table1Dataset::Email => PaperRow {
                label: "E-mail",
                nodes: 36_692,
                edges: 183_831,
                seq_ops: 399_604,
                high_low_ops: 382_928,
                low_high_ops: 379_312,
            },
            Table1Dataset::Gnutella => PaperRow {
                label: "Gnutella",
                nodes: 26_518,
                edges: 65_369,
                seq_ops: 157_040,
                high_low_ops: 144_072,
                low_high_ops: 132_710,
            },
        }
    }

    /// Paper's node count.
    pub fn paper_nodes(&self) -> usize {
        self.paper_row().nodes
    }

    /// Paper's edge count (unique pairs).
    pub fn paper_edges(&self) -> usize {
        self.paper_row().edges
    }

    /// The replica's calibrated core–periphery parameters
    /// `(core_fraction, p_periphery, core_alpha)`.
    ///
    /// The strongly bipartite networks (Wiki-Vote's voters→candidates,
    /// Gnutella's leaves→ultrapeers) get small cores with few
    /// periphery–periphery edges; the collaboration and e-mail
    /// networks get larger, flatter cores. Calibrated so that both the
    /// sequential operation count and the degree-heuristic savings of
    /// the Table-1 simulation land in the paper's reported ranges
    /// (see EXPERIMENTS.md, experiment T1).
    fn shape(&self) -> (f64, f64, f64) {
        match self {
            Table1Dataset::WikiVote => (0.20, 0.02, 0.6),
            Table1Dataset::GeneralRelativity => (0.30, 0.20, 0.4),
            Table1Dataset::HighEnergy => (0.25, 0.05, 0.6),
            Table1Dataset::AstroPhysics => (0.12, 0.05, 0.6),
            Table1Dataset::Email => (0.35, 0.30, 0.5),
            Table1Dataset::Gnutella => (0.10, 0.08, 0.3),
        }
    }

    /// Generates the synthetic replica: exactly
    /// [`paper_nodes`](Self::paper_nodes) vertices and
    /// [`paper_edges`](Self::paper_edges) unique undirected pairs,
    /// heavy-tailed with a calibrated core, deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> Vec<EdgePair> {
        let row = self.paper_row();
        let (core_fraction, p_periphery, core_alpha) = self.shape();
        core_periphery(
            CorePeripheryConfig::new(row.nodes, row.edges, seed)
                .with_core_fraction(core_fraction)
                .with_p_periphery(p_periphery)
                .with_core_alpha(core_alpha),
        )
    }
}

impl std::fmt::Display for Table1Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_row().label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::generators::validate_undirected;
    use knn_graph::DegreeStats;

    #[test]
    fn replicas_match_paper_counts_exactly() {
        for ds in Table1Dataset::ALL {
            let row = ds.paper_row();
            let edges = ds.generate(1);
            assert_eq!(edges.len(), row.edges, "{ds} edge count");
            assert!(validate_undirected(row.nodes, &edges), "{ds} validity");
        }
    }

    #[test]
    fn replicas_are_deterministic() {
        let a = Table1Dataset::GeneralRelativity.generate(7);
        let b = Table1Dataset::GeneralRelativity.generate(7);
        let c = Table1Dataset::GeneralRelativity.generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn replicas_are_heavy_tailed() {
        for ds in [Table1Dataset::WikiVote, Table1Dataset::Email] {
            let row = ds.paper_row();
            let edges = ds.generate(3);
            let stats = DegreeStats::from_undirected_edges(row.nodes, &edges);
            assert!(
                stats.max as f64 > 8.0 * stats.mean,
                "{ds}: max {} vs mean {}",
                stats.max,
                stats.mean
            );
            assert!(stats.gini > 0.3, "{ds}: gini {}", stats.gini);
        }
    }

    #[test]
    fn paper_rows_match_the_printed_table() {
        // Spot-check the transcription against the paper text.
        let wiki = Table1Dataset::WikiVote.paper_row();
        assert_eq!((wiki.nodes, wiki.edges), (7115, 100_762));
        assert_eq!(wiki.seq_ops, 211_856);
        let gnutella = Table1Dataset::Gnutella.paper_row();
        assert_eq!(gnutella.low_high_ops, 132_710);
    }

    #[test]
    fn paper_degree_heuristics_beat_sequential_in_the_table() {
        for ds in Table1Dataset::ALL {
            let row = ds.paper_row();
            assert!(row.high_low_ops < row.seq_ops, "{ds}");
            assert!(row.low_high_ops < row.seq_ops, "{ds}");
        }
    }

    #[test]
    fn display_uses_paper_labels() {
        assert_eq!(Table1Dataset::HighEnergy.to_string(), "High Ener.");
    }
}
