//! Recall against a ground-truth KNN graph.

use knn_graph::{KnnGraph, UserId};

/// Per-run recall statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecallReport {
    /// Mean per-user recall in `[0, 1]`.
    pub mean_recall: f64,
    /// Minimum per-user recall.
    pub min_recall: f64,
    /// Users with perfect recall.
    pub perfect_users: usize,
    /// Users considered (those with a non-empty truth list).
    pub users_measured: usize,
}

/// Computes recall@K of `candidate` against `truth`: for each user,
/// the fraction of its true top-K neighbor *ids* present in the
/// candidate list. Users whose truth list is empty are skipped.
///
/// # Panics
///
/// Panics if the two graphs have different vertex counts.
///
/// ```
/// use knn_baseline::recall_at_k;
/// use knn_graph::{KnnGraph, Neighbor, UserId};
///
/// let mut truth = KnnGraph::new(2, 1);
/// truth.insert(UserId::new(0), Neighbor::new(UserId::new(1), 0.9));
/// let report = recall_at_k(&truth, &truth);
/// assert_eq!(report.mean_recall, 1.0);
/// ```
pub fn recall_at_k(candidate: &KnnGraph, truth: &KnnGraph) -> RecallReport {
    assert_eq!(
        candidate.num_vertices(),
        truth.num_vertices(),
        "graphs must share the vertex set"
    );
    let n = truth.num_vertices();
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    let mut perfect = 0usize;
    let mut measured = 0usize;
    for v in 0..n as u32 {
        let u = UserId::new(v);
        let true_ids: std::collections::HashSet<UserId> =
            truth.neighbors(u).iter().map(|nb| nb.id).collect();
        if true_ids.is_empty() {
            continue;
        }
        let hit = candidate
            .neighbors(u)
            .iter()
            .filter(|nb| true_ids.contains(&nb.id))
            .count();
        let r = hit as f64 / true_ids.len() as f64;
        total += r;
        min = min.min(r);
        if (r - 1.0).abs() < 1e-12 {
            perfect += 1;
        }
        measured += 1;
    }
    if measured == 0 {
        return RecallReport {
            mean_recall: 0.0,
            min_recall: 0.0,
            perfect_users: 0,
            users_measured: 0,
        };
    }
    RecallReport {
        mean_recall: total / measured as f64,
        min_recall: min,
        perfect_users: perfect,
        users_measured: measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::Neighbor;

    fn graph_of(n: usize, k: usize, edges: &[(u32, u32)]) -> KnnGraph {
        let mut g = KnnGraph::new(n, k);
        for &(s, d) in edges {
            g.insert(UserId::new(s), Neighbor::new(UserId::new(d), 0.5));
        }
        g
    }

    #[test]
    fn identical_graphs_have_recall_one() {
        let g = graph_of(4, 2, &[(0, 1), (0, 2), (1, 3), (2, 0)]);
        let r = recall_at_k(&g, &g);
        assert_eq!(r.mean_recall, 1.0);
        assert_eq!(r.min_recall, 1.0);
        assert_eq!(r.perfect_users, 3);
        assert_eq!(r.users_measured, 3, "user 3 has empty truth");
    }

    #[test]
    fn disjoint_graphs_have_recall_zero() {
        let truth = graph_of(4, 1, &[(0, 1)]);
        let cand = graph_of(4, 1, &[(0, 2)]);
        let r = recall_at_k(&cand, &truth);
        assert_eq!(r.mean_recall, 0.0);
    }

    #[test]
    fn partial_overlap_scores_fractionally() {
        let truth = graph_of(3, 2, &[(0, 1), (0, 2)]);
        let cand = graph_of(3, 2, &[(0, 1)]);
        let r = recall_at_k(&cand, &truth);
        assert!((r.mean_recall - 0.5).abs() < 1e-12);
        assert_eq!(r.perfect_users, 0);
    }

    #[test]
    fn scores_ignore_similarity_values() {
        let truth = graph_of(2, 1, &[(0, 1)]);
        let mut cand = KnnGraph::new(2, 1);
        cand.insert(UserId::new(0), Neighbor::new(UserId::new(1), -0.99));
        assert_eq!(recall_at_k(&cand, &truth).mean_recall, 1.0);
    }

    #[test]
    fn empty_truth_measures_nobody() {
        let truth = KnnGraph::new(3, 2);
        let cand = graph_of(3, 2, &[(0, 1)]);
        let r = recall_at_k(&cand, &truth);
        assert_eq!(r.users_measured, 0);
        assert_eq!(r.mean_recall, 0.0);
    }
}
