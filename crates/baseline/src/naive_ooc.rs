//! The naive out-of-core strawman.
//!
//! The paper's motivation: *"inefficient accesses of disk lead to poor
//! utility in terms of computational power"*. This baseline runs the
//! **same** KNN iteration as the engine — identical candidate set,
//! similarity, and tie-breaking — but processes users in plain id
//! order and demand-loads whichever partition each candidate happens
//! to live in. No hash-table bucketing, no PI graph, no traversal
//! planning: every cross-partition candidate is a potential partition
//! swap. Comparing its load/unload count against the engine's is the
//! clearest quantification of what phases 2–3 buy.

use std::collections::HashMap;
use std::sync::Arc;

use knn_core::partition::Partitioning;
use knn_core::phase2::reference_tuple_set;
use knn_core::topk::TopKAccumulator;
use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_sim::{Profile, Similarity};
use knn_store::backend::read_user_lists;
use knn_store::{CacheCounters, SlotCache, StorageBackend, StoreError, StreamId};

use knn_core::EngineError;

/// Result of a naive out-of-core iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveOocOutput {
    /// The next KNN graph (identical to the engine's, by design).
    pub graph: KnnGraph,
    /// Partition cache operations — the number to compare against the
    /// engine's Table-1 metric.
    pub cache: CacheCounters,
    /// Similarity evaluations performed.
    pub sims_computed: u64,
}

/// Runs one random-access KNN iteration over partitioned profile
/// streams (the same storage layout the engine uses; see
/// [`knn_core::phase1::reshard_profiles`]).
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failures or corrupt streams.
pub fn naive_out_of_core_iteration<M: Similarity>(
    graph: &KnnGraph,
    partitioning: &Partitioning,
    backend: &dyn StorageBackend,
    measure: &M,
    k: usize,
    cache_slots: usize,
) -> Result<NaiveOocOutput, EngineError> {
    let n = graph.num_vertices();
    let mut cache: SlotCache<HashMap<u32, Profile>> =
        SlotCache::new(cache_slots).with_io_stats(Arc::clone(backend.stats()));
    let mut sims_computed = 0u64;

    // The same candidate tuples the engine scores, but consumed in
    // user-id order with no locality planning.
    let mut tuples: Vec<(u32, u32)> = reference_tuple_set(graph).into_iter().collect();
    tuples.sort_unstable();

    let load = |p: u32| -> Result<HashMap<u32, Profile>, EngineError> {
        let rows = read_user_lists(backend, StreamId::Profiles(p))?;
        let mut map = HashMap::with_capacity(rows.len());
        for (user, row) in rows {
            let profile = Profile::from_unsorted_pairs(row).map_err(|e| {
                EngineError::Store(StoreError::corrupt(
                    backend.describe(StreamId::Profiles(p)),
                    format!("invalid profile for user {user}: {e}"),
                ))
            })?;
            map.insert(user, profile);
        }
        Ok(map)
    };

    let mut accums: Vec<TopKAccumulator> = (0..n).map(|_| TopKAccumulator::new(k)).collect();
    for &(s, d) in &tuples {
        let ps = partitioning.partition_of(UserId::new(s));
        let pd = partitioning.partition_of(UserId::new(d));
        cache.ensure(ps, None, load, |_, _| Ok(()))?;
        if pd != ps {
            cache.ensure(pd, Some(ps), load, |_, _| Ok(()))?;
        }
        let sp = &cache.get(ps).expect("resident")[&s];
        let dp = &cache.get(pd).expect("resident")[&d];
        let sim = measure.score(sp, dp);
        sims_computed += 1;
        accums[s as usize].offer(Neighbor::new(UserId::new(d), sim));
    }
    cache.flush(|_, _| Ok::<(), EngineError>(()))?;

    let mut next = KnnGraph::new(n, k);
    for (v, acc) in accums.into_iter().enumerate() {
        next.set_neighbors(UserId::new(v as u32), acc.into_sorted())?;
    }
    Ok(NaiveOocOutput {
        graph: next,
        cache: cache.counters(),
        sims_computed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_core::phase1::reshard_profiles;
    use knn_core::reference::reference_iteration;
    use knn_sim::generators::{clustered_profiles, ClusteredConfig};
    use knn_sim::{Measure, ProfileStore};

    fn world(
        n: usize,
        m: usize,
        seed: u64,
    ) -> (KnnGraph, ProfileStore, Partitioning, knn_store::MemBackend) {
        let (profiles, _) = clustered_profiles(
            ClusteredConfig::new(n, seed)
                .with_clusters(4)
                .with_ratings(10, 2),
        );
        let g = KnnGraph::random_init(n, 4, seed);
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        let b = knn_store::MemBackend::new();
        reshard_profiles(&b, None, &p, Some(&profiles), 1).unwrap();
        (g, profiles, p, b)
    }

    #[test]
    fn matches_the_reference_iteration() {
        let (g, profiles, p, b) = world(40, 5, 3);
        let out = naive_out_of_core_iteration(&g, &p, &b, &Measure::Cosine, 4, 2).unwrap();
        let expected = reference_iteration(&g, &profiles, &Measure::Cosine, 4, false);
        assert_eq!(out.graph, expected);
    }

    #[test]
    fn pays_far_more_partition_ops_than_locality_planning_would() {
        let (g, _, p, b) = world(60, 6, 7);
        let out = naive_out_of_core_iteration(&g, &p, &b, &Measure::Cosine, 4, 2).unwrap();
        // The PI schedule touches each pair once: at most
        // 2 * (m*(m+1)/2) loads. Random access does much worse.
        let m = 6u64;
        let planned_upper = 2 * (m * (m + 1)) / 2 + 2 * m;
        assert!(
            out.cache.total_ops() > 2 * planned_upper,
            "naive ops {} vs planned upper bound {}",
            out.cache.total_ops(),
            planned_upper
        );
    }

    #[test]
    fn single_partition_needs_exactly_one_load() {
        let (g, _, _, b) = world(20, 1, 1);
        let p = Partitioning::from_assignment(vec![0; 20], 1).unwrap();
        let out = naive_out_of_core_iteration(&g, &p, &b, &Measure::Cosine, 4, 2).unwrap();
        assert_eq!(out.cache.loads, 1);
        assert_eq!(out.cache.unloads, 1);
    }

    #[test]
    fn sims_match_tuple_count() {
        let (g, _, p, b) = world(30, 3, 9);
        let out = naive_out_of_core_iteration(&g, &p, &b, &Measure::Cosine, 4, 2).unwrap();
        assert_eq!(out.sims_computed as usize, reference_tuple_set(&g).len());
    }
}
