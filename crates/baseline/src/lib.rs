//! Baselines and quality metrics for out-of-core KNN.
//!
//! Three comparators frame the engine's evaluation:
//!
//! * [`brute_force`] — exact KNN by exhaustive pairwise scoring
//!   (multithreaded); the ground truth for recall measurements.
//! * [`nn_descent`] — the in-memory NN-Descent algorithm of Dong,
//!   Moses & Li (WWW 2011), the paper's reference \[1\] and the
//!   algorithm whose iteration the out-of-core engine externalizes.
//! * [`naive_ooc`] — the strawman the paper argues against: the same
//!   KNN iteration executed with *random-access* partition loads
//!   instead of the PI-graph schedule. Identical results, drastically
//!   more partition I/O.
//!
//! [`recall`] quantifies result quality against the brute-force truth.

pub mod brute_force;
pub mod naive_ooc;
pub mod nn_descent;
pub mod recall;

pub use brute_force::brute_force_knn;
pub use naive_ooc::{naive_out_of_core_iteration, NaiveOocOutput};
pub use nn_descent::{NnDescent, NnDescentConfig, NnDescentOutcome};
pub use recall::{recall_at_k, RecallReport};
