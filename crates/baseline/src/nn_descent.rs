//! In-memory NN-Descent (Dong, Moses & Li, WWW 2011) — the paper's
//! reference \[1\].
//!
//! NN-Descent refines a random KNN graph by *local joins*: neighbors of
//! neighbors are likely neighbors. This implementation follows the
//! published algorithm with the incremental-search optimization (only
//! pairs involving a "new" entry are rescored), sampling rate `ρ`, and
//! the `δ·n·K` early-termination rule. It is the in-memory counterpart
//! of the out-of-core engine: same candidate logic, no disk, full
//! random access — the thing a commodity PC *cannot* run once profiles
//! outgrow RAM.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_sim::{ProfileStore, Similarity};

/// NN-Descent parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnDescentConfig {
    /// The KNN bound `K`.
    pub k: usize,
    /// Sampling rate `ρ` of new/reverse lists (paper default 0.5; 1.0
    /// reproduces the unsampled algorithm).
    pub rho: f64,
    /// Termination threshold `δ`: stop when an iteration performs
    /// fewer than `δ·n·K` list updates (paper default 0.001).
    pub delta: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// RNG seed (initial graph + sampling).
    pub seed: u64,
}

impl NnDescentConfig {
    /// The paper's defaults: `ρ = 0.5`, `δ = 0.001`, 30 iterations cap.
    pub fn new(k: usize, seed: u64) -> Self {
        NnDescentConfig {
            k,
            rho: 0.5,
            delta: 0.001,
            max_iterations: 30,
            seed,
        }
    }
}

/// Outcome of an NN-Descent run.
#[derive(Debug, Clone, PartialEq)]
pub struct NnDescentOutcome {
    /// The final KNN graph.
    pub graph: KnnGraph,
    /// Iterations executed.
    pub iterations: usize,
    /// Similarity evaluations performed.
    pub sims_computed: u64,
    /// Whether the `δ` rule triggered (vs. the iteration cap).
    pub converged: bool,
}

/// The NN-Descent solver.
#[derive(Debug)]
pub struct NnDescent<'a, M> {
    profiles: &'a ProfileStore,
    measure: &'a M,
    config: NnDescentConfig,
}

/// Per-vertex entry state: the scored neighbor plus its "new" flag.
#[derive(Debug, Clone, Copy)]
struct Entry {
    neighbor: Neighbor,
    is_new: bool,
}

impl<'a, M: Similarity> NnDescent<'a, M> {
    /// Creates a solver over `profiles` with `measure`.
    pub fn new(profiles: &'a ProfileStore, measure: &'a M, config: NnDescentConfig) -> Self {
        NnDescent {
            profiles,
            measure,
            config,
        }
    }

    /// Runs NN-Descent from a random initial graph.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `ρ ∉ (0, 1]`, or `δ < 0`.
    pub fn run(&self) -> NnDescentOutcome {
        let NnDescentConfig {
            k,
            rho,
            delta,
            max_iterations,
            seed,
        } = self.config;
        assert!(k > 0, "K must be positive");
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1]");
        assert!(delta >= 0.0, "delta must be non-negative");

        let n = self.profiles.num_users();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sims_computed = 0u64;

        // B[v] ← K random entries, all flagged new, scored lazily at
        // first join (score them now for correctness of eviction).
        let init = KnnGraph::random_init(n, k, seed);
        let mut lists: Vec<Vec<Entry>> = (0..n)
            .map(|v| {
                init.neighbors(UserId::new(v as u32))
                    .iter()
                    .map(|nb| {
                        let sim = self.score(v as u32, nb.id.raw(), &mut sims_computed);
                        Entry {
                            neighbor: Neighbor::new(nb.id, sim),
                            is_new: true,
                        }
                    })
                    .collect()
            })
            .collect();

        let sample_cap = ((rho * k as f64).ceil() as usize).max(1);
        let mut iterations = 0usize;
        let mut converged = false;

        for _ in 0..max_iterations {
            iterations += 1;
            // Build sampled old/new forward lists and clear the flags
            // of sampled new entries (incremental search).
            let mut old_fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut new_fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
            for v in 0..n {
                let mut new_indices: Vec<usize> = Vec::new();
                for (i, e) in lists[v].iter().enumerate() {
                    if e.is_new {
                        new_indices.push(i);
                    } else {
                        old_fwd[v].push(e.neighbor.id.raw());
                    }
                }
                new_indices.shuffle(&mut rng);
                new_indices.truncate(sample_cap);
                for &i in &new_indices {
                    lists[v][i].is_new = false;
                    new_fwd[v].push(lists[v][i].neighbor.id.raw());
                }
            }

            // Reverse lists, sampled to ρK.
            let mut old_rev: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut new_rev: Vec<Vec<u32>> = vec![Vec::new(); n];
            for v in 0..n {
                for &u in &old_fwd[v] {
                    old_rev[u as usize].push(v as u32);
                }
                for &u in &new_fwd[v] {
                    new_rev[u as usize].push(v as u32);
                }
            }
            for v in 0..n {
                old_rev[v].shuffle(&mut rng);
                old_rev[v].truncate(sample_cap);
                new_rev[v].shuffle(&mut rng);
                new_rev[v].truncate(sample_cap);
            }

            // Local joins.
            let mut updates = 0u64;
            for v in 0..n {
                let news: Vec<u32> = new_fwd[v]
                    .iter()
                    .chain(new_rev[v].iter())
                    .copied()
                    .collect();
                let olds: Vec<u32> = old_fwd[v]
                    .iter()
                    .chain(old_rev[v].iter())
                    .copied()
                    .collect();
                // new × new (unordered) and new × old.
                for (i, &u1) in news.iter().enumerate() {
                    for &u2 in news.iter().skip(i + 1) {
                        updates += self.join(&mut lists, u1, u2, &mut sims_computed);
                    }
                    for &u2 in &olds {
                        updates += self.join(&mut lists, u1, u2, &mut sims_computed);
                    }
                }
            }

            if (updates as f64) <= delta * (n as f64) * (k as f64) {
                converged = true;
                break;
            }
        }

        let mut graph = KnnGraph::new(n, k);
        for (v, list) in lists.into_iter().enumerate() {
            let neighbors: Vec<Neighbor> = list.into_iter().map(|e| e.neighbor).collect();
            graph
                .set_neighbors(UserId::new(v as u32), neighbors)
                .expect("NN-Descent lists satisfy the KNN invariants");
        }
        NnDescentOutcome {
            graph,
            iterations,
            sims_computed,
            converged,
        }
    }

    fn score(&self, a: u32, b: u32, counter: &mut u64) -> f32 {
        *counter += 1;
        self.measure.score(
            self.profiles.get(UserId::new(a)),
            self.profiles.get(UserId::new(b)),
        )
    }

    /// Scores the pair `(u1, u2)` and offers each to the other's list;
    /// returns the number of list changes (0..=2).
    fn join(&self, lists: &mut [Vec<Entry>], u1: u32, u2: u32, counter: &mut u64) -> u64 {
        if u1 == u2 {
            return 0;
        }
        let sim = self.score(u1, u2, counter);
        let mut changed = 0;
        for (from, to) in [(u1, u2), (u2, u1)] {
            if offer(
                &mut lists[from as usize],
                self.config.k,
                Neighbor::new(UserId::new(to), sim),
            ) {
                changed += 1;
            }
        }
        changed
    }
}

/// Offers a candidate into a bounded entry list (best-first order,
/// dedup by id keeping the better score); new entries are flagged.
fn offer(list: &mut Vec<Entry>, k: usize, cand: Neighbor) -> bool {
    if let Some(pos) = list.iter().position(|e| e.neighbor.id == cand.id) {
        if cand.beats(&list[pos].neighbor) {
            list.remove(pos);
            let at = list.partition_point(|e| e.neighbor.beats(&cand));
            list.insert(
                at,
                Entry {
                    neighbor: cand,
                    is_new: true,
                },
            );
            return true;
        }
        return false;
    }
    if list.len() < k {
        let at = list.partition_point(|e| e.neighbor.beats(&cand));
        list.insert(
            at,
            Entry {
                neighbor: cand,
                is_new: true,
            },
        );
        return true;
    }
    if cand.beats(&list.last().expect("non-empty").neighbor) {
        list.pop();
        let at = list.partition_point(|e| e.neighbor.beats(&cand));
        list.insert(
            at,
            Entry {
                neighbor: cand,
                is_new: true,
            },
        );
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_knn;
    use crate::recall::recall_at_k;
    use knn_sim::generators::{clustered_profiles, ClusteredConfig};
    use knn_sim::Measure;

    #[test]
    fn reaches_high_recall_on_clustered_data() {
        let (store, _) = clustered_profiles(
            ClusteredConfig::new(120, 5)
                .with_clusters(6)
                .with_ratings(15, 2),
        );
        let truth = brute_force_knn(&store, &Measure::Cosine, 5, 2);
        let outcome = NnDescent::new(&store, &Measure::Cosine, NnDescentConfig::new(5, 5)).run();
        let recall = recall_at_k(&outcome.graph, &truth);
        assert!(
            recall.mean_recall > 0.85,
            "recall {:.3} too low",
            recall.mean_recall
        );
        assert!(outcome.iterations >= 2);
    }

    #[test]
    fn needs_fewer_sims_than_brute_force() {
        // NN-Descent's sampled local join beats O(n²) once n is large
        // enough relative to K; at small n the join overlap dominates.
        let (store, _) = clustered_profiles(ClusteredConfig::new(1000, 7));
        let n = 1000u64;
        let outcome = NnDescent::new(&store, &Measure::Cosine, NnDescentConfig::new(6, 7)).run();
        assert!(
            outcome.sims_computed < n * (n - 1) / 2,
            "NN-Descent did {} sims, brute force needs {}",
            outcome.sims_computed,
            n * (n - 1) / 2
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (store, _) = clustered_profiles(ClusteredConfig::new(60, 2));
        let cfg = NnDescentConfig::new(4, 9);
        let a = NnDescent::new(&store, &Measure::Cosine, cfg).run();
        let b = NnDescent::new(&store, &Measure::Cosine, cfg).run();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.sims_computed, b.sims_computed);
    }

    #[test]
    fn respects_invariants() {
        let (store, _) = clustered_profiles(ClusteredConfig::new(50, 4));
        let outcome = NnDescent::new(&store, &Measure::Cosine, NnDescentConfig::new(4, 4)).run();
        for v in 0..50u32 {
            let u = UserId::new(v);
            let list = outcome.graph.neighbors(u);
            assert!(list.len() <= 4);
            assert!(list.iter().all(|nb| nb.id != u));
        }
    }

    #[test]
    fn delta_one_terminates_after_first_iteration() {
        let (store, _) = clustered_profiles(ClusteredConfig::new(40, 1));
        let mut cfg = NnDescentConfig::new(3, 1);
        cfg.delta = f64::MAX;
        let outcome = NnDescent::new(&store, &Measure::Cosine, cfg).run();
        assert_eq!(outcome.iterations, 1);
        assert!(outcome.converged);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rejects_bad_rho() {
        let store = ProfileStore::new(5);
        let mut cfg = NnDescentConfig::new(2, 0);
        cfg.rho = 0.0;
        let _ = NnDescent::new(&store, &Measure::Cosine, cfg).run();
    }
}
