//! Exact KNN by exhaustive pairwise comparison.

use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_sim::{ProfileStore, Similarity};

/// Computes the exact KNN graph: every user's true top-`K` most
/// similar users under `measure`, ties broken by ascending id (the
/// workspace-wide deterministic order).
///
/// `O(n²)` similarity evaluations, split across `threads` workers —
/// the ground truth for every recall number in EXPERIMENTS.md.
///
/// # Panics
///
/// Panics if `k == 0` or `threads == 0`.
///
/// ```
/// use knn_baseline::brute_force_knn;
/// use knn_sim::{Measure, Profile, ProfileStore};
///
/// let store: ProfileStore = vec![
///     Profile::from_items(vec![1, 2]).unwrap(),
///     Profile::from_items(vec![1, 2]).unwrap(),
///     Profile::from_items(vec![9]).unwrap(),
/// ]
/// .into_iter()
/// .collect();
/// let g = brute_force_knn(&store, &Measure::Jaccard, 1, 1);
/// assert_eq!(g.neighbors(knn_graph::UserId::new(0))[0].id.raw(), 1);
/// ```
pub fn brute_force_knn<M: Similarity>(
    profiles: &ProfileStore,
    measure: &M,
    k: usize,
    threads: usize,
) -> KnnGraph {
    assert!(k > 0, "K must be positive");
    assert!(threads > 0, "need at least one thread");
    let n = profiles.num_users();
    let mut graph = KnnGraph::new(n, k);
    if n < 2 {
        return graph;
    }

    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut lists: Vec<(usize, Vec<Vec<Neighbor>>)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(hi.saturating_sub(lo));
                    for s in lo..hi {
                        let sp = profiles.get(UserId::new(s as u32));
                        let mut acc: Vec<Neighbor> = Vec::with_capacity(n - 1);
                        for d in 0..n {
                            if d == s {
                                continue;
                            }
                            let sim = measure.score(sp, profiles.get(UserId::new(d as u32)));
                            acc.push(Neighbor::new(UserId::new(d as u32), sim));
                        }
                        acc.sort();
                        acc.truncate(k);
                        out.push(acc);
                    }
                    (lo, out)
                })
            })
            .collect();
        for h in handles {
            lists.push(h.join().expect("brute-force worker panicked"));
        }
    });

    for (lo, chunk_lists) in lists {
        for (off, list) in chunk_lists.into_iter().enumerate() {
            graph
                .set_neighbors(UserId::new((lo + off) as u32), list)
                .expect("brute-force output satisfies invariants");
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_sim::generators::{clustered_profiles, ClusteredConfig};
    use knn_sim::{ItemId, Measure, Profile};

    fn store_of(n: usize) -> ProfileStore {
        let mut s = ProfileStore::new(n);
        for u in 0..n as u32 {
            let p = s.get_mut(UserId::new(u));
            p.set(ItemId::new(u), 1.0);
            p.set(ItemId::new(u + 1), 1.0);
        }
        s
    }

    #[test]
    fn finds_obvious_nearest_neighbors() {
        // Users 0 and 1 share item 1; user 2 shares item 2 with 1.
        let g = brute_force_knn(&store_of(3), &Measure::Cosine, 1, 1);
        assert_eq!(g.neighbors(UserId::new(0))[0].id, UserId::new(1));
        assert_eq!(g.neighbors(UserId::new(2))[0].id, UserId::new(1));
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let (store, _) = clustered_profiles(ClusteredConfig::new(50, 3));
        let a = brute_force_knn(&store, &Measure::Cosine, 5, 1);
        let b = brute_force_knn(&store, &Measure::Cosine, 5, 4);
        let c = brute_force_knn(&store, &Measure::Cosine, 5, 7);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn every_user_gets_k_neighbors() {
        let g = brute_force_knn(&store_of(10), &Measure::Cosine, 3, 2);
        for u in 0..10u32 {
            assert_eq!(g.neighbors(UserId::new(u)).len(), 3);
        }
    }

    #[test]
    fn k_larger_than_n_caps_at_n_minus_one() {
        let g = brute_force_knn(&store_of(3), &Measure::Cosine, 10, 1);
        for u in 0..3u32 {
            assert_eq!(g.neighbors(UserId::new(u)).len(), 2);
        }
    }

    #[test]
    fn single_user_graph_is_empty() {
        let store: ProfileStore = vec![Profile::from_items(vec![1]).unwrap()]
            .into_iter()
            .collect();
        let g = brute_force_knn(&store, &Measure::Cosine, 3, 2);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn ties_break_by_ascending_id() {
        // Users 1, 2, 3 identical; user 0 ties with all of them.
        let mut s = ProfileStore::new(4);
        for u in 0..4u32 {
            s.get_mut(UserId::new(u)).set(ItemId::new(0), 1.0);
        }
        let g = brute_force_knn(&s, &Measure::Cosine, 2, 1);
        let ids: Vec<u32> = g
            .neighbors(UserId::new(0))
            .iter()
            .map(|n| n.id.raw())
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
