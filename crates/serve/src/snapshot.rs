//! Immutable published state and the atomic publication cell.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_sim::{Measure, Profile, ProfileStore, Similarity};

use crate::ServeError;

/// One immutable, internally consistent view of the engine's state:
/// the KNN graph `G(t)`, the profile set `P(t)` it was computed over,
/// and the iteration metadata identifying `t`.
///
/// A snapshot is built by the refinement loop *between* iterations and
/// never mutated afterwards, so any number of reader threads can hold
/// one (via `Arc`) while the engine computes the next — readers never
/// see a half-updated graph, only whole generations.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    iteration: u64,
    changed_fraction: f64,
    measure: Measure,
    k: usize,
    repaired: bool,
    graph: Arc<KnnGraph>,
    profiles: Arc<ProfileStore>,
}

impl Snapshot {
    /// Assembles a snapshot. `epoch` counts publications (0 = the
    /// state at service start), `iteration` is the engine iteration
    /// `t` the graph corresponds to, and `changed_fraction` is
    /// `δ(G(t-1), G(t))` (1.0 before any iteration has run).
    pub fn new(
        epoch: u64,
        iteration: u64,
        changed_fraction: f64,
        measure: Measure,
        graph: Arc<KnnGraph>,
        profiles: Arc<ProfileStore>,
    ) -> Self {
        let k = graph.k();
        Snapshot {
            epoch,
            iteration,
            changed_fraction,
            measure,
            k,
            repaired: false,
            graph,
            profiles,
        }
    }

    /// Tags the snapshot as repaired (or exact). Fast-path repair
    /// publishes graph rows placed by greedy search instead of a full
    /// iteration — best-effort state that the next iteration
    /// reconciles exactly. Consumers (and tests) that must only
    /// observe exact generations filter on
    /// [`repaired`](Snapshot::repaired).
    pub fn with_repaired(mut self, repaired: bool) -> Self {
        self.repaired = repaired;
        self
    }

    /// Whether this generation came from the fast-path repair worker
    /// (best-effort placement) rather than a full five-phase iteration
    /// (exact). The initial epoch-0 snapshot is exact.
    pub fn repaired(&self) -> bool {
        self.repaired
    }

    /// Publication counter: strictly increasing, one per swap.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot's generation — the client-facing name of the
    /// epoch. Batch answers carry it so callers can pin or compare the
    /// coherent graph generation a result set was served from (see
    /// [`BatchNeighbors`](crate::BatchNeighbors)).
    pub fn generation(&self) -> u64 {
        self.epoch
    }

    /// The engine iteration `t` this snapshot reflects.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Edge-change fraction of the iteration that produced this
    /// snapshot (the convergence signal).
    pub fn changed_fraction(&self) -> f64 {
        self.changed_fraction
    }

    /// The similarity measure the graph was refined under.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// The KNN bound `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users served.
    pub fn num_users(&self) -> usize {
        self.graph.num_vertices()
    }

    /// The full KNN graph.
    pub fn graph(&self) -> &Arc<KnnGraph> {
        &self.graph
    }

    /// The profile set `P(t)` the graph was scored over.
    pub fn profiles(&self) -> &Arc<ProfileStore> {
        &self.profiles
    }

    /// The best-first neighbor list of `user`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownUser`] for out-of-range ids.
    pub fn neighbors(&self, user: UserId) -> Result<&[Neighbor], ServeError> {
        if user.index() >= self.num_users() {
            return Err(ServeError::UnknownUser {
                user,
                num_users: self.num_users(),
            });
        }
        Ok(self.graph.neighbors(user))
    }

    /// Scores `query` against every listed candidate and returns the
    /// top-`k`, best-first (deterministic tie-break by id).
    pub fn rank_candidates(
        &self,
        query: &Profile,
        candidates: impl IntoIterator<Item = UserId>,
        k: usize,
    ) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut scored: Vec<Neighbor> = candidates
            .into_iter()
            .filter_map(|u| self.profiles.get_checked(u).map(|p| (u, p)))
            .map(|(u, p)| Neighbor::new(u, self.measure.score(query, p)))
            .collect();
        // Neighbor's Ord is best-first, so the k smallest are the top-k.
        if scored.len() > k {
            scored.select_nth_unstable(k - 1);
            scored.truncate(k);
        }
        scored.sort_unstable();
        scored
    }

    /// Brute-force top-`k` for `query` over the whole profile set (the
    /// partition-scan fallback for ad-hoc queries with no anchor user).
    pub fn scan_top_k(&self, query: &Profile, k: usize) -> Vec<Neighbor> {
        self.rank_candidates(query, (0..self.num_users() as u32).map(UserId::new), k)
    }
}

/// The publication point: readers [`load`](SnapshotCell::load) the
/// current snapshot wait-free in all but one narrow window, the
/// refinement loop [`publish`](SnapshotCell::publish)es a fresh one
/// with a single pointer swap.
///
/// The cell holds an `Arc<Snapshot>` behind an `RwLock` whose critical
/// sections are a pointer clone (read) and a pointer store (write) —
/// no allocation, no I/O, no data copies. Readers therefore never wait
/// on refinement work, only (very briefly) on the swap instruction
/// itself; snapshot construction happens entirely outside the lock.
/// The current epoch is mirrored in an atomic so monitoring can poll
/// it without touching the lock at all.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<Snapshot>>,
    epoch: AtomicU64,
}

impl SnapshotCell {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: Snapshot) -> Self {
        let epoch = initial.epoch();
        SnapshotCell {
            current: RwLock::new(Arc::new(initial)),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The currently published snapshot. Cheap: clones one `Arc`.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Atomically replaces the published snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `next.epoch()` does not advance the current epoch —
    /// publications must be strictly ordered.
    pub fn publish(&self, next: Snapshot) {
        let next_epoch = next.epoch();
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        assert!(
            next_epoch > slot.epoch(),
            "snapshot epochs must advance: {} -> {next_epoch}",
            slot.epoch()
        );
        *slot = Arc::new(next);
        drop(slot);
        self.epoch.store(next_epoch, Ordering::Release);
    }

    /// The epoch of the published snapshot, lock-free.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_sim::ItemId;

    fn profile(pairs: &[(u32, f32)]) -> Profile {
        let mut p = Profile::new();
        for &(i, w) in pairs {
            p.set(ItemId::new(i), w);
        }
        p
    }

    fn snapshot(epoch: u64) -> Snapshot {
        let mut graph = KnnGraph::new(3, 2);
        graph.insert(UserId::new(0), Neighbor::new(UserId::new(1), 0.8));
        graph.insert(UserId::new(0), Neighbor::new(UserId::new(2), 0.3));
        let mut profiles = ProfileStore::new(3);
        profiles.set(UserId::new(0), profile(&[(1, 1.0), (2, 1.0)]));
        profiles.set(UserId::new(1), profile(&[(1, 1.0), (2, 1.0)]));
        profiles.set(UserId::new(2), profile(&[(9, 1.0)]));
        Snapshot::new(
            epoch,
            epoch,
            1.0,
            Measure::Cosine,
            Arc::new(graph),
            Arc::new(profiles),
        )
    }

    #[test]
    fn neighbors_validates_range() {
        let s = snapshot(0);
        assert_eq!(s.neighbors(UserId::new(0)).unwrap().len(), 2);
        assert!(matches!(
            s.neighbors(UserId::new(9)),
            Err(ServeError::UnknownUser { .. })
        ));
    }

    #[test]
    fn scan_ranks_by_similarity_then_id() {
        let s = snapshot(0);
        let q = profile(&[(1, 1.0), (2, 1.0)]);
        let top = s.scan_top_k(&q, 2);
        // Users 0 and 1 have identical profiles (cosine 1), user 2 is
        // orthogonal; the tie breaks by ascending id.
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id, UserId::new(0));
        assert_eq!(top[1].id, UserId::new(1));
        assert!(top[0].sim > 0.99);
    }

    #[test]
    fn rank_candidates_skips_unknown_ids() {
        let s = snapshot(0);
        let q = profile(&[(9, 2.0)]);
        let top = s.rank_candidates(&q, vec![UserId::new(2), UserId::new(77)], 5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].id, UserId::new(2));
    }

    #[test]
    fn cell_swaps_and_reports_epoch() {
        let cell = SnapshotCell::new(snapshot(0));
        assert_eq!(cell.epoch(), 0);
        let held = cell.load();
        cell.publish(snapshot(1));
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.load().epoch(), 1);
        // A snapshot loaded before the swap stays fully readable.
        assert_eq!(held.epoch(), 0);
        assert_eq!(held.neighbors(UserId::new(0)).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "epochs must advance")]
    fn cell_rejects_stale_epochs() {
        let cell = SnapshotCell::new(snapshot(5));
        cell.publish(snapshot(5));
    }
}
