//! The concurrent query front-end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::Thread;

use knn_graph::{Neighbor, UserId};
use knn_sim::{Profile, ProfileDelta};

use crate::cache::CacheKey;
use crate::refine::Shared;
use crate::snapshot::Snapshot;
use crate::ServeError;

/// Running counters of one service instance (shared by its clones).
#[derive(Debug, Default)]
struct Counters {
    neighbor_queries: AtomicU64,
    profile_queries: AtomicU64,
}

/// Rejects query profiles carrying non-finite weights: best-first
/// ordering is `total_cmp`, under which a NaN similarity would rank
/// *above* every real score — garbage at rank 0. Same finite-weight
/// rule ingest enforces on updates.
pub(crate) fn validate_query(query: &Profile) -> Result<(), ServeError> {
    if query.iter().any(|(_, w)| !w.is_finite()) {
        return Err(ServeError::NonFiniteQuery);
    }
    Ok(())
}

/// A point-in-time copy of the service counters plus snapshot state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// `neighbors` / `neighbors_many` calls answered (batch counts
    /// one per queried user).
    pub neighbor_queries: u64,
    /// Ad-hoc profile queries answered.
    pub profile_queries: u64,
    /// Updates accepted into the ingest queue.
    pub updates_submitted: u64,
    /// Updates already handed to the engine's phase-5 log.
    pub updates_drained: u64,
    /// Epoch of the currently published snapshot.
    pub snapshot_epoch: u64,
    /// Fast-path repaired epochs published so far (0 unless
    /// [`RefineOptions::repair`](crate::RefineOptions) is on).
    pub repaired_epochs: u64,
    /// Failed attempts to hand an update to the engine's durable log
    /// (each is retried until shutdown; see
    /// [`ServeError::UnpersistedUpdates`]).
    pub queue_failures: u64,
    /// Submits turned away by admission control with
    /// [`ServeError::Overloaded`] (see
    /// [`RefineOptions::admission`](crate::RefineOptions)).
    pub rejected: u64,
    /// Queued deltas dropped by the at-capacity shed sweep — each was
    /// superseded by a later queued `Replace`/`Clear` of the same
    /// user, so no user's final profile changed.
    pub shed: u64,
    /// Queued deltas dropped by opportunistic same-user coalescing
    /// above the shed watermark (same lossless contract as `shed`).
    pub coalesced: u64,
    /// High-water mark of the pending ingest depth; with a configured
    /// capacity this never exceeds it.
    pub peak_pending: u64,
    /// Whether the durable-path circuit breaker is currently open
    /// (drain/queue passes suspended, backend backing off).
    pub breaker_open: bool,
    /// Total milliseconds the breaker has spent open.
    pub breaker_open_ms: u64,
    /// Query-cache hits (answers served bit-identical from cache).
    pub cache_hits: u64,
    /// Query-cache misses (answers computed, then cached).
    pub cache_misses: u64,
}

/// A batch answer and the snapshot generation it was served from.
///
/// Every row of `results` was read from **one** snapshot (one coherent
/// generation of the graph), identified by `generation` — callers can
/// compare generations across batches to detect refinement progress,
/// or join rows of one batch knowing they never straddle a swap. The
/// sharded service keeps the same contract across shards: its
/// generation covers one coherent per-shard generation vector.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNeighbors {
    /// Generation (epoch) of the snapshot(s) the batch was answered
    /// from.
    pub generation: u64,
    /// Per queried user, in query order: the best-first neighbor list.
    pub results: Vec<Vec<Neighbor>>,
    /// `true` when the sharded gather exhausted its coherence-retry
    /// budget (see
    /// [`RefineOptions::coherence`](crate::RefineOptions)) and the
    /// rows were read from the freshest snapshots available instead of
    /// one coherent generation vector; `generation` is then the newest
    /// epoch among them. Always `false` from the unsharded service and
    /// whenever the budget sufficed.
    pub degraded: bool,
}

/// The always-on query front-end over the refining engine.
///
/// Cloning is cheap (a few `Arc`s) and every clone serves from the
/// same snapshot cell, so a server can hand one instance to each
/// request-handling thread. All methods that touch the graph resolve
/// **one** snapshot first and answer entirely from it: a reader is
/// never exposed to state from two different iterations within one
/// call, no matter how many swaps happen mid-flight.
#[derive(Debug, Clone)]
pub struct KnnService {
    shared: Arc<Shared>,
    counters: Arc<Counters>,
    /// The thread a submit must wake: the repair worker when fast-path
    /// repair is on, the refine loop otherwise.
    wake: Thread,
}

impl KnnService {
    pub(crate) fn new(shared: Arc<Shared>, wake: Thread) -> Self {
        KnnService {
            shared,
            counters: Arc::new(Counters::default()),
            wake,
        }
    }

    /// The currently published snapshot. Hold it to answer any number
    /// of related questions from one consistent state.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.cell.load()
    }

    /// The top-K list of `user` in the current snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownUser`] for out-of-range ids.
    pub fn neighbors(&self, user: UserId) -> Result<Vec<Neighbor>, ServeError> {
        self.counters
            .neighbor_queries
            .fetch_add(1, Ordering::Relaxed);
        let snapshot = self.snapshot();
        if user.index() >= snapshot.num_users() {
            return Err(ServeError::UnknownUser {
                user,
                num_users: snapshot.num_users(),
            });
        }
        let generation = snapshot.generation();
        let key = CacheKey::Neighbors(user);
        if let Some(hit) = self.shared.cache.get(generation, &key) {
            return Ok(hit);
        }
        let answer = snapshot.neighbors(user)?.to_vec();
        self.shared.cache.insert(generation, key, &answer);
        Ok(answer)
    }

    /// The top-K lists of several users, all answered from a single
    /// snapshot — the batch is internally consistent even while the
    /// refinement loop publishes mid-call — tagged with that snapshot's
    /// [`generation`](Snapshot::generation).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownUser`] for the first out-of-range
    /// id and answers nothing: every id is validated against the
    /// snapshot *before* any result row is materialized, so a failing
    /// batch does no allocation work.
    pub fn neighbors_many(&self, users: &[UserId]) -> Result<BatchNeighbors, ServeError> {
        self.counters
            .neighbor_queries
            .fetch_add(users.len() as u64, Ordering::Relaxed);
        let snapshot = self.snapshot();
        if let Some(&bad) = users.iter().find(|u| u.index() >= snapshot.num_users()) {
            return Err(ServeError::UnknownUser {
                user: bad,
                num_users: snapshot.num_users(),
            });
        }
        Ok(BatchNeighbors {
            generation: snapshot.generation(),
            degraded: false,
            results: users
                .iter()
                .map(|&u| {
                    snapshot
                        .neighbors(u)
                        .expect("validated above against the same snapshot")
                        .to_vec()
                })
                .collect(),
        })
    }

    /// Top-`k` users for an ad-hoc `query` profile that belongs to no
    /// existing user: a brute-force scan of the snapshot's whole
    /// profile set (exact, O(n) similarity evaluations).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NonFiniteQuery`] if the query profile
    /// carries a NaN/infinite weight.
    pub fn query_profile(&self, query: &Profile, k: usize) -> Result<Vec<Neighbor>, ServeError> {
        validate_query(query)?;
        self.counters
            .profile_queries
            .fetch_add(1, Ordering::Relaxed);
        let snapshot = self.snapshot();
        let generation = snapshot.generation();
        let key = CacheKey::profile(query, k);
        if let Some(hit) = self.shared.cache.get(generation, &key) {
            return Ok(hit);
        }
        let answer = snapshot.scan_top_k(query, k);
        self.shared.cache.insert(generation, key, &answer);
        Ok(answer)
    }

    /// Top-`k` users for `query`, anchored at a known similar user:
    /// scores only `anchor` itself plus its two-hop neighborhood (the
    /// same candidate set one KNN iteration explores). Falls back to
    /// the full partition scan when the neighborhood cannot fill `k`
    /// results — e.g. before the first iteration or on isolated
    /// vertices. The anchor is a candidate on both paths, so the two
    /// never disagree about whether it may appear in the results.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownUser`] if `anchor` is out of
    /// range, [`ServeError::NonFiniteQuery`] for a non-finite query
    /// weight.
    pub fn query_profile_near(
        &self,
        anchor: UserId,
        query: &Profile,
        k: usize,
    ) -> Result<Vec<Neighbor>, ServeError> {
        validate_query(query)?;
        self.counters
            .profile_queries
            .fetch_add(1, Ordering::Relaxed);
        let snapshot = self.snapshot();
        if anchor.index() >= snapshot.num_users() {
            return Err(ServeError::UnknownUser {
                user: anchor,
                num_users: snapshot.num_users(),
            });
        }
        let mut hood = snapshot.graph().two_hop_candidates(anchor);
        hood.push(anchor);
        let local = snapshot.rank_candidates(query, hood, k);
        if local.len() >= k {
            return Ok(local);
        }
        Ok(snapshot.scan_top_k(query, k))
    }

    /// Queues a profile update. It is applied by the refinement loop's
    /// next iteration (the engine's lazy phase-5 queue) and becomes
    /// visible in the snapshot published after that iteration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownUser`] or
    /// [`ServeError::NonFiniteWeight`] — validation is synchronous so
    /// bad updates fail at the caller, not in the background — and
    /// [`ServeError::Stopped`] once the refinement loop has terminated
    /// (queries keep answering from the final snapshot; accepted
    /// updates are never dropped: any not yet applied are parked in
    /// the engine's durable phase-5 log on shutdown).
    pub fn submit_update(&self, delta: ProfileDelta) -> Result<(), ServeError> {
        self.shared.ingest.submit(delta)?;
        // A parked (converged/idle) drainer must wake to apply it.
        self.wake.unpark();
        Ok(())
    }

    /// Number of users served.
    pub fn num_users(&self) -> usize {
        self.shared.ingest.num_users()
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            neighbor_queries: self.counters.neighbor_queries.load(Ordering::Relaxed),
            profile_queries: self.counters.profile_queries.load(Ordering::Relaxed),
            updates_submitted: self.shared.ingest.submitted(),
            updates_drained: self.shared.ingest.drained(),
            snapshot_epoch: self.shared.cell.epoch(),
            repaired_epochs: self.shared.repaired_epochs.load(Ordering::Relaxed),
            queue_failures: self.shared.queue_failures.load(Ordering::Relaxed),
            rejected: self.shared.ingest.rejected(),
            shed: self.shared.ingest.shed(),
            coalesced: self.shared.ingest.coalesced(),
            peak_pending: self.shared.ingest.peak_pending(),
            breaker_open: self.shared.breaker_open.load(Ordering::Relaxed),
            breaker_open_ms: self.shared.breaker_open_ms.load(Ordering::Relaxed),
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
        }
    }
}
