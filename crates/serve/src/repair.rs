//! Fast-path online repair: sub-iteration placement of changed users.
//!
//! When updates drain, the serving layer does not have to wait for the
//! next five-phase iteration to make them queryable. The repair path
//! applies the deltas to a cloned profile view, re-places each touched
//! user by greedy search over the *current* snapshot graph (the Fast
//! Online k-nn Graph Building insight: searching the existing graph
//! beats recomputation by orders of magnitude), patches the user's row
//! and the reverse rows of its new/old neighbors copy-on-write, and
//! publishes the result as a new epoch tagged
//! [`repaired`](crate::Snapshot::repaired). The background iteration
//! then reconciles exactly — repaired generations are best-effort,
//! iterated generations are exact.
//!
//! Candidate scoring reuses the phase-4 funnel verbatim:
//! [`ProfileStats::with_sketch`] + [`PreparedRef`] feed
//! [`Measure::upper_bound_ref`] so a candidate whose score *ceiling*
//! cannot beat the current kth result is skipped without computing its
//! score — the same exact (never lossy) filter phase 4 applies.

use std::collections::HashSet;
use std::sync::Arc;

use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_sim::{Measure, PreparedRef, ProfileDelta, ProfileStats, ProfileStore, Similarity};

use crate::ServeError;

/// Cap on greedy expansion rounds. Each round expands the current
/// best candidates one hop; the search almost always stalls (no
/// top-K change) after two or three rounds, the cap only bounds
/// pathological graphs.
const MAX_ROUNDS: usize = 8;

/// Scores `cand` against the prepared query and offers it into the
/// best-first top-`k` accumulator, going through the phase-4 bound
/// funnel first: with a full accumulator, a candidate whose upper
/// bound is strictly below the kth score provably cannot enter and is
/// skipped unscored.
fn consider(
    measure: Measure,
    query: PreparedRef<'_>,
    profiles: &ProfileStore,
    cand: UserId,
    k: usize,
    best: &mut Vec<Neighbor>,
) {
    let profile = profiles.get(cand);
    let (stats, sketch) = ProfileStats::with_sketch(profile);
    let prepared = PreparedRef::new(profile.entries(), &stats, &sketch);
    if best.len() == k {
        let kth = best[k - 1].sim;
        if measure.upper_bound_ref(query, prepared) < kth {
            return;
        }
    }
    let cand = Neighbor::new(cand, measure.score_ref(query, prepared));
    let at = best.partition_point(|n| n.beats(&cand));
    if at >= k {
        return;
    }
    best.insert(at, cand);
    best.truncate(k);
}

/// Places `user` in `graph` by greedy search: seed with the user's
/// old row plus its two-hop neighborhood, then repeatedly expand the
/// current best candidates one hop until the top-`k` stops changing.
/// Returns the user's new best-first row (scored under `measure`
/// against `profiles`, which must already reflect the user's updated
/// profile).
///
/// A user with an empty row (fresh insert into an empty slot, or a
/// cold start) falls back to a deterministic stride over the id space
/// so the search always has somewhere to begin.
pub(crate) fn place_user(
    graph: &KnnGraph,
    profiles: &ProfileStore,
    measure: Measure,
    user: UserId,
) -> Vec<Neighbor> {
    let k = graph.k();
    let n = graph.num_vertices();
    if n <= 1 {
        return Vec::new();
    }
    let query = profiles.get(user);
    let (stats, sketch) = ProfileStats::with_sketch(query);
    let prepared = PreparedRef::new(query.entries(), &stats, &sketch);

    let mut seeds = graph.two_hop_candidates(user);
    if seeds.is_empty() {
        // Deterministic spread over the id space: enough seeds to
        // fill the accumulator plus slack for the greedy rounds.
        let want = (2 * k + 2).min(n - 1);
        let step = ((n - 1) / want).max(1);
        seeds = (0..n as u32)
            .step_by(step)
            .map(UserId::new)
            .filter(|&c| c != user)
            .take(want)
            .collect();
    }

    let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
    let mut visited: HashSet<UserId> = HashSet::with_capacity(seeds.len() * 2);
    visited.insert(user);
    for &c in &seeds {
        if visited.insert(c) {
            consider(measure, prepared, profiles, c, k, &mut best);
        }
    }

    let mut expanded: HashSet<UserId> = HashSet::with_capacity(k * MAX_ROUNDS);
    for _ in 0..MAX_ROUNDS {
        let frontier: Vec<UserId> = best
            .iter()
            .map(|nb| nb.id)
            .filter(|id| !expanded.contains(id))
            .collect();
        if frontier.is_empty() {
            break;
        }
        for f in frontier {
            expanded.insert(f);
            for nb in graph.neighbors(f) {
                if nb.id != user && visited.insert(nb.id) {
                    consider(measure, prepared, profiles, nb.id, k, &mut best);
                }
            }
        }
    }
    best
}

/// Repairs the graph around one changed `user`: re-places its row via
/// [`place_user`], then maintains the reverse edges — new neighbors
/// are offered the (symmetric) back-edge, and dropped old neighbors
/// that still list `user` get that edge re-scored under the new
/// profile (up *or* down). All writes are copy-on-write through the
/// `Arc`, so snapshots already published keep their generation intact.
///
/// Returns the ids of every row that changed (always includes `user`),
/// sorted and deduplicated — the sharded path uses it to refresh owner
/// projections.
pub(crate) fn repair_user(
    graph: &mut Arc<KnnGraph>,
    profiles: &ProfileStore,
    measure: Measure,
    user: UserId,
) -> Vec<UserId> {
    let old: Vec<UserId> = graph.neighbors(user).iter().map(|nb| nb.id).collect();
    let row = place_user(graph, profiles, measure, user);
    let kept: HashSet<UserId> = row.iter().map(|nb| nb.id).collect();
    let mut changed = vec![user];
    for nb in &row {
        // All seven measures are symmetric, so the forward score is
        // the back-edge score.
        if KnnGraph::patch_offer(graph, nb.id, Neighbor::new(user, nb.sim)) {
            changed.push(nb.id);
        }
    }
    let query = profiles.get(user);
    for v in old {
        if kept.contains(&v) {
            continue;
        }
        if graph.neighbors(v).iter().any(|nb| nb.id == user) {
            let sim = measure.score(query, profiles.get(v));
            if KnnGraph::patch_rescore(graph, v, user, sim) {
                changed.push(v);
            }
        }
    }
    KnnGraph::patch_row(graph, user, row).expect("greedy placement yields a valid row");
    changed.sort_unstable();
    changed.dedup();
    changed
}

/// Re-places every user touched by `deltas` (deduplicated, in first-
/// touch order) and returns the union of changed rows. `profiles`
/// must already have the deltas applied.
pub(crate) fn repair_touched(
    graph: &mut Arc<KnnGraph>,
    profiles: &ProfileStore,
    measure: Measure,
    deltas: &[ProfileDelta],
) -> Vec<UserId> {
    let mut touched: Vec<UserId> = Vec::new();
    for d in deltas {
        if !touched.contains(&d.user) {
            touched.push(d.user);
        }
    }
    let mut changed: Vec<UserId> = Vec::new();
    for u in touched {
        changed.extend(repair_user(graph, profiles, measure, u));
    }
    changed.sort_unstable();
    changed.dedup();
    changed
}

/// Hands every delta to `queue` (oldest parked retries first, then the
/// fresh batch), attempting **all** of them: one failure must not drop
/// the rest. Failures are aggregated into `errors` and the failing
/// deltas returned to `parked` for a later retry. To preserve
/// per-user ordering, once a user's delta fails its later deltas are
/// parked *unattempted* — a retry may never overtake an earlier
/// failed delta for the same user.
///
/// Returns the deltas that were successfully queued, in order.
pub(crate) fn queue_all(
    parked: &mut Vec<ProfileDelta>,
    fresh: Vec<ProfileDelta>,
    queue: &mut dyn FnMut(&ProfileDelta) -> Result<(), ServeError>,
    errors: &mut Vec<ServeError>,
) -> Vec<ProfileDelta> {
    if parked.is_empty() && fresh.is_empty() {
        return Vec::new();
    }
    let retries = std::mem::take(parked);
    let mut blocked: HashSet<UserId> = HashSet::new();
    let mut queued = Vec::new();
    for delta in retries.into_iter().chain(fresh) {
        if blocked.contains(&delta.user) {
            parked.push(delta);
            continue;
        }
        match queue(&delta) {
            Ok(()) => queued.push(delta),
            Err(e) => {
                errors.push(e);
                blocked.insert(delta.user);
                parked.push(delta);
            }
        }
    }
    queued
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_sim::{ItemId, Profile};

    fn profile(pairs: &[(u32, f32)]) -> Profile {
        let mut p = Profile::new();
        for &(i, w) in pairs {
            p.set(ItemId::new(i), w);
        }
        p
    }

    /// Clustered world: users 0..3 share items {1,2}, users 4..7 share
    /// {10,11}, wired into two cliques.
    fn two_cluster_world() -> (Arc<KnnGraph>, ProfileStore) {
        let n = 8;
        let mut profiles = ProfileStore::new(n);
        for u in 0..4u32 {
            profiles.set(UserId::new(u), profile(&[(1, 1.0), (2, u as f32 + 1.0)]));
        }
        for u in 4..8u32 {
            profiles.set(UserId::new(u), profile(&[(10, 1.0), (11, u as f32 + 1.0)]));
        }
        let mut graph = KnnGraph::new(n, 2);
        for group in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
            for &u in &group {
                for &v in &group {
                    if u != v {
                        let s = Measure::Cosine
                            .score(profiles.get(UserId::new(u)), profiles.get(UserId::new(v)));
                        graph.insert(UserId::new(u), Neighbor::new(UserId::new(v), s));
                    }
                }
            }
        }
        (Arc::new(graph), profiles)
    }

    #[test]
    fn place_user_matches_brute_force_within_reach() {
        let (graph, profiles) = two_cluster_world();
        for u in 0..8u32 {
            let user = UserId::new(u);
            let placed = place_user(&graph, &profiles, Measure::Cosine, user);
            // Brute force over the user's own cluster (the graph is
            // two disconnected cliques, so that is the reachable set).
            let range = if u < 4 { 0..4u32 } else { 4..8u32 };
            let cluster: Vec<UserId> = range.filter(|&v| v != u).map(UserId::new).collect();
            let mut exact: Vec<Neighbor> = cluster
                .iter()
                .map(|&v| {
                    Neighbor::new(
                        v,
                        Measure::Cosine.score(profiles.get(user), profiles.get(v)),
                    )
                })
                .collect();
            exact.sort_unstable();
            exact.truncate(2);
            assert_eq!(placed, exact, "user {u}");
        }
    }

    #[test]
    fn place_user_seeds_cold_rows_deterministically() {
        let (graph, profiles) = two_cluster_world();
        // Wipe user 0's row: the fallback stride must still find its
        // cluster mates (reachable once any same-cluster seed lands).
        let mut cold = (*graph).clone();
        cold.set_neighbors(UserId::new(0), Vec::new()).unwrap();
        let a = place_user(&cold, &profiles, Measure::Cosine, UserId::new(0));
        let b = place_user(&cold, &profiles, Measure::Cosine, UserId::new(0));
        assert_eq!(a, b, "deterministic");
        assert_eq!(a.len(), 2);
        assert!(
            a.iter().all(|nb| nb.id.raw() < 4),
            "found its own cluster: {a:?}"
        );
    }

    #[test]
    fn repair_user_moves_a_user_across_a_bridged_graph() {
        let (graph, mut profiles) = two_cluster_world();
        let mut bridged = (*graph).clone();
        // Bridge: user 1 keeps one cross-cluster edge, so cluster 2 is
        // reachable from user 0's two-hop neighborhood. And user 3
        // lists user 0, to exercise the dropped-old-neighbor rescore.
        bridged
            .set_neighbors(
                UserId::new(1),
                vec![
                    Neighbor::new(UserId::new(2), 0.99),
                    Neighbor::new(UserId::new(4), 0.0),
                ],
            )
            .unwrap();
        let old_sim_3_to_0 =
            Measure::Cosine.score(profiles.get(UserId::new(3)), profiles.get(UserId::new(0)));
        bridged
            .set_neighbors(
                UserId::new(3),
                vec![
                    Neighbor::new(UserId::new(0), old_sim_3_to_0),
                    Neighbor::new(UserId::new(1), 0.97),
                ],
            )
            .unwrap();
        // ...and 0 lists 3, so 3 is a *dropped old neighbor* after the
        // move (the rescore pass only covers those, not arbitrary
        // in-edges — the exact iteration reconciles the rest).
        let old_sim_0_to_1 =
            Measure::Cosine.score(profiles.get(UserId::new(0)), profiles.get(UserId::new(1)));
        bridged
            .set_neighbors(
                UserId::new(0),
                vec![
                    Neighbor::new(UserId::new(1), old_sim_0_to_1),
                    Neighbor::new(UserId::new(3), old_sim_3_to_0),
                ],
            )
            .unwrap();
        let mut graph = Arc::new(bridged);
        let published = Arc::clone(&graph);

        let user = UserId::new(0);
        // User 0 switches taste to the second cluster's items.
        profiles.set(user, profile(&[(10, 1.0), (11, 3.0)]));
        let changed = repair_user(&mut graph, &profiles, Measure::Cosine, user);

        assert!(changed.contains(&user));
        // New row crossed the bridge into cluster 2.
        assert!(
            graph.neighbors(user).iter().all(|nb| nb.id.raw() >= 4),
            "row did not cross the bridge: {:?}",
            graph.neighbors(user)
        );
        // New neighbors gained the back-edge where it beats their tail.
        for nb in graph.neighbors(user) {
            let listed = graph.neighbors(nb.id).iter().any(|b| b.id == user);
            let tail = graph.neighbors(nb.id).last().unwrap().sim;
            assert!(
                listed || tail >= nb.sim,
                "back-edge neither listed nor outscored at {}",
                nb.id
            );
        }
        // User 3 dropped out of 0's row but still lists 0: its edge
        // was re-scored under the new profile (cross-cluster cosine
        // is 0 here), demoting it to the tail.
        let three = graph.neighbors(UserId::new(3));
        let edge = three.iter().find(|nb| nb.id == user).expect("still listed");
        assert_eq!(edge.sim, 0.0, "stale score on reverse edge of 3");
        assert_eq!(three.last().unwrap().id, user, "demoted to the tail");
        // The published generation never moved.
        assert!(published.neighbors(user).iter().all(|nb| nb.id.raw() < 4));
        let published_edge = published
            .neighbors(UserId::new(3))
            .iter()
            .find(|nb| nb.id == user)
            .expect("published reverse row untouched");
        assert!(published_edge.sim > 0.5);
    }

    #[test]
    fn queue_all_attempts_every_delta_and_preserves_per_user_order() {
        let d = |u: u32, item: u32| ProfileDelta::set(UserId::new(u), ItemId::new(item), 1.0);
        let mut parked = Vec::new();
        let mut errors = Vec::new();
        // Fail exactly the first attempt (which is user 1's first
        // delta): user 1's second delta must be parked *unattempted*,
        // user 2's delta must still be attempted and succeed.
        let mut calls = 0;
        let queued = queue_all(
            &mut parked,
            vec![d(1, 10), d(1, 11), d(2, 20)],
            &mut |_delta| {
                calls += 1;
                if calls == 1 {
                    Err(ServeError::Stopped)
                } else {
                    Ok(())
                }
            },
            &mut errors,
        );
        assert_eq!(calls, 2, "user 1's second delta was not attempted");
        assert_eq!(queued, vec![d(2, 20)]);
        assert_eq!(parked, vec![d(1, 10), d(1, 11)]);
        assert_eq!(errors.len(), 1);

        // Retry pass: parked deltas go first and drain in order.
        let queued = queue_all(&mut parked, vec![d(1, 12)], &mut |_| Ok(()), &mut errors);
        assert_eq!(queued, vec![d(1, 10), d(1, 11), d(1, 12)]);
        assert!(parked.is_empty());
    }

    #[test]
    fn queue_all_blocks_only_the_failing_user() {
        let d = |u: u32, item: u32| ProfileDelta::set(UserId::new(u), ItemId::new(item), 1.0);
        let mut parked = Vec::new();
        let mut errors = Vec::new();
        let queued = queue_all(
            &mut parked,
            vec![d(1, 10), d(2, 20), d(1, 11), d(2, 21)],
            &mut |delta| {
                if delta.user == UserId::new(1) {
                    Err(ServeError::Stopped)
                } else {
                    Ok(())
                }
            },
            &mut errors,
        );
        assert_eq!(queued, vec![d(2, 20), d(2, 21)]);
        assert_eq!(parked, vec![d(1, 10), d(1, 11)]);
        assert_eq!(
            errors.len(),
            1,
            "later deltas of a blocked user are parked unattempted"
        );
    }
}
