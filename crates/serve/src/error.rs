//! Serving-layer errors.

use std::fmt;
use std::time::Duration;

use knn_core::EngineError;
use knn_graph::UserId;
use knn_sim::ProfileDelta;

/// Errors surfaced by the online serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The background engine failed (storage or validation error).
    Engine(EngineError),
    /// A query or update referenced a user outside the engine's range.
    UnknownUser {
        /// The offending id.
        user: UserId,
        /// The engine's user count.
        num_users: usize,
    },
    /// An update carried a non-finite weight.
    NonFiniteWeight {
        /// The user whose update was rejected.
        user: UserId,
    },
    /// An ad-hoc query profile carried a non-finite weight. Scoring a
    /// NaN would rank the garbage result *first* (best-first order is
    /// `total_cmp`, under which NaN sorts above every real score), so
    /// queries are validated with the same finite-weight rule ingest
    /// enforces.
    NonFiniteQuery,
    /// Accepted updates could not be handed to the engine's durable
    /// phase-5 log before shutdown (the log's backend kept failing).
    /// Rather than being dropped, they are returned here — the caller
    /// can re-queue them once storage recovers. `source` is the last
    /// queueing error observed.
    UnpersistedUpdates {
        /// The accepted-but-unpersisted deltas, in submission order
        /// per user.
        updates: Vec<ProfileDelta>,
        /// The last error the engine's update queue returned.
        source: Option<Box<ServeError>>,
    },
    /// The update ingest queue is at capacity and shedding could not
    /// free space (see [`AdmissionConfig`](crate::AdmissionConfig)).
    /// The update was **not** accepted. With
    /// [`OverloadPolicy::Block`](crate::OverloadPolicy) this surfaces
    /// only after the blocking deadline elapsed.
    Overloaded {
        /// How long the caller should wait before retrying — one
        /// drain cadence of the refinement loop.
        retry_after_hint: Duration,
    },
    /// The refinement thread panicked; the engine state is lost.
    RefineLoopPanicked,
    /// The refinement loop has terminated (stopped or failed); the
    /// service still answers queries from its final snapshot but
    /// accepts no further updates.
    Stopped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::UnknownUser { user, num_users } => {
                write!(
                    f,
                    "user {user} out of range (engine serves {num_users} users)"
                )
            }
            ServeError::NonFiniteWeight { user } => {
                write!(f, "update for user {user} carries a non-finite weight")
            }
            ServeError::NonFiniteQuery => f.write_str("query profile carries a non-finite weight"),
            ServeError::UnpersistedUpdates { updates, .. } => {
                write!(
                    f,
                    "{} accepted update(s) could not be persisted to the engine's \
                     update log at shutdown and are returned to the caller",
                    updates.len()
                )
            }
            ServeError::Overloaded { retry_after_hint } => {
                write!(
                    f,
                    "update ingest queue is at capacity; retry in ~{} ms",
                    retry_after_hint.as_millis()
                )
            }
            ServeError::RefineLoopPanicked => f.write_str("refinement thread panicked"),
            ServeError::Stopped => {
                f.write_str("refinement loop has terminated; updates are no longer accepted")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::UnpersistedUpdates {
                source: Some(e), ..
            } => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}
