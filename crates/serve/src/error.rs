//! Serving-layer errors.

use std::fmt;

use knn_core::EngineError;
use knn_graph::UserId;

/// Errors surfaced by the online serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The background engine failed (storage or validation error).
    Engine(EngineError),
    /// A query or update referenced a user outside the engine's range.
    UnknownUser {
        /// The offending id.
        user: UserId,
        /// The engine's user count.
        num_users: usize,
    },
    /// An update carried a non-finite weight.
    NonFiniteWeight {
        /// The user whose update was rejected.
        user: UserId,
    },
    /// The refinement thread panicked; the engine state is lost.
    RefineLoopPanicked,
    /// The refinement loop has terminated (stopped or failed); the
    /// service still answers queries from its final snapshot but
    /// accepts no further updates.
    Stopped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::UnknownUser { user, num_users } => {
                write!(
                    f,
                    "user {user} out of range (engine serves {num_users} users)"
                )
            }
            ServeError::NonFiniteWeight { user } => {
                write!(f, "update for user {user} carries a non-finite weight")
            }
            ServeError::RefineLoopPanicked => f.write_str("refinement thread panicked"),
            ServeError::Stopped => {
                f.write_str("refinement loop has terminated; updates are no longer accepted")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}
