//! Online query layer over the five-phase out-of-core KNN engine.
//!
//! The Middleware'14 engine refines the KNN graph in offline
//! iterations; this crate turns it into an always-on service in the
//! online regime of Debatty et al.'s *Fast Online k-nn Graph Building*:
//! queries are answered **while** refinement runs, and profile updates
//! stream in concurrently.
//!
//! Three moving parts:
//!
//! * [`Snapshot`] / [`SnapshotCell`] — an immutable generation of
//!   state (graph `G(t)`, profiles `P(t)`, iteration metadata)
//!   published by atomic pointer swap. Readers grab an `Arc` and keep
//!   it as long as they like; old generations are freed when the last
//!   reader drops them.
//! * [`KnnService`] — the cloneable front-end: per-user top-K lookups
//!   ([`neighbors`](KnnService::neighbors), batched
//!   [`neighbors_many`](KnnService::neighbors_many)), ad-hoc profile
//!   queries ([`query_profile`](KnnService::query_profile) full scan,
//!   [`query_profile_near`](KnnService::query_profile_near) two-hop
//!   neighborhood with scan fallback), and
//!   [`submit_update`](KnnService::submit_update) feeding the engine's
//!   lazy phase-5 queue through [`UpdateIngest`].
//! * [`spawn`] / [`RefineHandle`] — the background refinement loop: it
//!   drains queued updates, runs [`knn_core::KnnEngine::run_iteration`]
//!   on its own thread, and publishes a fresh snapshot after every
//!   iteration. [`RefineHandle::stop`] recovers the engine.
//!
//! # Fast-path repair (sub-second ingest-to-visibility)
//!
//! By default an accepted update becomes queryable only when the next
//! full iteration publishes — seconds on large worlds. Setting
//! [`RefineOptions::repair`] spawns a repair worker that makes
//! ingest-to-visibility iteration-independent: as soon as updates
//! drain it applies them to a cloned profile view, re-places each
//! touched user by greedy search over the current snapshot graph
//! (seeded from the user's old row, scored through the exact phase-4
//! `upper_bound` funnel), patches the affected rows copy-on-write, and
//! publishes the result as a new epoch tagged
//! [`Snapshot::repaired`]`() == true`.
//!
//! **Approximation contract.** Repaired epochs are *best-effort*: the
//! placed rows are the best candidates the greedy search reached, not
//! a full recomputation. Every epoch with `repaired() == false` is an
//! *exact* engine generation — the background iteration reconciles
//! repaired state on its next publish, and once all pending updates
//! have been through an iteration the served graph is bit-identical
//! to a never-repaired engine's (the engine itself never sees
//! repaired rows; its durable phase-5 log gets every delta).
//!
//! **Durability contract.** An update accepted with `Ok` is never
//! dropped: it is either applied by an iteration, parked in the
//! engine's durable phase-5 log, or — if the log's backend keeps
//! failing through shutdown — returned to the caller in
//! [`ServeError::UnpersistedUpdates`]. Queue failures are retried on
//! every loop pass, preserving per-user submission order.
//!
//! The sharded twins — [`spawn_sharded`], [`ShardedKnnService`],
//! [`ShardedRefineHandle`] — serve a `knn_shard::ShardedEngine` the
//! same way, with per-shard snapshots and scatter-gather queries that
//! answer identically to the unsharded service (see the `sharded`
//! module docs).
//!
//! # Operating under load
//!
//! Every failure mode under pressure is **typed and bounded** — no
//! silent queue growth, no unbounded spins:
//!
//! * **Admission control** ([`RefineOptions::admission`],
//!   [`AdmissionConfig`]): bounds the pending ingest queue globally
//!   and per user. Above the shed watermark a submitted
//!   `Replace`/`Clear` losslessly coalesces the same user's queued
//!   history; at capacity a whole-queue shed sweep drops every delta
//!   superseded by a later queued `Replace`/`Clear`. Only when
//!   shedding frees nothing does [`OverloadPolicy`] apply: **reject**
//!   with [`ServeError::Overloaded`] (carrying a `retry_after_hint`)
//!   or **block** the submitter up to a deadline. A rejected update
//!   was never accepted; an accepted update keeps the full durability
//!   guarantee.
//! * **Degraded reads** ([`RefineOptions::coherence`],
//!   [`CoherenceBudget`]): the sharded batch paths retry generation
//!   coherence within a bounded budget (attempts + wall deadline) and
//!   then answer from the freshest per-shard snapshots, flagged via
//!   [`BatchNeighbors::degraded`], instead of spinning against a
//!   racing publisher.
//! * **Circuit breaker** ([`RefineOptions::breaker`],
//!   [`BreakerConfig`]): a flapping storage backend opens the breaker
//!   — drain/queue passes are suspended for a capped, exponentially
//!   growing, jittered interval (probing, not hammering), surfaced in
//!   [`ServiceStats`] as `breaker_open` / `breaker_open_ms`. With
//!   bounded admission the undrained backlog becomes backpressure on
//!   submitters.
//! * **Query cache** ([`RefineOptions::query_cache`]): repeat
//!   `neighbors`/`query_profile` lookups are answered from a
//!   generation-keyed cache, invalidated wholesale on every snapshot
//!   swap. Hits are bit-identical to uncached answers (the cached
//!   value is a prior answer for the same immutable generation);
//!   degraded sharded reads bypass it entirely.
//!
//! [`ServiceStats`] exposes the whole overload surface: `rejected`,
//! `shed`, `coalesced`, `peak_pending`, `breaker_open`,
//! `breaker_open_ms`, `cache_hits`, `cache_misses`. The
//! `serve_load` bench bin drives closed-loop mixed read/update
//! traffic against both services and reports latency percentiles and
//! saturation throughput.
//!
//! ```
//! use knn_core::{EngineConfig, KnnEngine};
//! use knn_serve::{spawn, RefineOptions};
//! use knn_sim::generators::{clustered_profiles, ClusteredConfig};
//! use knn_store::WorkingDir;
//! use knn_graph::UserId;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (profiles, _) = clustered_profiles(ClusteredConfig::new(120, 7));
//! let config = EngineConfig::builder(120).k(4).num_partitions(4).seed(7).build()?;
//! let engine = KnnEngine::new(config, profiles, WorkingDir::temp("serve_doc")?)?;
//!
//! let (service, refine) = spawn(engine, RefineOptions::default())?;
//! // Queries are answered immediately, refinement runs behind them.
//! let top = service.neighbors(UserId::new(0))?;
//! assert!(!top.is_empty());
//! refine.wait_for_epoch(1, Duration::from_secs(30));
//! assert!(service.snapshot().iteration() >= 1);
//! let engine = refine.stop()?;
//! engine.into_working_dir().destroy()?;
//! # Ok(())
//! # }
//! ```

mod admission;
mod breaker;
mod cache;
mod error;
mod ingest;
mod refine;
mod repair;
mod service;
mod sharded;
mod snapshot;

pub use admission::{AdmissionConfig, OverloadPolicy};
pub use breaker::BreakerConfig;
pub use error::ServeError;
pub use ingest::UpdateIngest;
pub use refine::{spawn, RefineHandle, RefineOptions};
pub use service::{BatchNeighbors, KnnService, ServiceStats};
pub use sharded::{spawn_sharded, CoherenceBudget, ShardedKnnService, ShardedRefineHandle};
pub use snapshot::{Snapshot, SnapshotCell};
