//! Circuit breaker for the engine's durable update-log path.
//!
//! `queue_all` already parks deltas that the [`StorageBackend`] refuses
//! and retries them on the next pass — correct, but a backend that
//! keeps flapping turns every drain cycle into a burst of doomed
//! `append_updates` calls. The breaker throttles that: consecutive
//! all-fail passes open it for a capped, exponentially growing,
//! jittered interval during which the refinement loop skips the
//! drain/queue step entirely (queries and iteration keep running; with
//! bounded admission the backlog turns into backpressure on
//! submitters). One successful append closes it again.
//!
//! [`StorageBackend`]: knn_store::StorageBackend

use std::time::{Duration, Instant};

/// Backoff schedule of the durable-path circuit breaker.
///
/// After the `n`-th consecutive failed queueing pass the breaker opens
/// for `min(cap, base · 2^(n-1))`, scaled by a deterministic jitter in
/// `[0.75, 1.25)` to decorrelate retry storms across services sharing
/// a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Open interval after the first failed pass.
    pub base: Duration,
    /// Upper bound on the open interval.
    pub cap: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
        }
    }
}

impl BreakerConfig {
    /// The open interval after `consecutive` failed passes (≥ 1),
    /// before jitter.
    fn backoff(&self, consecutive: u32) -> Duration {
        let exp = consecutive.saturating_sub(1).min(32);
        self.base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.cap)
    }
}

/// Breaker state, owned by the refinement loop (not shared — the loop
/// is the only writer of the durable path). Times flow in through
/// `now` parameters so unit tests need no sleeping.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    /// Consecutive queueing passes in which every attempt failed.
    consecutive_failures: u32,
    /// When the breaker last opened, and until when. `None` = closed.
    open: Option<(Instant, Instant)>,
    /// Total time spent open, accumulated at close/re-open.
    open_total: Duration,
    /// xorshift64 state for deterministic jitter.
    jitter_state: u64,
}

impl Breaker {
    pub fn new(config: BreakerConfig, jitter_seed: u64) -> Self {
        Breaker {
            config,
            consecutive_failures: 0,
            open: None,
            open_total: Duration::ZERO,
            // xorshift64 must not start at 0 (it would stay 0).
            jitter_state: jitter_seed | 1,
        }
    }

    fn jitter(&mut self) -> f64 {
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        // Map the top 53 bits to [0.75, 1.25).
        0.75 + (x >> 11) as f64 / (1u64 << 53) as f64 * 0.5
    }

    /// How much longer the breaker is open at `now` (`None` = closed,
    /// drain/queue may proceed). An elapsed open interval half-closes:
    /// the next pass runs as a probe, and `record` decides what's next.
    pub fn remaining_open(&mut self, now: Instant) -> Option<Duration> {
        match self.open {
            Some((_, until)) if now < until => Some(until - now),
            Some((since, until)) => {
                self.open_total += until - since;
                self.open = None;
                None
            }
            None => None,
        }
    }

    /// Records the outcome of one queueing pass: `failures` attempts
    /// refused by the backend, out of `attempted` total. A pass that
    /// attempted nothing carries no signal and leaves the state alone.
    pub fn record(&mut self, now: Instant, attempted: usize, failures: usize) {
        if attempted == 0 {
            return;
        }
        if failures == 0 {
            self.consecutive_failures = 0;
            if let Some((since, until)) = self.open.take() {
                self.open_total += now.min(until).saturating_duration_since(since);
            }
            return;
        }
        // Any failure while at least one attempt was made: back off.
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if let Some((since, until)) = self.open.take() {
            self.open_total += now.min(until).saturating_duration_since(since);
        }
        let interval = self
            .config
            .backoff(self.consecutive_failures)
            .mul_f64(self.jitter());
        self.open = Some((now, now + interval));
    }

    /// Whether the breaker is open at `now`.
    pub fn is_open(&mut self, now: Instant) -> bool {
        self.remaining_open(now).is_some()
    }

    /// Total time spent open so far (including the current open
    /// interval, measured up to `now`).
    pub fn open_total(&self, now: Instant) -> Duration {
        match self.open {
            Some((since, until)) => {
                self.open_total + now.min(until).saturating_duration_since(since)
            }
            None => self.open_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(base_ms: u64, cap_ms: u64) -> Breaker {
        Breaker::new(
            BreakerConfig {
                base: Duration::from_millis(base_ms),
                cap: Duration::from_millis(cap_ms),
            },
            2014,
        )
    }

    #[test]
    fn closed_until_a_failing_pass() {
        let t0 = Instant::now();
        let mut b = breaker(10, 1000);
        assert!(!b.is_open(t0));
        b.record(t0, 5, 0);
        assert!(!b.is_open(t0));
        b.record(t0, 0, 0); // nothing attempted: no signal
        assert!(!b.is_open(t0));
    }

    #[test]
    fn opens_on_failure_and_backs_off_exponentially() {
        let t0 = Instant::now();
        let mut b = breaker(10, 10_000);
        b.record(t0, 3, 3);
        // Jitter is [0.75, 1.25): first interval in [7.5, 12.5) ms.
        let first = b.remaining_open(t0).expect("open after failure");
        assert!(first >= Duration::from_micros(7_500) && first < Duration::from_micros(12_500));
        // Second consecutive failure roughly doubles the interval.
        let t1 = t0 + Duration::from_millis(50);
        assert!(!b.is_open(t1), "interval elapsed");
        b.record(t1, 3, 3);
        let second = b.remaining_open(t1).expect("open again");
        assert!(second >= Duration::from_millis(15) && second < Duration::from_millis(25));
    }

    #[test]
    fn backoff_is_capped() {
        let t = Instant::now();
        let mut b = breaker(10, 40);
        for i in 0..20 {
            let now = t + Duration::from_secs(i);
            b.record(now, 1, 1);
        }
        let now = t + Duration::from_secs(19);
        let remaining = b.remaining_open(now).expect("open");
        assert!(remaining <= Duration::from_millis(50), "cap × max jitter");
    }

    #[test]
    fn success_closes_and_resets() {
        let t0 = Instant::now();
        let mut b = breaker(10, 10_000);
        b.record(t0, 1, 1);
        b.record(t0 + Duration::from_millis(100), 1, 1);
        b.record(t0 + Duration::from_millis(200), 1, 0);
        let t1 = t0 + Duration::from_millis(200);
        assert!(!b.is_open(t1));
        // After reset the next failure starts from `base` again.
        b.record(t1, 1, 1);
        let after_reset = b.remaining_open(t1).expect("open");
        assert!(after_reset < Duration::from_micros(12_500));
    }

    #[test]
    fn open_total_accumulates() {
        let t0 = Instant::now();
        let mut b = breaker(100, 100);
        b.record(t0, 1, 1);
        let opened_for = b.remaining_open(t0).expect("open");
        // Probe long after the interval elapsed: total = the interval.
        let t1 = t0 + Duration::from_secs(5);
        assert!(!b.is_open(t1));
        assert_eq!(b.open_total(t1), opened_for);
        // Mid-interval accounting counts elapsed-so-far.
        b.record(t1, 1, 1);
        let mid = t1 + Duration::from_millis(20);
        assert!(b.open_total(mid) >= opened_for + Duration::from_millis(20));
    }
}
