//! Generation-keyed query cache.
//!
//! Answers are pure functions of (snapshot generation, query), so a
//! cache entry is valid exactly as long as the generation it was
//! computed against stays published. The cache therefore keys every
//! entry on a generation and **drops everything** the first time it is
//! consulted with a newer one — invalidation rides the epoch counter
//! the snapshot cell already maintains, no extra coordination with the
//! refinement loop.
//!
//! Hits are bit-identical to uncached answers by construction: the
//! cached value *is* the `Vec<Neighbor>` a cache-miss computation
//! produced for the same generation, and snapshots are immutable.
//! Capacity is bounded with FIFO eviction — the serve layer's read
//! paths are already cheap, so the cache targets the common
//! hot-user/hot-query case without pretending to be an LRU.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use knn_graph::{Neighbor, UserId};
use knn_sim::Profile;

/// What a cached answer is keyed on (besides the generation): the
/// query itself, exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CacheKey {
    /// `neighbors(user)` — the user's top-K row.
    Neighbors(UserId),
    /// `query_profile(query, k)` — the profile's entries with their
    /// weights' exact bit patterns, so two queries share an entry only
    /// if they are bit-identical (no false hits from `-0.0`/`0.0` or
    /// NaN payload differences; NaNs never get here — queries are
    /// validated finite first).
    Profile { entries: Vec<(u32, u32)>, k: usize },
}

impl CacheKey {
    pub(crate) fn profile(query: &Profile, k: usize) -> Self {
        CacheKey::Profile {
            entries: query
                .iter()
                .map(|(item, w)| (item.raw(), w.to_bits()))
                .collect(),
            k,
        }
    }
}

#[derive(Debug, Default)]
struct CacheState {
    /// Generation every resident entry belongs to.
    generation: u64,
    map: HashMap<CacheKey, Vec<Neighbor>>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// A capacity-bounded, generation-keyed map from queries to answers.
/// `capacity == 0` disables it entirely (no locking, no counters).
#[derive(Debug)]
pub(crate) struct QueryCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    state: Mutex<CacheState>,
}

impl QueryCache {
    pub(crate) fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Looks up `key` under `generation`. A lookup under a generation
    /// other than the resident one clears the cache first (stale
    /// entries can never be returned) and re-homes it — swaps are rare
    /// relative to queries, so wholesale invalidation is the simple
    /// *and* cheap choice.
    pub(crate) fn get(&self, generation: u64, key: &CacheKey) -> Option<Vec<Neighbor>> {
        if self.capacity == 0 {
            return None;
        }
        let mut state = self.state.lock().expect("cache lock poisoned");
        if state.generation != generation {
            state.map.clear();
            state.order.clear();
            state.generation = generation;
        }
        match state.map.get(key) {
            Some(answer) => {
                let answer = answer.clone();
                drop(state);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(answer)
            }
            None => {
                drop(state);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an answer computed against `generation`. Ignored if the
    /// resident generation has moved on (the answer would be stale on
    /// arrival).
    pub(crate) fn insert(&self, generation: u64, key: CacheKey, answer: &[Neighbor]) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("cache lock poisoned");
        if state.generation != generation {
            return;
        }
        if state.map.len() >= self.capacity && !state.map.contains_key(&key) {
            if let Some(evict) = state.order.pop_front() {
                state.map.remove(&evict);
            }
        }
        if state.map.insert(key.clone(), answer.to_vec()).is_none() {
            state.order.push_back(key);
        }
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u32, sim: f32) -> Vec<Neighbor> {
        vec![Neighbor::new(UserId::new(id), sim)]
    }

    #[test]
    fn miss_then_hit_same_generation() {
        let cache = QueryCache::new(4);
        let key = CacheKey::Neighbors(UserId::new(7));
        assert_eq!(cache.get(3, &key), None);
        cache.insert(3, key.clone(), &row(1, 0.5));
        assert_eq!(cache.get(3, &key), Some(row(1, 0.5)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn generation_change_invalidates_everything() {
        let cache = QueryCache::new(4);
        let key = CacheKey::Neighbors(UserId::new(7));
        cache.get(3, &key);
        cache.insert(3, key.clone(), &row(1, 0.5));
        // New generation: the old entry must not surface.
        assert_eq!(cache.get(4, &key), None);
        // And a stale insert (computed against gen 3) is dropped.
        cache.insert(3, key.clone(), &row(1, 0.5));
        assert_eq!(cache.get(4, &key), None);
        cache.insert(4, key.clone(), &row(2, 0.9));
        assert_eq!(cache.get(4, &key), Some(row(2, 0.9)));
    }

    #[test]
    fn capacity_bounds_residency_fifo() {
        let cache = QueryCache::new(2);
        for u in 0..3u32 {
            let key = CacheKey::Neighbors(UserId::new(u));
            cache.get(0, &key);
            cache.insert(0, key, &row(u, 0.1));
        }
        // Oldest (user 0) was evicted; the two newest survive.
        assert_eq!(cache.get(0, &CacheKey::Neighbors(UserId::new(0))), None);
        assert!(cache.get(0, &CacheKey::Neighbors(UserId::new(1))).is_some());
        assert!(cache.get(0, &CacheKey::Neighbors(UserId::new(2))).is_some());
    }

    #[test]
    fn zero_capacity_disables_without_counting() {
        let cache = QueryCache::new(0);
        let key = CacheKey::Neighbors(UserId::new(0));
        assert_eq!(cache.get(0, &key), None);
        cache.insert(0, key.clone(), &row(0, 1.0));
        assert_eq!(cache.get(0, &key), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn profile_keys_are_bit_exact() {
        let mut a = Profile::new();
        a.set(knn_sim::ItemId::new(1), 0.0);
        let mut b = Profile::new();
        b.set(knn_sim::ItemId::new(1), -0.0);
        // 0.0 == -0.0 under f32 PartialEq, but the keys must differ.
        assert_ne!(CacheKey::profile(&a, 5), CacheKey::profile(&b, 5));
        assert_eq!(CacheKey::profile(&a, 5), CacheKey::profile(&a, 5));
        assert_ne!(CacheKey::profile(&a, 5), CacheKey::profile(&a, 6));
    }
}
