//! Admission control for the update ingest queue.
//!
//! The paper's pipeline assumes a cooperative client; a production
//! serve layer cannot. [`AdmissionConfig`] bounds how many accepted
//! deltas may sit between [`submit`](crate::KnnService::submit_update)
//! and the engine's durable phase-5 log, so a client storm (or a
//! stalled drain — see the circuit breaker in [`crate::BreakerConfig`])
//! turns into **typed, bounded failure** instead of unbounded queue
//! growth.
//!
//! Admission only gates *entry* to the queue. An update accepted with
//! `Ok` keeps the full durability guarantee (applied, parked durable,
//! or returned at shutdown — never silently dropped). The one
//! exception is *lossless* coalescing: a queued delta may be discarded
//! when a later queued `Replace`/`Clear` for the same user supersedes
//! it entirely, which leaves the user's final profile unchanged.

use std::time::Duration;

/// What a submit does when it finds the ingest queue full (after
/// coalescing could not free space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OverloadPolicy {
    /// Fail fast with [`ServeError::Overloaded`](crate::ServeError) —
    /// the error carries a `retry_after_hint` so closed-loop clients
    /// can pace themselves.
    Reject,
    /// Block the submitting thread until space frees up, at most
    /// `deadline` — then fail with
    /// [`ServeError::Overloaded`](crate::ServeError). Blocking applies
    /// backpressure to the producer instead of the caller's retry
    /// loop; the deadline keeps the wait bounded even if the drain
    /// side is wedged.
    Block {
        /// Longest a submit may wait for queue space.
        deadline: Duration,
    },
}

/// Capacity and overload policy of the update ingest queue.
///
/// The default is fully open (no capacity bounds) — the pre-admission
/// behavior. Production deployments should set [`capacity`] to a value
/// sized to the drain cadence (one refinement pass drains everything
/// queued, so capacity ≈ tolerated submit burst per pass).
///
/// [`capacity`]: AdmissionConfig::capacity
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Global bound on pending (accepted but not yet drained) deltas.
    /// `None` is unbounded. A configured value is clamped to ≥ 1.
    pub capacity: Option<usize>,
    /// Per-user bound on pending deltas. `None` is unbounded. A
    /// configured value is clamped to ≥ 1.
    pub per_user_capacity: Option<usize>,
    /// What to do when the queue is full and shedding freed nothing.
    pub policy: OverloadPolicy,
    /// Fraction of `capacity` (clamped to `0.0..=1.0`) above which a
    /// submitted `Replace`/`Clear` opportunistically coalesces the
    /// same user's earlier queued deltas (they are superseded, so
    /// dropping them is lossless). Below the watermark the queue keeps
    /// every delta — history can matter to observers of intermediate
    /// repaired epochs. At full capacity a whole-queue shed sweep
    /// additionally drops every delta superseded by a *later* queued
    /// `Replace`/`Clear`, regardless of user.
    pub shed_watermark: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: None,
            per_user_capacity: None,
            policy: OverloadPolicy::Reject,
            shed_watermark: 0.75,
        }
    }
}

impl AdmissionConfig {
    /// An unbounded queue (the default): every valid submit is
    /// accepted immediately.
    pub fn unbounded() -> Self {
        AdmissionConfig::default()
    }

    /// A bounded queue that rejects at `capacity` with
    /// [`OverloadPolicy::Reject`].
    pub fn bounded(capacity: usize) -> Self {
        AdmissionConfig {
            capacity: Some(capacity.max(1)),
            ..AdmissionConfig::default()
        }
    }

    /// Sets the per-user pending bound.
    pub fn with_per_user(mut self, per_user: usize) -> Self {
        self.per_user_capacity = Some(per_user.max(1));
        self
    }

    /// Sets the overload policy.
    pub fn with_policy(mut self, policy: OverloadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the shed watermark (clamped to `0.0..=1.0` on use).
    pub fn with_shed_watermark(mut self, watermark: f64) -> Self {
        self.shed_watermark = watermark;
        self
    }

    /// The queue length at which opportunistic coalescing starts
    /// (usize::MAX when unbounded — coalescing then never triggers on
    /// the watermark, only the per-user bound can).
    pub(crate) fn watermark_len(&self) -> usize {
        match self.capacity {
            Some(cap) => {
                let cap = cap.max(1);
                let w = self.shed_watermark.clamp(0.0, 1.0);
                ((cap as f64 * w).floor() as usize).min(cap)
            }
            None => usize::MAX,
        }
    }

    /// The effective global capacity (clamped to ≥ 1 when set).
    pub(crate) fn capacity_len(&self) -> usize {
        self.capacity.map_or(usize::MAX, |c| c.max(1))
    }

    /// The effective per-user capacity (clamped to ≥ 1 when set).
    pub(crate) fn per_user_len(&self) -> usize {
        self.per_user_capacity.map_or(usize::MAX, |c| c.max(1))
    }
}
