//! Scatter-gather serving over a sharded engine.
//!
//! One refinement thread drives a [`ShardedEngine`] exactly like the
//! single-engine loop drives a `KnnEngine`, but publishes **one
//! snapshot per shard** after every iteration: shard `s`'s snapshot
//! holds the neighbor lists and profiles of exactly the users the ring
//! assigns to `s` (a network deployment would publish the same
//! projection on each peer). Queries then fan out:
//!
//! - [`neighbors`](ShardedKnnService::neighbors) routes to the user's
//!   owner shard — one cell load, inherently coherent;
//! - [`neighbors_many`](ShardedKnnService::neighbors_many) loads *all*
//!   shard cells and retries until the generation vector is coherent
//!   (all cells on one epoch), so a batch never mixes two graph
//!   generations even while the loop is publishing; validation is
//!   all-or-nothing before any row is materialized;
//! - [`query_profile`](ShardedKnnService::query_profile) scatters the
//!   scan to every shard (each ranks only its owned users) and gathers
//!   the global top-k from the per-shard top-k lists.
//!
//! Updates go through the same validated [`UpdateIngest`] queue; the
//! loop hands drained deltas to the engine, whose router lands each on
//! its user's owner shard's durable log.
//!
//! With [`RefineOptions::repair`] on, a `knn-repair-sharded` worker
//! additionally publishes fast-path repaired generations: it patches a
//! *global* view of the graph and profiles (greedy placement, see
//! [`crate::repair`]), refreshes exactly the owner-shard projections
//! of the rows that changed, and republishes **every** cell at the new
//! epoch — untouched shards re-share their old containers, so the
//! generation vector stays coherent at the cost of a few `Arc` clones.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{JoinHandle, Thread};
use std::time::{Duration, Instant};

use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_shard::ShardedEngine;
use knn_sim::{Measure, Profile, ProfileDelta, ProfileStore};

use std::collections::BTreeMap;

use crate::breaker::Breaker;
use crate::cache::{CacheKey, QueryCache};
use crate::ingest::UpdateIngest;
use crate::repair::{queue_all, repair_touched};
use crate::service::{validate_query, BatchNeighbors};
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::{RefineOptions, ServeError};

/// Deterministic seed of the sharded loop's breaker jitter (distinct
/// from the single-engine loop's so co-located services decorrelate).
const BREAKER_JITTER_SEED: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Retry budget of the sharded batch paths' coherence gather: how hard
/// [`ShardedKnnService::neighbors_many`] and
/// [`ShardedKnnService::query_profile`] may try to assemble one
/// coherent generation vector before degrading.
///
/// The refinement loop publishes the shard cells one after another, so
/// a reader landing mid-publish sees a mixed generation vector for a
/// handful of pointer swaps — almost always resolved by the next load.
/// But with publishers continuously racing readers there is no instant
/// the vector is *observed* coherent, and an unbounded retry loop can
/// spin indefinitely. The budget bounds the retry at `attempts` load
/// rounds and `wall` elapsed time, whichever trips first; on
/// exhaustion the read **degrades** — it answers from the freshest
/// per-shard snapshots observed and flags it via
/// [`BatchNeighbors::degraded`] — instead of spinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceBudget {
    /// Maximum rounds of loading every shard cell (≥ 1; clamped).
    pub attempts: usize,
    /// Wall-clock deadline across all rounds.
    pub wall: Duration,
}

impl Default for CoherenceBudget {
    fn default() -> Self {
        CoherenceBudget {
            attempts: 32,
            wall: Duration::from_millis(20),
        }
    }
}

/// Accumulates per-shard snapshot observations across gather rounds,
/// keyed by epoch. Snapshots are immutable, so a *full* per-shard set
/// collected at one epoch — even across different rounds — IS that
/// coherent generation, whether or not all cells ever held it
/// simultaneously while we looked.
/// Shards seen so far, plus one slot per shard.
type PartialEpoch = (usize, Vec<Option<Arc<Snapshot>>>);

struct EpochGather {
    num_shards: usize,
    /// epoch → partially assembled generation.
    partial: BTreeMap<u64, PartialEpoch>,
}

impl EpochGather {
    fn new(num_shards: usize) -> Self {
        EpochGather {
            num_shards,
            partial: BTreeMap::new(),
        }
    }

    fn offer(&mut self, shard: usize, snap: Arc<Snapshot>) {
        let entry = self
            .partial
            .entry(snap.epoch())
            .or_insert_with(|| (0, vec![None; self.num_shards]));
        if entry.1[shard].is_none() {
            entry.1[shard] = Some(snap);
            entry.0 += 1;
        }
    }

    /// The newest epoch for which every shard has been observed.
    fn complete(&self) -> Option<Vec<Arc<Snapshot>>> {
        self.partial
            .iter()
            .rev()
            .find(|(_, (seen, _))| *seen == self.num_shards)
            .map(|(_, (_, slots))| {
                slots
                    .iter()
                    .map(|s| Arc::clone(s.as_ref().expect("slot counted as seen")))
                    .collect()
            })
    }
}

/// Loads one snapshot per shard, all on one generation if the budget
/// allows. Returns the snapshots and whether the read **degraded**:
/// `false` means one coherent generation vector, `true` means the
/// budget ran out and these are simply the freshest per-shard loads
/// (mixed generations possible — callers flag it to their callers).
fn gather_coherent(cells: &[SnapshotCell], budget: CoherenceBudget) -> (Vec<Arc<Snapshot>>, bool) {
    let load_all = || -> Vec<Arc<Snapshot>> { cells.iter().map(SnapshotCell::load).collect() };
    let coherent = |snaps: &[Arc<Snapshot>]| snaps.windows(2).all(|w| w[0].epoch() == w[1].epoch());
    // Fast path: the overwhelmingly common no-publish-in-flight case,
    // no accumulator allocation.
    let mut latest = load_all();
    if coherent(&latest) {
        return (latest, false);
    }
    let deadline = Instant::now() + budget.wall;
    let mut gather = EpochGather::new(cells.len());
    for (shard, snap) in latest.iter().enumerate() {
        gather.offer(shard, Arc::clone(snap));
    }
    let mut rounds = 1usize;
    while rounds < budget.attempts.max(1) && Instant::now() < deadline {
        std::thread::yield_now();
        latest = load_all();
        rounds += 1;
        for (shard, snap) in latest.iter().enumerate() {
            gather.offer(shard, Arc::clone(snap));
        }
        if let Some(snaps) = gather.complete() {
            return (snaps, false);
        }
    }
    // Budget exhausted: degrade to the freshest loads rather than spin.
    (latest, true)
}

/// The mutable served view both sharded publishers edit under one
/// lock: the global state plus its per-shard projections, kept in
/// sync incrementally by the repair worker and rebuilt wholesale by
/// the refine thread.
#[derive(Debug)]
struct ShardedViewState {
    epoch: u64,
    iteration: u64,
    changed_fraction: f64,
    /// The global graph the repair search runs over.
    graph: Arc<KnnGraph>,
    /// The global profile view.
    profiles: Arc<ProfileStore>,
    /// Shard `s`'s projection of `graph` (full-width, populated only
    /// at owned users).
    shard_graphs: Vec<Arc<KnnGraph>>,
    /// Shard `s`'s projection of `profiles`.
    shard_profiles: Vec<Arc<ProfileStore>>,
    /// Deltas published as repaired but not yet handed to the engine.
    pending_engine: Vec<ProfileDelta>,
}

/// Shared state between the sharded service, its handle, and the loop.
#[derive(Debug)]
struct ShardedShared {
    /// One publication cell per shard, in shard order.
    cells: Vec<SnapshotCell>,
    /// Users per shard, in shard order — the scatter lists.
    owned: Vec<Vec<UserId>>,
    /// `user index → shard`, precomputed from the ring.
    owner_of: Vec<u32>,
    ingest: UpdateIngest,
    stop: AtomicBool,
    published: Mutex<u64>,
    published_cv: Condvar,
    view: Mutex<ShardedViewState>,
    repaired_epochs: AtomicU64,
    queue_failures: AtomicU64,
    /// Generation-keyed read cache shared by every service clone.
    cache: QueryCache,
    /// Coherence-retry budget of the batch read paths.
    coherence: CoherenceBudget,
    /// Breaker state mirrored for `stats()` (see refine.rs).
    breaker_open: AtomicBool,
    breaker_open_ms: AtomicU64,
    refine_thread: OnceLock<Thread>,
}

impl ShardedShared {
    fn notify_epoch(&self, epoch: u64) {
        let mut last = self.published.lock().expect("publish lock poisoned");
        *last = epoch;
        drop(last);
        self.published_cv.notify_all();
    }

    /// Loads one snapshot per shard, on one coherent generation when
    /// the retry budget allows (see [`gather_coherent`]).
    fn coherent_snapshots(&self) -> (Vec<Arc<Snapshot>>, bool) {
        gather_coherent(&self.cells, self.coherence)
    }

    /// Publishes every shard cell from the view's current projections
    /// (call with the view lock held).
    fn publish_view(&self, view: &ShardedViewState, measure: Measure, repaired: bool) {
        for (shard, cell) in self.cells.iter().enumerate() {
            cell.publish(
                Snapshot::new(
                    view.epoch,
                    view.iteration,
                    view.changed_fraction,
                    measure,
                    Arc::clone(&view.shard_graphs[shard]),
                    Arc::clone(&view.shard_profiles[shard]),
                )
                .with_repaired(repaired),
            );
        }
    }
}

/// Builds the per-shard projections of one global state: shard `s`'s
/// containers are full-width (n users) but populated only at the users
/// shard `s` owns.
fn project_shards(
    graph: &KnnGraph,
    profiles: &ProfileStore,
    owned: &[Vec<UserId>],
) -> (Vec<Arc<KnnGraph>>, Vec<Arc<ProfileStore>>) {
    let (n, k) = (graph.num_vertices(), graph.k());
    let mut graphs = Vec::with_capacity(owned.len());
    let mut stores = Vec::with_capacity(owned.len());
    for users in owned {
        let mut g = KnnGraph::new(n, k);
        let mut p = ProfileStore::new(n);
        for &u in users {
            g.set_neighbors(u, graph.neighbors(u).to_vec())
                .expect("projecting a valid graph");
            p.set(u, profiles.get(u).clone());
        }
        graphs.push(Arc::new(g));
        stores.push(Arc::new(p));
    }
    (graphs, stores)
}

/// Starts serving a sharded engine: publishes its current state as
/// per-shard snapshots at generation 0, then hands the engine to a
/// background refinement thread (same lifecycle as [`crate::spawn`],
/// including the optional fast-path repair worker).
///
/// # Errors
///
/// Returns a storage error if the initial profile export fails.
pub fn spawn_sharded(
    engine: ShardedEngine,
    options: RefineOptions,
) -> Result<(ShardedKnnService, ShardedRefineHandle), ServeError> {
    let n = engine.config().num_users();
    let measure = engine.config().measure();
    let num_shards = engine.num_shards();
    let ring = Arc::clone(engine.ring());
    let mut owned: Vec<Vec<UserId>> = vec![Vec::new(); num_shards];
    let mut owner_of = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let owner = ring.owner_of_user(u);
        owner_of.push(owner);
        owned[owner as usize].push(UserId::new(u));
    }

    let profiles = Arc::new(engine.export_profiles()?);
    let graph = Arc::new(engine.graph().clone());
    let (shard_graphs, shard_profiles) = project_shards(&graph, &profiles, &owned);
    let cells = shard_graphs
        .iter()
        .zip(&shard_profiles)
        .map(|(g, p)| {
            SnapshotCell::new(Snapshot::new(
                0,
                engine.iteration(),
                1.0,
                measure,
                Arc::clone(g),
                Arc::clone(p),
            ))
        })
        .collect();

    let shared = Arc::new(ShardedShared {
        cells,
        owned,
        owner_of,
        ingest: UpdateIngest::with_admission(n, options.admission.clone(), options.idle_park),
        stop: AtomicBool::new(false),
        published: Mutex::new(0),
        published_cv: Condvar::new(),
        view: Mutex::new(ShardedViewState {
            epoch: 0,
            iteration: engine.iteration(),
            changed_fraction: 1.0,
            graph,
            profiles: Arc::clone(&profiles),
            shard_graphs,
            shard_profiles,
            pending_engine: Vec::new(),
        }),
        repaired_epochs: AtomicU64::new(0),
        queue_failures: AtomicU64::new(0),
        cache: QueryCache::new(options.query_cache),
        coherence: options.coherence,
        breaker_open: AtomicBool::new(false),
        breaker_open_ms: AtomicU64::new(0),
        refine_thread: OnceLock::new(),
    });

    let worker = if options.repair {
        let worker_shared = Arc::clone(&shared);
        let idle_park = options.idle_park;
        Some(
            std::thread::Builder::new()
                .name("knn-repair-sharded".into())
                .spawn(move || repair_worker(&worker_shared, measure, idle_park))
                .expect("spawning the sharded repair worker"),
        )
    } else {
        None
    };
    let wake = worker.as_ref().map(|w| w.thread().clone());

    let loop_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("knn-refine-sharded".into())
        .spawn(move || refine_loop(engine, profiles, loop_shared, options, worker))
        .expect("spawning the sharded refinement thread");
    let wake = wake.unwrap_or_else(|| thread.thread().clone());
    shared
        .refine_thread
        .set(thread.thread().clone())
        .expect("refine thread registered once");

    let service = ShardedKnnService {
        shared: Arc::clone(&shared),
        counters: Arc::new(Counters::default()),
        wake,
    };
    let handle = ShardedRefineHandle { shared, thread };
    Ok((service, handle))
}

/// The sharded fast-path worker: drain → patch the global view →
/// refresh the owner projections of changed rows → republish every
/// cell at the new (coherent) epoch → forward to the refine thread.
fn repair_worker(shared: &ShardedShared, measure: Measure, idle_park: Duration) {
    while !shared.stop.load(Ordering::Acquire) {
        let drained = shared.ingest.drain();
        if drained.is_empty() {
            std::thread::park_timeout(idle_park);
            continue;
        }
        let epoch = {
            let mut view = shared.view.lock().expect("view lock poisoned");
            let state = &mut *view;
            Arc::make_mut(&mut state.profiles).apply_deltas(&drained);
            let changed = repair_touched(&mut state.graph, &state.profiles, measure, &drained);
            // Refresh exactly the touched projections: changed rows on
            // their owner's graph, changed profiles on their owner's
            // store.
            for &v in &changed {
                let owner = shared.owner_of[v.index()] as usize;
                Arc::make_mut(&mut state.shard_graphs[owner])
                    .set_neighbors(v, state.graph.neighbors(v).to_vec())
                    .expect("projecting a valid repaired row");
            }
            for delta in &drained {
                let owner = shared.owner_of[delta.user.index()] as usize;
                Arc::make_mut(&mut state.shard_profiles[owner])
                    .set(delta.user, state.profiles.get(delta.user).clone());
            }
            state.pending_engine.extend(drained);
            state.epoch += 1;
            shared.publish_view(state, measure, true);
            state.epoch
        };
        shared.repaired_epochs.fetch_add(1, Ordering::Relaxed);
        shared.notify_epoch(epoch);
        if let Some(refine) = shared.refine_thread.get() {
            refine.unpark();
        }
    }
}

fn refine_loop(
    mut engine: ShardedEngine,
    initial_profiles: Arc<ProfileStore>,
    shared: Arc<ShardedShared>,
    options: RefineOptions,
    worker: Option<JoinHandle<()>>,
) -> Result<ShardedEngine, ServeError> {
    let mut parked: Vec<ProfileDelta> = Vec::new();
    let result = refine_loop_inner(
        &mut engine,
        initial_profiles,
        &shared,
        &options,
        &mut parked,
    );
    // Same terminal contract as the single-engine loop (see
    // refine.rs): join the worker, close the queue, attempt *every*
    // accepted-but-unqueued delta, and return what still cannot be
    // persisted instead of dropping it.
    shared.stop.store(true, Ordering::Release);
    if let Some(worker) = worker {
        worker.thread().unpark();
        let _ = worker.join();
    }
    let mut leftovers = {
        let mut view = shared.view.lock().expect("view lock poisoned");
        std::mem::take(&mut view.pending_engine)
    };
    leftovers.extend(shared.ingest.close_and_drain());
    let mut errors = Vec::new();
    queue_all(
        &mut parked,
        leftovers,
        &mut |delta| engine.queue_update(delta).map_err(ServeError::from),
        &mut errors,
    );
    shared
        .queue_failures
        .fetch_add(errors.len() as u64, Ordering::Relaxed);
    if !parked.is_empty() {
        return Err(ServeError::UnpersistedUpdates {
            updates: parked,
            source: errors.pop().map(Box::new),
        });
    }
    result?;
    Ok(engine)
}

fn refine_loop_inner(
    engine: &mut ShardedEngine,
    initial_profiles: Arc<ProfileStore>,
    shared: &ShardedShared,
    options: &RefineOptions,
    parked: &mut Vec<ProfileDelta>,
) -> Result<(), ServeError> {
    let measure = engine.config().measure();
    let mut iterations_run = 0u64;
    let mut converged = false;
    // Engine-exact profile view, maintained incrementally exactly like
    // the single-engine loop (see refine.rs for the contract).
    let mut engine_profiles = initial_profiles;
    let mut unapplied: Vec<ProfileDelta> = Vec::new();
    let mut breaker = Breaker::new(options.breaker, BREAKER_JITTER_SEED);

    while !shared.stop.load(Ordering::Acquire) {
        // Breaker-open passes skip drain/queue entirely, exactly like
        // the single-engine loop (see refine.rs).
        let queued = if breaker.remaining_open(Instant::now()).is_some() {
            Vec::new()
        } else {
            let fresh = if options.repair {
                let mut view = shared.view.lock().expect("view lock poisoned");
                std::mem::take(&mut view.pending_engine)
            } else {
                shared.ingest.drain()
            };

            let attempted = parked.len() + fresh.len();
            let mut errors = Vec::new();
            let queued = queue_all(
                parked,
                fresh,
                &mut |delta| engine.queue_update(delta).map_err(ServeError::from),
                &mut errors,
            );
            if !errors.is_empty() {
                shared
                    .queue_failures
                    .fetch_add(errors.len() as u64, Ordering::Relaxed);
            }
            breaker.record(Instant::now(), attempted, errors.len());
            queued
        };
        let now = Instant::now();
        shared
            .breaker_open
            .store(breaker.is_open(now), Ordering::Relaxed);
        shared.breaker_open_ms.store(
            breaker.open_total(now).as_millis() as u64,
            Ordering::Relaxed,
        );
        if !queued.is_empty() {
            converged = false;
        }
        unapplied.extend(queued);

        let capped = options
            .max_iterations
            .is_some_and(|max| iterations_run >= max);
        if (capped || converged) && unapplied.is_empty() {
            std::thread::park_timeout(options.idle_park);
            continue;
        }

        let sharded_report = engine.run_iteration()?;
        let report = &sharded_report.report;
        iterations_run += 1;
        if let Some(threshold) = options.convergence_threshold {
            if report.changed_fraction < threshold {
                converged = true;
            }
        }

        if report.updates_applied == unapplied.len() as u64 {
            if !unapplied.is_empty() {
                let mut next = (*engine_profiles).clone();
                next.apply_deltas(&unapplied);
                unapplied.clear();
                engine_profiles = Arc::new(next);
            }
        } else {
            unapplied.clear();
            engine_profiles = Arc::new(engine.export_profiles()?);
        }

        // Exact publish: rebuild the global view and all projections
        // from the fresh engine state, re-placing any deltas that are
        // visible in the served view but missed this iteration.
        let epoch = {
            let mut view = shared.view.lock().expect("view lock poisoned");
            let state = &mut *view;
            let mut graph = Arc::new(engine.graph().clone());
            let mut profiles = Arc::clone(&engine_profiles);
            let mut repaired = false;
            if options.repair {
                let still_pending: Vec<ProfileDelta> = parked
                    .iter()
                    .chain(state.pending_engine.iter())
                    .cloned()
                    .collect();
                if !still_pending.is_empty() {
                    Arc::make_mut(&mut profiles).apply_deltas(&still_pending);
                    repair_touched(&mut graph, &profiles, measure, &still_pending);
                    repaired = true;
                }
            }
            let (shard_graphs, shard_profiles) = project_shards(&graph, &profiles, &shared.owned);
            state.graph = graph;
            state.profiles = profiles;
            state.shard_graphs = shard_graphs;
            state.shard_profiles = shard_profiles;
            state.iteration = engine.iteration();
            state.changed_fraction = report.changed_fraction;
            state.epoch += 1;
            // Publish shard by shard; batch readers ride out the short
            // mixed-generation window via coherent_snapshots.
            shared.publish_view(state, measure, repaired);
            state.epoch
        };
        shared.notify_epoch(epoch);
    }
    Ok(())
}

#[derive(Debug, Default)]
struct Counters {
    neighbor_queries: AtomicU64,
    profile_queries: AtomicU64,
}

/// The scatter-gather query front-end over the sharded refinement
/// loop. Cloning is cheap; all clones serve from the same per-shard
/// cells. Answers are identical to a single-shard [`crate::KnnService`]
/// over the same engine state — sharding changes where state lives,
/// never what a query returns.
#[derive(Debug, Clone)]
pub struct ShardedKnnService {
    shared: Arc<ShardedShared>,
    counters: Arc<Counters>,
    /// The thread a submit must wake (repair worker or refine loop).
    wake: Thread,
}

impl ShardedKnnService {
    /// Number of shards served.
    pub fn num_shards(&self) -> usize {
        self.shared.cells.len()
    }

    /// Number of users served.
    pub fn num_users(&self) -> usize {
        self.shared.ingest.num_users()
    }

    fn owner_cell(&self, user: UserId) -> &SnapshotCell {
        &self.shared.cells[self.shared.owner_of[user.index()] as usize]
    }

    /// The top-K list of `user`, read from its owner shard's snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownUser`] for out-of-range ids.
    pub fn neighbors(&self, user: UserId) -> Result<Vec<Neighbor>, ServeError> {
        self.counters
            .neighbor_queries
            .fetch_add(1, Ordering::Relaxed);
        if user.index() >= self.num_users() {
            return Err(ServeError::UnknownUser {
                user,
                num_users: self.num_users(),
            });
        }
        let snapshot = self.owner_cell(user).load();
        let generation = snapshot.generation();
        let key = CacheKey::Neighbors(user);
        if let Some(hit) = self.shared.cache.get(generation, &key) {
            return Ok(hit);
        }
        let answer = snapshot.neighbors(user)?.to_vec();
        self.shared.cache.insert(generation, key, &answer);
        Ok(answer)
    }

    /// The top-K lists of several users, scatter-gathered across the
    /// shards from **one coherent generation vector**: every row comes
    /// from a snapshot of the same generation, which the returned
    /// [`BatchNeighbors::generation`] names.
    ///
    /// # Errors
    ///
    /// All-or-nothing like the unsharded batch call: every id is
    /// validated before any row is materialized, and the first
    /// out-of-range id fails the whole batch with
    /// [`ServeError::UnknownUser`].
    pub fn neighbors_many(&self, users: &[UserId]) -> Result<BatchNeighbors, ServeError> {
        self.counters
            .neighbor_queries
            .fetch_add(users.len() as u64, Ordering::Relaxed);
        let num_users = self.num_users();
        if let Some(&bad) = users.iter().find(|u| u.index() >= num_users) {
            return Err(ServeError::UnknownUser {
                user: bad,
                num_users,
            });
        }
        let (snaps, degraded) = self.shared.coherent_snapshots();
        Ok(BatchNeighbors {
            // Coherent: every shard is on this generation. Degraded:
            // name the newest generation any row came from.
            generation: snaps
                .iter()
                .map(|s| s.generation())
                .max()
                .expect("at least one shard"),
            degraded,
            results: users
                .iter()
                .map(|&u| {
                    snaps[self.shared.owner_of[u.index()] as usize]
                        .neighbors(u)
                        .expect("validated above")
                        .to_vec()
                })
                .collect(),
        })
    }

    /// Exact top-`k` users for an ad-hoc `query` profile: each shard
    /// ranks the users it owns, the gather step merges the per-shard
    /// top-`k` lists. Every user is a candidate on exactly one shard,
    /// so the merged list equals the unsharded full scan.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NonFiniteQuery`] if the query profile
    /// carries a NaN/infinite weight.
    pub fn query_profile(&self, query: &Profile, k: usize) -> Result<Vec<Neighbor>, ServeError> {
        validate_query(query)?;
        self.counters
            .profile_queries
            .fetch_add(1, Ordering::Relaxed);
        let (snaps, degraded) = self.shared.coherent_snapshots();
        let generation = snaps
            .iter()
            .map(|s| s.generation())
            .max()
            .expect("at least one shard");
        let key = CacheKey::profile(query, k);
        // Degraded reads mix generations: never cache them, and never
        // answer from cache entries that belong to one clean
        // generation of a different state.
        if !degraded {
            if let Some(hit) = self.shared.cache.get(generation, &key) {
                return Ok(hit);
            }
        }
        let mut merged: Vec<Neighbor> = snaps
            .iter()
            .zip(&self.shared.owned)
            .flat_map(|(snap, users)| snap.rank_candidates(query, users.iter().copied(), k))
            .collect();
        merged.sort_unstable();
        merged.truncate(k);
        if !degraded {
            self.shared.cache.insert(generation, key, &merged);
        }
        Ok(merged)
    }

    /// Queues a profile update; the refinement loop routes it to its
    /// user's owner shard's durable log before the next iteration
    /// applies it (with repair on, the repair worker additionally
    /// publishes it within milliseconds). Same validation and
    /// visibility contract as [`crate::KnnService::submit_update`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownUser`], [`ServeError::NonFiniteWeight`], or
    /// [`ServeError::Stopped`] after shutdown.
    pub fn submit_update(&self, delta: ProfileDelta) -> Result<(), ServeError> {
        self.shared.ingest.submit(delta)?;
        self.wake.unpark();
        Ok(())
    }

    /// Current counters (epoch is the latest fully published
    /// generation).
    pub fn stats(&self) -> crate::ServiceStats {
        crate::ServiceStats {
            neighbor_queries: self.counters.neighbor_queries.load(Ordering::Relaxed),
            profile_queries: self.counters.profile_queries.load(Ordering::Relaxed),
            updates_submitted: self.shared.ingest.submitted(),
            updates_drained: self.shared.ingest.drained(),
            snapshot_epoch: *self.shared.published.lock().expect("publish lock poisoned"),
            repaired_epochs: self.shared.repaired_epochs.load(Ordering::Relaxed),
            queue_failures: self.shared.queue_failures.load(Ordering::Relaxed),
            rejected: self.shared.ingest.rejected(),
            shed: self.shared.ingest.shed(),
            coalesced: self.shared.ingest.coalesced(),
            peak_pending: self.shared.ingest.peak_pending(),
            breaker_open: self.shared.breaker_open.load(Ordering::Relaxed),
            breaker_open_ms: self.shared.breaker_open_ms.load(Ordering::Relaxed),
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
        }
    }
}

/// Control handle of the sharded refinement loop — the sharded twin of
/// [`crate::RefineHandle`].
#[derive(Debug)]
pub struct ShardedRefineHandle {
    shared: Arc<ShardedShared>,
    thread: JoinHandle<Result<ShardedEngine, ServeError>>,
}

impl ShardedRefineHandle {
    /// Stops the loop after its current iteration and returns the
    /// engine.
    ///
    /// # Errors
    ///
    /// Propagates an engine error that terminated the loop early,
    /// [`ServeError::RefineLoopPanicked`] if the thread panicked, or
    /// [`ServeError::UnpersistedUpdates`] with every accepted update
    /// that could not reach a durable log.
    pub fn stop(self) -> Result<ShardedEngine, ServeError> {
        self.shared.stop.store(true, Ordering::Release);
        self.thread.thread().unpark();
        self.thread
            .join()
            .map_err(|_| ServeError::RefineLoopPanicked)?
    }

    /// Whether the loop thread is still alive.
    pub fn is_running(&self) -> bool {
        !self.thread.is_finished()
    }

    /// Blocks until generation `epoch` (or newer) is fully published
    /// on every shard, or `timeout` elapses.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last = self.shared.published.lock().expect("publish lock poisoned");
        while *last < epoch {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, wait) = self
                .shared
                .published_cv
                .wait_timeout(last, remaining)
                .expect("publish lock poisoned");
            last = guard;
            if wait.timed_out() && *last < epoch {
                return false;
            }
        }
        true
    }

    /// The latest fully published generation.
    pub fn current_epoch(&self) -> u64 {
        *self.shared.published.lock().expect("publish lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_sim::{ItemId, Measure};

    fn snapshot(epoch: u64) -> Snapshot {
        let mut graph = KnnGraph::new(2, 1);
        graph.insert(UserId::new(0), Neighbor::new(UserId::new(1), 0.5));
        let mut profiles = ProfileStore::new(2);
        let mut p = Profile::new();
        p.set(ItemId::new(0), 1.0);
        profiles.set(UserId::new(0), p);
        Snapshot::new(
            epoch,
            epoch,
            1.0,
            Measure::Cosine,
            Arc::new(graph),
            Arc::new(profiles),
        )
    }

    #[test]
    fn gather_assembles_coherent_epoch_across_rounds() {
        // Mid-publish observation order: shard 0 already at epoch 6,
        // shard 1 still at 5 — then shard 1 catches up. The full
        // epoch-6 set is assembled from observations of *two* rounds.
        let mut gather = EpochGather::new(2);
        gather.offer(0, Arc::new(snapshot(6)));
        gather.offer(1, Arc::new(snapshot(5)));
        assert!(gather.complete().is_none(), "no epoch has both shards");
        gather.offer(0, Arc::new(snapshot(6)));
        gather.offer(1, Arc::new(snapshot(6)));
        let snaps = gather.complete().expect("epoch 6 complete");
        assert!(snaps.iter().all(|s| s.epoch() == 6));
    }

    #[test]
    fn gather_prefers_newest_complete_epoch() {
        let mut gather = EpochGather::new(2);
        for epoch in [3, 4] {
            gather.offer(0, Arc::new(snapshot(epoch)));
            gather.offer(1, Arc::new(snapshot(epoch)));
        }
        let snaps = gather.complete().expect("two complete epochs");
        assert!(snaps.iter().all(|s| s.epoch() == 4));
    }

    #[test]
    fn coherent_cells_take_the_fast_path() {
        let cells = vec![
            SnapshotCell::new(snapshot(2)),
            SnapshotCell::new(snapshot(2)),
        ];
        let (snaps, degraded) = gather_coherent(&cells, CoherenceBudget::default());
        assert!(!degraded);
        assert!(snaps.iter().all(|s| s.epoch() == 2));
    }

    /// Regression for the unbounded coherence-retry loop: with a
    /// publisher keeping the cells *permanently* incoherent (shard 0
    /// only ever holds odd epochs, shard 1 only even), the old
    /// implementation spun forever. The bounded gather must return a
    /// degraded read within its budget.
    #[test]
    fn gather_degrades_instead_of_spinning_under_racing_publisher() {
        let cells = Arc::new(vec![
            SnapshotCell::new(snapshot(1)),
            SnapshotCell::new(snapshot(2)),
        ]);
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let cells = Arc::clone(&cells);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut epoch = 3u64;
                while !stop.load(Ordering::Relaxed) {
                    cells[0].publish(snapshot(epoch));
                    cells[1].publish(snapshot(epoch + 1));
                    epoch += 2;
                }
            })
        };
        let budget = CoherenceBudget {
            attempts: 64,
            wall: Duration::from_millis(50),
        };
        let started = Instant::now();
        let (snaps, degraded) = gather_coherent(&cells, budget);
        let elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        publisher.join().unwrap();
        assert!(degraded, "permanently incoherent cells must degrade");
        assert_eq!(snaps.len(), 2, "degraded read still answers per shard");
        assert!(
            elapsed < Duration::from_secs(2),
            "must return within the budget, took {elapsed:?}"
        );
    }

    /// A publisher racing reads but *pausing* lets the gather assemble
    /// a coherent set within budget (no degradation on the happy path).
    #[test]
    fn gather_recovers_coherence_when_publisher_finishes() {
        let cells = vec![
            SnapshotCell::new(snapshot(1)),
            SnapshotCell::new(snapshot(2)),
        ];
        // Shard 0 catches up before the reader arrives.
        cells[0].publish(snapshot(2));
        let (snaps, degraded) = gather_coherent(&cells, CoherenceBudget::default());
        assert!(!degraded);
        assert!(snaps.iter().all(|s| s.epoch() == 2));
    }
}
