//! Scatter-gather serving over a sharded engine.
//!
//! One refinement thread drives a [`ShardedEngine`] exactly like the
//! single-engine loop drives a `KnnEngine`, but publishes **one
//! snapshot per shard** after every iteration: shard `s`'s snapshot
//! holds the neighbor lists and profiles of exactly the users the ring
//! assigns to `s` (a network deployment would publish the same
//! projection on each peer). Queries then fan out:
//!
//! - [`neighbors`](ShardedKnnService::neighbors) routes to the user's
//!   owner shard — one cell load, inherently coherent;
//! - [`neighbors_many`](ShardedKnnService::neighbors_many) loads *all*
//!   shard cells and retries until the generation vector is coherent
//!   (all cells on one epoch), so a batch never mixes two graph
//!   generations even while the loop is publishing; validation is
//!   all-or-nothing before any row is materialized;
//! - [`query_profile`](ShardedKnnService::query_profile) scatters the
//!   scan to every shard (each ranks only its owned users) and gathers
//!   the global top-k from the per-shard top-k lists.
//!
//! Updates go through the same validated [`UpdateIngest`] queue; the
//! loop hands drained deltas to the engine, whose router lands each on
//! its user's owner shard's durable log.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{JoinHandle, Thread};
use std::time::{Duration, Instant};

use knn_graph::{KnnGraph, Neighbor, UserId};
use knn_shard::ShardedEngine;
use knn_sim::{Measure, Profile, ProfileDelta, ProfileStore};

use crate::ingest::UpdateIngest;
use crate::service::BatchNeighbors;
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::{RefineOptions, ServeError};

/// Shared state between the sharded service, its handle, and the loop.
#[derive(Debug)]
struct ShardedShared {
    /// One publication cell per shard, in shard order.
    cells: Vec<SnapshotCell>,
    /// Users per shard, in shard order — the scatter lists.
    owned: Vec<Vec<UserId>>,
    /// `user index → shard`, precomputed from the ring.
    owner_of: Vec<u32>,
    ingest: UpdateIngest,
    stop: AtomicBool,
    published: Mutex<u64>,
    published_cv: Condvar,
}

impl ShardedShared {
    fn notify_epoch(&self, epoch: u64) {
        let mut last = self.published.lock().expect("publish lock poisoned");
        *last = epoch;
        drop(last);
        self.published_cv.notify_all();
    }

    /// Loads one snapshot per shard, all on the same generation. The
    /// loop publishes the cells one after another, so a reader landing
    /// mid-publish simply reloads — the window is a handful of pointer
    /// swaps.
    fn coherent_snapshots(&self) -> Vec<Arc<Snapshot>> {
        loop {
            let snaps: Vec<Arc<Snapshot>> = self.cells.iter().map(SnapshotCell::load).collect();
            if snaps.windows(2).all(|w| w[0].epoch() == w[1].epoch()) {
                return snaps;
            }
            std::thread::yield_now();
        }
    }
}

/// Builds the per-shard projections of one engine state: shard `s`'s
/// snapshot carries full-width (n-user) containers populated only at
/// the users shard `s` owns.
fn shard_snapshots(
    epoch: u64,
    iteration: u64,
    changed_fraction: f64,
    measure: Measure,
    graph: &KnnGraph,
    profiles: &ProfileStore,
    owned: &[Vec<UserId>],
) -> Vec<Snapshot> {
    let (n, k) = (graph.num_vertices(), graph.k());
    owned
        .iter()
        .map(|users| {
            let mut g = KnnGraph::new(n, k);
            let mut p = ProfileStore::new(n);
            for &u in users {
                g.set_neighbors(u, graph.neighbors(u).to_vec())
                    .expect("projecting a valid graph");
                p.set(u, profiles.get(u).clone());
            }
            Snapshot::new(
                epoch,
                iteration,
                changed_fraction,
                measure,
                Arc::new(g),
                Arc::new(p),
            )
        })
        .collect()
}

/// Starts serving a sharded engine: publishes its current state as
/// per-shard snapshots at generation 0, then hands the engine to a
/// background refinement thread (same lifecycle as [`crate::spawn`]).
///
/// # Errors
///
/// Returns a storage error if the initial profile export fails.
pub fn spawn_sharded(
    engine: ShardedEngine,
    options: RefineOptions,
) -> Result<(ShardedKnnService, ShardedRefineHandle), ServeError> {
    let n = engine.config().num_users();
    let num_shards = engine.num_shards();
    let ring = Arc::clone(engine.ring());
    let mut owned: Vec<Vec<UserId>> = vec![Vec::new(); num_shards];
    let mut owner_of = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let owner = ring.owner_of_user(u);
        owner_of.push(owner);
        owned[owner as usize].push(UserId::new(u));
    }

    let profiles = engine.export_profiles()?;
    let cells = shard_snapshots(
        0,
        engine.iteration(),
        1.0,
        engine.config().measure(),
        engine.graph(),
        &profiles,
        &owned,
    )
    .into_iter()
    .map(SnapshotCell::new)
    .collect();

    let shared = Arc::new(ShardedShared {
        cells,
        owned,
        owner_of,
        ingest: UpdateIngest::new(n),
        stop: AtomicBool::new(false),
        published: Mutex::new(0),
        published_cv: Condvar::new(),
    });

    let loop_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("knn-refine-sharded".into())
        .spawn(move || refine_loop(engine, profiles, loop_shared, options))
        .expect("spawning the sharded refinement thread");

    let service = ShardedKnnService {
        shared: Arc::clone(&shared),
        counters: Arc::new(Counters::default()),
        refine_thread: thread.thread().clone(),
    };
    let handle = ShardedRefineHandle { shared, thread };
    Ok((service, handle))
}

fn refine_loop(
    mut engine: ShardedEngine,
    profiles: ProfileStore,
    shared: Arc<ShardedShared>,
    options: RefineOptions,
) -> Result<ShardedEngine, ServeError> {
    let result = refine_loop_inner(&mut engine, profiles, &shared, &options);
    // Same terminal contract as the single-engine loop: accepted
    // updates are never dropped — stragglers are parked in the owner
    // shards' durable logs on the way out.
    let stragglers = shared.ingest.close_and_drain();
    for delta in &stragglers {
        engine.queue_update(delta)?;
    }
    result?;
    Ok(engine)
}

fn refine_loop_inner(
    engine: &mut ShardedEngine,
    mut profiles: ProfileStore,
    shared: &ShardedShared,
    options: &RefineOptions,
) -> Result<(), ServeError> {
    let mut epoch = 0u64;
    let mut iterations_run = 0u64;
    let mut converged = false;
    let mut unapplied: Vec<ProfileDelta> = Vec::new();

    while !shared.stop.load(Ordering::Acquire) {
        let drained = shared.ingest.drain();
        if !drained.is_empty() {
            converged = false;
            for delta in &drained {
                engine.queue_update(delta)?;
            }
            unapplied.extend(drained);
        }

        let capped = options
            .max_iterations
            .is_some_and(|max| iterations_run >= max);
        if (capped || converged) && unapplied.is_empty() {
            std::thread::park_timeout(options.idle_park);
            continue;
        }

        let sharded_report = engine.run_iteration()?;
        let report = &sharded_report.report;
        iterations_run += 1;
        if let Some(threshold) = options.convergence_threshold {
            if report.changed_fraction < threshold {
                converged = true;
            }
        }

        // Served profile view, maintained incrementally exactly like
        // the single-engine loop (see refine.rs for the contract).
        if report.updates_applied == unapplied.len() as u64 {
            if !unapplied.is_empty() {
                profiles.apply_deltas(&unapplied);
                unapplied.clear();
            }
        } else {
            unapplied.clear();
            profiles = engine.export_profiles()?;
        }

        epoch += 1;
        let snapshots = shard_snapshots(
            epoch,
            engine.iteration(),
            report.changed_fraction,
            engine.config().measure(),
            engine.graph(),
            &profiles,
            &shared.owned,
        );
        // Publish shard by shard; batch readers ride out the short
        // mixed-generation window via coherent_snapshots.
        for (cell, snapshot) in shared.cells.iter().zip(snapshots) {
            cell.publish(snapshot);
        }
        shared.notify_epoch(epoch);
    }
    Ok(())
}

#[derive(Debug, Default)]
struct Counters {
    neighbor_queries: AtomicU64,
    profile_queries: AtomicU64,
}

/// The scatter-gather query front-end over the sharded refinement
/// loop. Cloning is cheap; all clones serve from the same per-shard
/// cells. Answers are identical to a single-shard [`crate::KnnService`]
/// over the same engine state — sharding changes where state lives,
/// never what a query returns.
#[derive(Debug, Clone)]
pub struct ShardedKnnService {
    shared: Arc<ShardedShared>,
    counters: Arc<Counters>,
    refine_thread: Thread,
}

impl ShardedKnnService {
    /// Number of shards served.
    pub fn num_shards(&self) -> usize {
        self.shared.cells.len()
    }

    /// Number of users served.
    pub fn num_users(&self) -> usize {
        self.shared.ingest.num_users()
    }

    fn owner_cell(&self, user: UserId) -> &SnapshotCell {
        &self.shared.cells[self.shared.owner_of[user.index()] as usize]
    }

    /// The top-K list of `user`, read from its owner shard's snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownUser`] for out-of-range ids.
    pub fn neighbors(&self, user: UserId) -> Result<Vec<Neighbor>, ServeError> {
        self.counters
            .neighbor_queries
            .fetch_add(1, Ordering::Relaxed);
        if user.index() >= self.num_users() {
            return Err(ServeError::UnknownUser {
                user,
                num_users: self.num_users(),
            });
        }
        let snapshot = self.owner_cell(user).load();
        Ok(snapshot.neighbors(user)?.to_vec())
    }

    /// The top-K lists of several users, scatter-gathered across the
    /// shards from **one coherent generation vector**: every row comes
    /// from a snapshot of the same generation, which the returned
    /// [`BatchNeighbors::generation`] names.
    ///
    /// # Errors
    ///
    /// All-or-nothing like the unsharded batch call: every id is
    /// validated before any row is materialized, and the first
    /// out-of-range id fails the whole batch with
    /// [`ServeError::UnknownUser`].
    pub fn neighbors_many(&self, users: &[UserId]) -> Result<BatchNeighbors, ServeError> {
        self.counters
            .neighbor_queries
            .fetch_add(users.len() as u64, Ordering::Relaxed);
        let num_users = self.num_users();
        if let Some(&bad) = users.iter().find(|u| u.index() >= num_users) {
            return Err(ServeError::UnknownUser {
                user: bad,
                num_users,
            });
        }
        let snaps = self.shared.coherent_snapshots();
        Ok(BatchNeighbors {
            generation: snaps[0].generation(),
            results: users
                .iter()
                .map(|&u| {
                    snaps[self.shared.owner_of[u.index()] as usize]
                        .neighbors(u)
                        .expect("validated above")
                        .to_vec()
                })
                .collect(),
        })
    }

    /// Exact top-`k` users for an ad-hoc `query` profile: each shard
    /// ranks the users it owns, the gather step merges the per-shard
    /// top-`k` lists. Every user is a candidate on exactly one shard,
    /// so the merged list equals the unsharded full scan.
    pub fn query_profile(&self, query: &Profile, k: usize) -> Vec<Neighbor> {
        self.counters
            .profile_queries
            .fetch_add(1, Ordering::Relaxed);
        let snaps = self.shared.coherent_snapshots();
        let mut merged: Vec<Neighbor> = snaps
            .iter()
            .zip(&self.shared.owned)
            .flat_map(|(snap, users)| snap.rank_candidates(query, users.iter().copied(), k))
            .collect();
        merged.sort_unstable();
        merged.truncate(k);
        merged
    }

    /// Queues a profile update; the refinement loop routes it to its
    /// user's owner shard's durable log before the next iteration
    /// applies it. Same validation and visibility contract as
    /// [`crate::KnnService::submit_update`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownUser`], [`ServeError::NonFiniteWeight`], or
    /// [`ServeError::Stopped`] after shutdown.
    pub fn submit_update(&self, delta: ProfileDelta) -> Result<(), ServeError> {
        self.shared.ingest.submit(delta)?;
        self.refine_thread.unpark();
        Ok(())
    }

    /// Current counters (epoch is the latest fully published
    /// generation).
    pub fn stats(&self) -> crate::ServiceStats {
        crate::ServiceStats {
            neighbor_queries: self.counters.neighbor_queries.load(Ordering::Relaxed),
            profile_queries: self.counters.profile_queries.load(Ordering::Relaxed),
            updates_submitted: self.shared.ingest.submitted(),
            updates_drained: self.shared.ingest.drained(),
            snapshot_epoch: *self.shared.published.lock().expect("publish lock poisoned"),
        }
    }
}

/// Control handle of the sharded refinement loop — the sharded twin of
/// [`crate::RefineHandle`].
#[derive(Debug)]
pub struct ShardedRefineHandle {
    shared: Arc<ShardedShared>,
    thread: JoinHandle<Result<ShardedEngine, ServeError>>,
}

impl ShardedRefineHandle {
    /// Stops the loop after its current iteration and returns the
    /// engine.
    ///
    /// # Errors
    ///
    /// Propagates an engine error that terminated the loop early, or
    /// [`ServeError::RefineLoopPanicked`] if the thread panicked.
    pub fn stop(self) -> Result<ShardedEngine, ServeError> {
        self.shared.stop.store(true, Ordering::Release);
        self.thread.thread().unpark();
        self.thread
            .join()
            .map_err(|_| ServeError::RefineLoopPanicked)?
    }

    /// Whether the loop thread is still alive.
    pub fn is_running(&self) -> bool {
        !self.thread.is_finished()
    }

    /// Blocks until generation `epoch` (or newer) is fully published
    /// on every shard, or `timeout` elapses.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last = self.shared.published.lock().expect("publish lock poisoned");
        while *last < epoch {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, wait) = self
                .shared
                .published_cv
                .wait_timeout(last, remaining)
                .expect("publish lock poisoned");
            last = guard;
            if wait.timed_out() && *last < epoch {
                return false;
            }
        }
        true
    }

    /// The latest fully published generation.
    pub fn current_epoch(&self) -> u64 {
        *self.shared.published.lock().expect("publish lock poisoned")
    }
}
