//! The online update queue feeding the engine's phase-5 path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use knn_sim::ProfileDelta;

use crate::ServeError;

/// Accepts profile updates from any thread and hands them to the
/// refinement loop, which drains the queue before each iteration and
/// feeds the deltas into [`knn_core::KnnEngine::queue_update`] — the
/// engine's lazy phase-5 queue. An update submitted while iteration
/// `t` runs is therefore applied to `P` at the end of the iteration
/// that drains it and influences similarity scores from the following
/// iteration on, exactly the paper's eventual-visibility contract.
#[derive(Debug)]
pub struct UpdateIngest {
    num_users: usize,
    queue: Mutex<Queue>,
    submitted: AtomicU64,
    drained: AtomicU64,
}

/// The lock-protected queue state. `closed` lives under the same lock
/// as the deque so a submit racing a close can never slip an update
/// in after the closing drain has taken everything.
#[derive(Debug, Default)]
struct Queue {
    items: VecDeque<ProfileDelta>,
    closed: bool,
}

impl UpdateIngest {
    /// An empty queue for a `num_users`-user engine.
    pub fn new(num_users: usize) -> Self {
        UpdateIngest {
            num_users,
            queue: Mutex::new(Queue::default()),
            submitted: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Validates and enqueues one update.
    ///
    /// Validation happens here, synchronously, so the caller gets the
    /// error instead of the background thread: the user must be in
    /// range and `Set`/`Replace` weights finite.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownUser`] or [`ServeError::NonFiniteWeight`]
    /// for invalid updates, [`ServeError::Stopped`] once the queue has
    /// been closed by a terminating refinement loop.
    pub fn submit(&self, delta: ProfileDelta) -> Result<(), ServeError> {
        self.validate(&delta)?;
        let mut queue = self.queue.lock().expect("ingest lock poisoned");
        if queue.closed {
            return Err(ServeError::Stopped);
        }
        queue.items.push_back(delta);
        drop(queue);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn validate(&self, delta: &ProfileDelta) -> Result<(), ServeError> {
        if delta.user.index() >= self.num_users {
            return Err(ServeError::UnknownUser {
                user: delta.user,
                num_users: self.num_users,
            });
        }
        // `DeltaOp` is #[non_exhaustive], so an exhaustive match here
        // is impossible — the finite-weight rule lives in
        // `DeltaOp::weights_finite`, whose in-crate match *is*
        // exhaustive: adding a weight-carrying variant breaks the
        // build there instead of silently bypassing this check.
        if !delta.op.weights_finite() {
            return Err(ServeError::NonFiniteWeight { user: delta.user });
        }
        Ok(())
    }

    /// Removes and returns every queued update, in submission order.
    pub fn drain(&self) -> Vec<ProfileDelta> {
        let drained: Vec<ProfileDelta> = self
            .queue
            .lock()
            .expect("ingest lock poisoned")
            .items
            .drain(..)
            .collect();
        self.drained
            .fetch_add(drained.len() as u64, Ordering::Relaxed);
        drained
    }

    /// Closes the queue (future submits fail with
    /// [`ServeError::Stopped`]) and returns everything still queued.
    /// Close and drain happen under one lock acquisition, so no update
    /// accepted with `Ok` can slip past this call.
    pub fn close_and_drain(&self) -> Vec<ProfileDelta> {
        let mut queue = self.queue.lock().expect("ingest lock poisoned");
        queue.closed = true;
        let drained: Vec<ProfileDelta> = queue.items.drain(..).collect();
        drop(queue);
        self.drained
            .fetch_add(drained.len() as u64, Ordering::Relaxed);
        drained
    }

    /// Updates accepted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Updates already handed to the engine.
    pub fn drained(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }

    /// Updates still waiting in this queue (not yet handed to the
    /// engine; the engine's own phase-5 log may hold more).
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("ingest lock poisoned").items.len()
    }

    /// The user-id range accepted by [`submit`](UpdateIngest::submit).
    pub fn num_users(&self) -> usize {
        self.num_users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::UserId;
    use knn_sim::{ItemId, Profile};

    #[test]
    fn fifo_submit_and_drain() {
        let q = UpdateIngest::new(10);
        q.submit(ProfileDelta::set(UserId::new(1), ItemId::new(5), 1.0))
            .unwrap();
        q.submit(ProfileDelta::set(UserId::new(2), ItemId::new(6), 2.0))
            .unwrap();
        assert_eq!(q.pending(), 2);
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].user, UserId::new(1));
        assert_eq!(drained[1].user, UserId::new(2));
        assert_eq!(q.pending(), 0);
        assert_eq!(q.submitted(), 2);
        assert_eq!(q.drained(), 2);
    }

    #[test]
    fn close_rejects_later_submits_and_returns_stragglers() {
        let q = UpdateIngest::new(10);
        q.submit(ProfileDelta::set(UserId::new(1), ItemId::new(5), 1.0))
            .unwrap();
        let stragglers = q.close_and_drain();
        assert_eq!(stragglers.len(), 1);
        let err = q.submit(ProfileDelta::set(UserId::new(2), ItemId::new(6), 2.0));
        assert!(matches!(err, Err(ServeError::Stopped)));
        assert_eq!(q.pending(), 0);
        assert_eq!(q.submitted(), 1, "a rejected submit is not counted");
    }

    #[test]
    fn rejects_out_of_range_user() {
        let q = UpdateIngest::new(3);
        let err = q.submit(ProfileDelta::set(UserId::new(3), ItemId::new(0), 1.0));
        assert!(matches!(err, Err(ServeError::UnknownUser { .. })));
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn rejects_non_finite_weights() {
        let q = UpdateIngest::new(3);
        let bad_set = ProfileDelta::set(UserId::new(0), ItemId::new(0), f32::NAN);
        assert!(matches!(
            q.submit(bad_set),
            Err(ServeError::NonFiniteWeight { .. })
        ));
        // A Replace built through the safe Profile API is always finite.
        let mut p = Profile::new();
        p.set(ItemId::new(1), 2.0);
        q.submit(ProfileDelta::replace(UserId::new(0), p)).unwrap();
        // A Replace smuggling a NaN through the unchecked constructor
        // is still caught — the check walks every carried weight.
        let poisoned = Profile::from_sorted_pairs_unchecked(vec![(ItemId::new(1), f32::NAN)]);
        assert!(matches!(
            q.submit(ProfileDelta::replace(UserId::new(0), poisoned)),
            Err(ServeError::NonFiniteWeight { .. })
        ));
        // Remove and Clear are always valid for in-range users.
        q.submit(ProfileDelta::remove(UserId::new(0), ItemId::new(1)))
            .unwrap();
        q.submit(ProfileDelta::new(UserId::new(0), knn_sim::DeltaOp::Clear))
            .unwrap();
    }
}
