//! The online update queue feeding the engine's phase-5 path.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use knn_graph::UserId;
use knn_sim::{DeltaOp, ProfileDelta};

use crate::admission::{AdmissionConfig, OverloadPolicy};
use crate::ServeError;

/// Accepts profile updates from any thread and hands them to the
/// refinement loop, which drains the queue before each iteration and
/// feeds the deltas into [`knn_core::KnnEngine::queue_update`] — the
/// engine's lazy phase-5 queue. An update submitted while iteration
/// `t` runs is therefore applied to `P` at the end of the iteration
/// that drains it and influences similarity scores from the following
/// iteration on, exactly the paper's eventual-visibility contract.
///
/// # Admission control
///
/// With a bounded [`AdmissionConfig`] the queue stops accepting at
/// capacity instead of growing without bound while the drain side is
/// slow or wedged. Above the shed watermark, a submitted
/// `Replace`/`Clear` first coalesces the same user's earlier queued
/// deltas (they are fully superseded, so dropping them never changes
/// the user's final profile); at capacity a whole-queue shed sweep
/// drops every delta superseded by a later queued `Replace`/`Clear`.
/// Only when shedding frees nothing does the
/// [`OverloadPolicy`] apply: reject with
/// [`ServeError::Overloaded`], or block until space frees (bounded by
/// the policy's deadline, then `Overloaded`). A rejected submit was
/// never accepted — the durability guarantee covers exactly the
/// submits that returned `Ok`.
#[derive(Debug)]
pub struct UpdateIngest {
    num_users: usize,
    admission: AdmissionConfig,
    /// `retry_after_hint` carried by [`ServeError::Overloaded`]: one
    /// drain cadence of the loop this queue feeds.
    retry_hint: Duration,
    queue: Mutex<Queue>,
    /// Signalled whenever queue space frees (drain, shed) or the
    /// queue closes — wakes submitters blocked by
    /// [`OverloadPolicy::Block`].
    space: Condvar,
    submitted: AtomicU64,
    drained: AtomicU64,
    rejected: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
    peak_pending: AtomicU64,
}

/// The lock-protected queue state. `closed` lives under the same lock
/// as the deque so a submit racing a close can never slip an update
/// in after the closing drain has taken everything.
#[derive(Debug, Default)]
struct Queue {
    items: VecDeque<ProfileDelta>,
    /// Pending deltas per user (entries are removed at zero).
    per_user: HashMap<UserId, u32>,
    closed: bool,
}

/// Whether `op` fully supersedes every earlier delta of the same user
/// (the resulting profile no longer depends on them).
fn supersedes(op: &DeltaOp) -> bool {
    matches!(op, DeltaOp::Replace(_) | DeltaOp::Clear)
}

impl Queue {
    fn pending_of(&self, user: UserId) -> usize {
        self.per_user.get(&user).copied().unwrap_or(0) as usize
    }

    fn push(&mut self, delta: ProfileDelta) {
        *self.per_user.entry(delta.user).or_insert(0) += 1;
        self.items.push_back(delta);
    }

    /// Drops every queued delta of `user` (the caller is about to push
    /// a superseding `Replace`/`Clear` for it). Returns how many were
    /// removed. Relative order of the surviving deltas is unchanged.
    fn coalesce_user(&mut self, user: UserId) -> u64 {
        let before = self.items.len();
        self.items.retain(|d| d.user != user);
        let removed = before - self.items.len();
        if removed > 0 {
            self.per_user.remove(&user);
        }
        removed as u64
    }

    /// Whole-queue shed sweep: drops every delta superseded by a
    /// *later* queued `Replace`/`Clear` of the same user. Lossless for
    /// every user's final profile. Returns how many were dropped.
    fn shed_sweep(&mut self) -> u64 {
        let mut last_supersede: HashMap<UserId, usize> = HashMap::new();
        for (i, d) in self.items.iter().enumerate() {
            if supersedes(&d.op) {
                last_supersede.insert(d.user, i);
            }
        }
        if last_supersede.is_empty() {
            return 0;
        }
        let mut dropped = 0u64;
        let mut idx = 0usize;
        let per_user = &mut self.per_user;
        self.items.retain(|d| {
            let keep = match last_supersede.get(&d.user) {
                Some(&pos) => idx >= pos,
                None => true,
            };
            if !keep {
                dropped += 1;
                if let Some(count) = per_user.get_mut(&d.user) {
                    *count -= 1;
                    if *count == 0 {
                        per_user.remove(&d.user);
                    }
                }
            }
            idx += 1;
            keep
        });
        dropped
    }
}

impl UpdateIngest {
    /// An unbounded queue for a `num_users`-user engine (the
    /// pre-admission behavior).
    pub fn new(num_users: usize) -> Self {
        UpdateIngest::with_admission(
            num_users,
            AdmissionConfig::unbounded(),
            Duration::from_millis(20),
        )
    }

    /// A queue with explicit admission control. `retry_hint` is the
    /// drain cadence reported in [`ServeError::Overloaded`] (the
    /// serving layer passes its idle-park interval).
    pub fn with_admission(
        num_users: usize,
        admission: AdmissionConfig,
        retry_hint: Duration,
    ) -> Self {
        UpdateIngest {
            num_users,
            admission,
            retry_hint,
            queue: Mutex::new(Queue::default()),
            space: Condvar::new(),
            submitted: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            peak_pending: AtomicU64::new(0),
        }
    }

    /// Validates and enqueues one update, applying admission control.
    ///
    /// Validation happens here, synchronously, so the caller gets the
    /// error instead of the background thread: the user must be in
    /// range and `Set`/`Replace` weights finite.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownUser`] or [`ServeError::NonFiniteWeight`]
    /// for invalid updates, [`ServeError::Stopped`] once the queue has
    /// been closed by a terminating refinement loop, and
    /// [`ServeError::Overloaded`] when the queue is at capacity and
    /// shedding freed nothing (with [`OverloadPolicy::Block`], only
    /// after the blocking deadline elapsed).
    pub fn submit(&self, delta: ProfileDelta) -> Result<(), ServeError> {
        self.validate(&delta)?;
        let mut queue = self.queue.lock().expect("ingest lock poisoned");
        if queue.closed {
            return Err(ServeError::Stopped);
        }
        if !self.try_admit(&mut queue, &delta) {
            match self.admission.policy {
                OverloadPolicy::Reject => {
                    drop(queue);
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(self.overloaded());
                }
                OverloadPolicy::Block { deadline } => {
                    let give_up = Instant::now() + deadline;
                    loop {
                        let Some(remaining) = give_up.checked_duration_since(Instant::now()) else {
                            drop(queue);
                            self.rejected.fetch_add(1, Ordering::Relaxed);
                            return Err(self.overloaded());
                        };
                        let (guard, _) = self
                            .space
                            .wait_timeout(queue, remaining)
                            .expect("ingest lock poisoned");
                        queue = guard;
                        if queue.closed {
                            return Err(ServeError::Stopped);
                        }
                        if self.try_admit(&mut queue, &delta) {
                            break;
                        }
                    }
                }
            }
        }
        queue.push(delta);
        let depth = queue.items.len() as u64;
        drop(queue);
        self.peak_pending.fetch_max(depth, Ordering::Relaxed);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Makes room for `delta` under the admission bounds, shedding
    /// superseded deltas where that helps. Returns whether the queue
    /// can take it. Must be called with the queue lock held.
    fn try_admit(&self, queue: &mut Queue, delta: &ProfileDelta) -> bool {
        let per_user_cap = self.admission.per_user_len();
        let capacity = self.admission.capacity_len();
        // Opportunistic coalescing: a superseding delta above the shed
        // watermark (or over its user's bound) drops the user's
        // queued history — lossless, and the cheapest space to free.
        if supersedes(&delta.op)
            && queue.pending_of(delta.user) > 0
            && (queue.items.len() >= self.admission.watermark_len()
                || queue.pending_of(delta.user) >= per_user_cap)
        {
            let removed = queue.coalesce_user(delta.user);
            self.coalesced.fetch_add(removed, Ordering::Relaxed);
        }
        if queue.pending_of(delta.user) >= per_user_cap {
            return false;
        }
        if queue.items.len() >= capacity {
            let dropped = queue.shed_sweep();
            if dropped > 0 {
                self.shed.fetch_add(dropped, Ordering::Relaxed);
            }
            if queue.items.len() >= capacity {
                return false;
            }
        }
        true
    }

    fn overloaded(&self) -> ServeError {
        ServeError::Overloaded {
            retry_after_hint: self.retry_hint,
        }
    }

    fn validate(&self, delta: &ProfileDelta) -> Result<(), ServeError> {
        if delta.user.index() >= self.num_users {
            return Err(ServeError::UnknownUser {
                user: delta.user,
                num_users: self.num_users,
            });
        }
        // `DeltaOp` is #[non_exhaustive], so an exhaustive match here
        // is impossible — the finite-weight rule lives in
        // `DeltaOp::weights_finite`, whose in-crate match *is*
        // exhaustive: adding a weight-carrying variant breaks the
        // build there instead of silently bypassing this check.
        if !delta.op.weights_finite() {
            return Err(ServeError::NonFiniteWeight { user: delta.user });
        }
        Ok(())
    }

    /// Removes and returns every queued update, in submission order.
    /// Wakes submitters blocked on queue space.
    pub fn drain(&self) -> Vec<ProfileDelta> {
        let mut queue = self.queue.lock().expect("ingest lock poisoned");
        let drained: Vec<ProfileDelta> = queue.items.drain(..).collect();
        queue.per_user.clear();
        drop(queue);
        if !drained.is_empty() {
            self.space.notify_all();
        }
        self.drained
            .fetch_add(drained.len() as u64, Ordering::Relaxed);
        drained
    }

    /// Closes the queue (future submits fail with
    /// [`ServeError::Stopped`]) and returns everything still queued.
    /// Close and drain happen under one lock acquisition, so no update
    /// accepted with `Ok` can slip past this call. Submitters blocked
    /// on queue space wake and observe `Stopped`.
    pub fn close_and_drain(&self) -> Vec<ProfileDelta> {
        let mut queue = self.queue.lock().expect("ingest lock poisoned");
        queue.closed = true;
        let drained: Vec<ProfileDelta> = queue.items.drain(..).collect();
        queue.per_user.clear();
        drop(queue);
        self.space.notify_all();
        self.drained
            .fetch_add(drained.len() as u64, Ordering::Relaxed);
        drained
    }

    /// Updates accepted so far (rejected submits are not counted).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Updates already handed to the engine.
    pub fn drained(&self) -> u64 {
        self.drained.load(Ordering::Relaxed)
    }

    /// Submits turned away at capacity (including blocking submits
    /// whose deadline elapsed).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Queued deltas dropped by opportunistic same-user coalescing
    /// (superseded by the incoming `Replace`/`Clear`).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Queued deltas dropped by the at-capacity shed sweep (superseded
    /// by a later queued `Replace`/`Clear`).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// High-water mark of the pending depth since construction.
    pub fn peak_pending(&self) -> u64 {
        self.peak_pending.load(Ordering::Relaxed)
    }

    /// Updates still waiting in this queue (not yet handed to the
    /// engine; the engine's own phase-5 log may hold more).
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("ingest lock poisoned").items.len()
    }

    /// The user-id range accepted by [`submit`](UpdateIngest::submit).
    pub fn num_users(&self) -> usize {
        self.num_users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::UserId;
    use knn_sim::{ItemId, Profile};

    fn set(u: u32, item: u32) -> ProfileDelta {
        ProfileDelta::set(UserId::new(u), ItemId::new(item), 1.0)
    }

    fn replace(u: u32, item: u32) -> ProfileDelta {
        let mut p = Profile::new();
        p.set(ItemId::new(item), 1.0);
        ProfileDelta::replace(UserId::new(u), p)
    }

    #[test]
    fn fifo_submit_and_drain() {
        let q = UpdateIngest::new(10);
        q.submit(ProfileDelta::set(UserId::new(1), ItemId::new(5), 1.0))
            .unwrap();
        q.submit(ProfileDelta::set(UserId::new(2), ItemId::new(6), 2.0))
            .unwrap();
        assert_eq!(q.pending(), 2);
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].user, UserId::new(1));
        assert_eq!(drained[1].user, UserId::new(2));
        assert_eq!(q.pending(), 0);
        assert_eq!(q.submitted(), 2);
        assert_eq!(q.drained(), 2);
        assert_eq!(q.peak_pending(), 2);
        assert_eq!(q.rejected() + q.coalesced() + q.shed(), 0);
    }

    #[test]
    fn close_rejects_later_submits_and_returns_stragglers() {
        let q = UpdateIngest::new(10);
        q.submit(ProfileDelta::set(UserId::new(1), ItemId::new(5), 1.0))
            .unwrap();
        let stragglers = q.close_and_drain();
        assert_eq!(stragglers.len(), 1);
        let err = q.submit(ProfileDelta::set(UserId::new(2), ItemId::new(6), 2.0));
        assert!(matches!(err, Err(ServeError::Stopped)));
        assert_eq!(q.pending(), 0);
        assert_eq!(q.submitted(), 1, "a rejected submit is not counted");
    }

    #[test]
    fn rejects_out_of_range_user() {
        let q = UpdateIngest::new(3);
        let err = q.submit(ProfileDelta::set(UserId::new(3), ItemId::new(0), 1.0));
        assert!(matches!(err, Err(ServeError::UnknownUser { .. })));
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn rejects_non_finite_weights() {
        let q = UpdateIngest::new(3);
        let bad_set = ProfileDelta::set(UserId::new(0), ItemId::new(0), f32::NAN);
        assert!(matches!(
            q.submit(bad_set),
            Err(ServeError::NonFiniteWeight { .. })
        ));
        // A Replace built through the safe Profile API is always finite.
        let mut p = Profile::new();
        p.set(ItemId::new(1), 2.0);
        q.submit(ProfileDelta::replace(UserId::new(0), p)).unwrap();
        // A Replace smuggling a NaN through the unchecked constructor
        // is still caught — the check walks every carried weight.
        let poisoned = Profile::from_sorted_pairs_unchecked(vec![(ItemId::new(1), f32::NAN)]);
        assert!(matches!(
            q.submit(ProfileDelta::replace(UserId::new(0), poisoned)),
            Err(ServeError::NonFiniteWeight { .. })
        ));
        // Remove and Clear are always valid for in-range users.
        q.submit(ProfileDelta::remove(UserId::new(0), ItemId::new(1)))
            .unwrap();
        q.submit(ProfileDelta::new(UserId::new(0), knn_sim::DeltaOp::Clear))
            .unwrap();
    }

    #[test]
    fn reject_policy_fails_fast_at_capacity() {
        let q =
            UpdateIngest::with_admission(64, AdmissionConfig::bounded(3), Duration::from_millis(7));
        for u in 0..3 {
            q.submit(set(u, u)).unwrap();
        }
        // Distinct users, no superseding deltas: nothing to shed.
        let err = q.submit(set(3, 3)).expect_err("queue is full");
        match err {
            ServeError::Overloaded { retry_after_hint } => {
                assert_eq!(retry_after_hint, Duration::from_millis(7));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.pending(), 3);
        assert_eq!(q.submitted(), 3, "rejected submit not counted");
        // Space frees on drain; the retry is admitted.
        assert_eq!(q.drain().len(), 3);
        q.submit(set(3, 3)).unwrap();
    }

    #[test]
    fn watermark_coalesces_superseded_same_user_deltas() {
        // Capacity 4, watermark 0.5: coalescing starts at 2 pending.
        let q = UpdateIngest::with_admission(
            64,
            AdmissionConfig::bounded(4).with_shed_watermark(0.5),
            Duration::from_millis(1),
        );
        q.submit(set(1, 10)).unwrap();
        q.submit(set(1, 11)).unwrap();
        q.submit(set(2, 20)).unwrap();
        // Above the watermark; this Replace supersedes user 1's two
        // queued Sets, which are dropped (lossless).
        q.submit(replace(1, 12)).unwrap();
        assert_eq!(q.coalesced(), 2);
        assert_eq!(q.pending(), 2);
        let drained = q.drain();
        assert_eq!(drained[0], set(2, 20), "other users keep their order");
        assert_eq!(drained[1], replace(1, 12));
    }

    #[test]
    fn below_watermark_keeps_full_history() {
        let q = UpdateIngest::with_admission(
            64,
            AdmissionConfig::bounded(100).with_shed_watermark(0.9),
            Duration::from_millis(1),
        );
        q.submit(set(1, 10)).unwrap();
        q.submit(replace(1, 11)).unwrap();
        assert_eq!(q.coalesced(), 0, "no coalescing below the watermark");
        assert_eq!(q.pending(), 2);
    }

    #[test]
    fn at_capacity_shed_sweep_drops_superseded_history() {
        // Watermark 1.0: no opportunistic coalescing, so superseded
        // history accumulates until the at-capacity sweep.
        let q = UpdateIngest::with_admission(
            64,
            AdmissionConfig::bounded(4).with_shed_watermark(1.0),
            Duration::from_millis(1),
        );
        q.submit(set(1, 10)).unwrap();
        q.submit(set(2, 20)).unwrap();
        q.submit(replace(1, 11)).unwrap(); // supersedes the first Set
        q.submit(set(3, 30)).unwrap();
        assert_eq!(q.pending(), 4);
        // Full. The sweep drops user 1's pre-Replace Set and admits.
        q.submit(set(4, 40)).unwrap();
        assert_eq!(q.shed(), 1);
        assert_eq!(q.pending(), 4);
        assert_eq!(q.rejected(), 0);
        let drained = q.drain();
        assert_eq!(
            drained,
            vec![set(2, 20), replace(1, 11), set(3, 30), set(4, 40)]
        );
    }

    #[test]
    fn per_user_bound_rejects_non_superseding_and_coalesces_superseding() {
        let q = UpdateIngest::with_admission(
            64,
            AdmissionConfig {
                capacity: None,
                per_user_capacity: Some(2),
                policy: OverloadPolicy::Reject,
                shed_watermark: 0.75,
            },
            Duration::from_millis(1),
        );
        q.submit(set(1, 10)).unwrap();
        q.submit(set(1, 11)).unwrap();
        // A third Set cannot coalesce anything: rejected.
        assert!(matches!(
            q.submit(set(1, 12)),
            Err(ServeError::Overloaded { .. })
        ));
        assert_eq!(q.rejected(), 1);
        // A Replace supersedes the queued history: coalesced, admitted.
        q.submit(replace(1, 13)).unwrap();
        assert_eq!(q.coalesced(), 2);
        assert_eq!(q.pending(), 1);
        // Other users are unaffected by user 1's bound.
        q.submit(set(2, 20)).unwrap();
    }

    #[test]
    fn block_policy_waits_for_drain_then_admits() {
        let q = std::sync::Arc::new(UpdateIngest::with_admission(
            64,
            AdmissionConfig::bounded(1).with_policy(OverloadPolicy::Block {
                deadline: Duration::from_secs(30),
            }),
            Duration::from_millis(1),
        ));
        q.submit(set(1, 10)).unwrap();
        let drainer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                q.drain()
            })
        };
        // Full queue: this blocks until the drainer frees space.
        let started = Instant::now();
        q.submit(set(2, 20)).unwrap();
        assert!(started.elapsed() >= Duration::from_millis(10));
        assert_eq!(drainer.join().unwrap(), vec![set(1, 10)]);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.rejected(), 0);
    }

    #[test]
    fn block_policy_times_out_with_overloaded() {
        let q = UpdateIngest::with_admission(
            64,
            AdmissionConfig::bounded(1).with_policy(OverloadPolicy::Block {
                deadline: Duration::from_millis(20),
            }),
            Duration::from_millis(5),
        );
        q.submit(set(1, 10)).unwrap();
        let started = Instant::now();
        let err = q.submit(set(2, 20)).expect_err("nobody drains");
        assert!(matches!(err, ServeError::Overloaded { .. }));
        assert!(started.elapsed() >= Duration::from_millis(20));
        assert_eq!(q.rejected(), 1);
    }

    #[test]
    fn close_wakes_blocked_submitters_with_stopped() {
        let q = std::sync::Arc::new(UpdateIngest::with_admission(
            64,
            AdmissionConfig::bounded(1).with_policy(OverloadPolicy::Block {
                deadline: Duration::from_secs(30),
            }),
            Duration::from_millis(1),
        ));
        q.submit(set(1, 10)).unwrap();
        let blocked = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.submit(set(2, 20)))
        };
        std::thread::sleep(Duration::from_millis(20));
        let stragglers = q.close_and_drain();
        assert_eq!(stragglers.len(), 1);
        assert!(matches!(blocked.join().unwrap(), Err(ServeError::Stopped)));
    }
}
