//! The background refinement loop, the fast-path repair worker, and
//! their control handle.
//!
//! With [`RefineOptions::repair`] off (the default) there is one
//! background thread: it drains the ingest queue, feeds the engine's
//! phase-5 log, runs iterations, and publishes an exact snapshot after
//! each one — updates become visible only at iteration boundaries.
//!
//! With repair on, a second thread (`knn-repair`) owns the ingest
//! queue: it drains updates, applies them to the served view
//! immediately, re-places each touched user by greedy search over the
//! current graph (see [`crate::repair`]), and publishes the patched
//! state as a new epoch tagged [`repaired`](crate::Snapshot::repaired)
//! — ingest-to-visibility is decoupled from iteration time. Drained
//! deltas are then forwarded to the refine thread, which queues them
//! into the engine's durable log and reconciles exactly on its next
//! publish. Both threads publish through one shared [`ViewState`]
//! lock, so epochs stay strictly ordered.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use knn_core::KnnEngine;
use knn_graph::KnnGraph;
use knn_sim::{Measure, ProfileDelta, ProfileStore};

use crate::admission::AdmissionConfig;
use crate::breaker::{Breaker, BreakerConfig};
use crate::cache::QueryCache;
use crate::ingest::UpdateIngest;
use crate::repair::{queue_all, repair_touched};
use crate::sharded::CoherenceBudget;
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::{KnnService, ServeError};

/// Deterministic seed of the breaker's backoff jitter (per loop).
const BREAKER_JITTER_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Tuning of the refinement loop.
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// Stop refining (but keep serving and applying updates) once an
    /// iteration's edge-change fraction drops below this threshold.
    /// `None` refines forever.
    pub convergence_threshold: Option<f64>,
    /// Hard cap on *refinement* iterations. `None` is unbounded.
    /// Streamed updates still force an iteration past the cap — the
    /// visibility contract of
    /// [`submit_update`](crate::KnnService::submit_update) (an
    /// accepted update surfaces in a later snapshot) outranks the cap.
    pub max_iterations: Option<u64>,
    /// How long the loop parks when it has nothing to do (converged
    /// and no pending updates). Submitting an update or stopping the
    /// service wakes it immediately, so this only bounds the latency
    /// of convergence-threshold re-checks.
    pub idle_park: Duration,
    /// Enable the fast-path repair worker: drained updates are placed
    /// into the served graph and published as `repaired: true` epochs
    /// *immediately*, instead of waiting for the next full iteration.
    /// Repaired generations are best-effort (greedy placement); every
    /// exact publish reconciles them. Off by default: with repair off
    /// every published snapshot is an exact engine generation, which
    /// some tests and consumers rely on.
    pub repair: bool,
    /// Admission control on the update ingest queue. Unbounded by
    /// default (the pre-admission behavior); bound it in production so
    /// a submit storm turns into typed
    /// [`ServeError::Overloaded`](crate::ServeError) backpressure
    /// instead of unbounded queue growth.
    pub admission: AdmissionConfig,
    /// Capacity (entries) of the generation-keyed query cache serving
    /// repeat `neighbors`/`query_profile` lookups; invalidated on every
    /// snapshot swap. `0` disables it. Hits are bit-identical to
    /// uncached answers (the cached value is a prior answer for the
    /// same immutable generation).
    pub query_cache: usize,
    /// Retry budget of the sharded batch paths' coherence gather
    /// (attempts + wall deadline); ignored by the unsharded service,
    /// whose single cell is inherently coherent.
    pub coherence: CoherenceBudget,
    /// Backoff schedule of the durable-path circuit breaker: after a
    /// queueing pass with failures, drain/queue is skipped for a
    /// capped, exponentially growing interval so a flapping
    /// [`StorageBackend`](knn_store::StorageBackend) is probed, not
    /// hammered.
    pub breaker: BreakerConfig,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            convergence_threshold: Some(0.01),
            max_iterations: None,
            idle_park: Duration::from_millis(20),
            repair: false,
            admission: AdmissionConfig::default(),
            query_cache: 1024,
            coherence: CoherenceBudget::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// The mutable served view both publishers edit under one lock: the
/// repair worker patches it per drained batch, the refine thread
/// replaces it wholesale per iteration. `epoch` is the single source
/// of publication order.
#[derive(Debug)]
pub(crate) struct ViewState {
    pub(crate) epoch: u64,
    pub(crate) iteration: u64,
    pub(crate) changed_fraction: f64,
    pub(crate) graph: Arc<KnnGraph>,
    pub(crate) profiles: Arc<ProfileStore>,
    /// Deltas already applied to the view (and published as repaired)
    /// but not yet handed to the engine — the repair worker appends,
    /// the refine thread takes.
    pub(crate) pending_engine: Vec<ProfileDelta>,
}

/// Shared state between the service, the handle, and the loop threads.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) cell: SnapshotCell,
    pub(crate) ingest: UpdateIngest,
    pub(crate) stop: AtomicBool,
    /// Last published epoch + its condvar, for `wait_for_epoch`.
    pub(crate) published: Mutex<u64>,
    pub(crate) published_cv: Condvar,
    pub(crate) view: Mutex<ViewState>,
    /// Repaired epochs published so far.
    pub(crate) repaired_epochs: AtomicU64,
    /// Failed `queue_update` attempts (each is retried; see
    /// [`crate::repair::queue_all`]).
    pub(crate) queue_failures: AtomicU64,
    /// Generation-keyed read cache shared by every service clone.
    pub(crate) cache: QueryCache,
    /// Whether the durable-path circuit breaker is currently open
    /// (mirrored here by the loop for `stats()`).
    pub(crate) breaker_open: AtomicBool,
    /// Total milliseconds the breaker has spent open.
    pub(crate) breaker_open_ms: AtomicU64,
    /// The refine thread's handle, set right after spawn — the repair
    /// worker unparks it when it forwards deltas.
    pub(crate) refine_thread: OnceLock<std::thread::Thread>,
}

impl Shared {
    pub(crate) fn notify_epoch(&self, epoch: u64) {
        let mut last = self.published.lock().expect("publish lock poisoned");
        *last = epoch;
        drop(last);
        self.published_cv.notify_all();
    }
}

/// Starts serving `engine`: publishes the engine's current state as
/// snapshot epoch 0, then hands the engine to a background thread that
/// drains queued updates, runs five-phase iterations, and publishes a
/// fresh snapshot after each one. With [`RefineOptions::repair`] a
/// second worker additionally publishes repaired epochs as soon as
/// updates drain (see the module docs).
///
/// Returns the cloneable query front-end and the (unique) control
/// handle that stops the loop and recovers the engine.
///
/// # Errors
///
/// Returns a storage error if the initial profile export fails.
pub fn spawn(
    engine: KnnEngine,
    options: RefineOptions,
) -> Result<(KnnService, RefineHandle), ServeError> {
    let measure = engine.config().measure();
    let graph = Arc::new(engine.graph().clone());
    let profiles = Arc::new(engine.export_profiles()?);
    let initial = Snapshot::new(
        0,
        engine.iteration(),
        1.0,
        measure,
        Arc::clone(&graph),
        Arc::clone(&profiles),
    );
    let shared = Arc::new(Shared {
        cell: SnapshotCell::new(initial),
        ingest: UpdateIngest::with_admission(
            engine.config().num_users(),
            options.admission.clone(),
            options.idle_park,
        ),
        stop: AtomicBool::new(false),
        published: Mutex::new(0),
        published_cv: Condvar::new(),
        view: Mutex::new(ViewState {
            epoch: 0,
            iteration: engine.iteration(),
            changed_fraction: 1.0,
            graph,
            profiles: Arc::clone(&profiles),
            pending_engine: Vec::new(),
        }),
        repaired_epochs: AtomicU64::new(0),
        queue_failures: AtomicU64::new(0),
        cache: QueryCache::new(options.query_cache),
        breaker_open: AtomicBool::new(false),
        breaker_open_ms: AtomicU64::new(0),
        refine_thread: OnceLock::new(),
    });

    let worker = if options.repair {
        let worker_shared = Arc::clone(&shared);
        let idle_park = options.idle_park;
        Some(
            std::thread::Builder::new()
                .name("knn-repair".into())
                .spawn(move || repair_worker(&worker_shared, measure, idle_park))
                .expect("spawning the repair worker"),
        )
    } else {
        None
    };
    // Submits wake the thread that drains the ingest queue: the repair
    // worker when repair is on, the refine loop otherwise.
    let wake = worker.as_ref().map(|w| w.thread().clone());

    let loop_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("knn-refine".into())
        .spawn(move || refine_loop(engine, profiles, loop_shared, options, worker))
        .expect("spawning the refinement thread");
    let wake = wake.unwrap_or_else(|| thread.thread().clone());
    shared
        .refine_thread
        .set(thread.thread().clone())
        .expect("refine thread registered once");

    let service = KnnService::new(Arc::clone(&shared), wake);
    let handle = RefineHandle { shared, thread };
    Ok((service, handle))
}

/// The fast-path worker: drain → apply to the view → greedy re-place →
/// publish as a repaired epoch → forward to the refine thread.
fn repair_worker(shared: &Shared, measure: Measure, idle_park: Duration) {
    while !shared.stop.load(Ordering::Acquire) {
        let drained = shared.ingest.drain();
        if drained.is_empty() {
            std::thread::park_timeout(idle_park);
            continue;
        }
        let epoch = {
            let mut view = shared.view.lock().expect("view lock poisoned");
            let state = &mut *view;
            Arc::make_mut(&mut state.profiles).apply_deltas(&drained);
            repair_touched(&mut state.graph, &state.profiles, measure, &drained);
            state.pending_engine.extend(drained);
            state.epoch += 1;
            shared.cell.publish(
                Snapshot::new(
                    state.epoch,
                    state.iteration,
                    state.changed_fraction,
                    measure,
                    Arc::clone(&state.graph),
                    Arc::clone(&state.profiles),
                )
                .with_repaired(true),
            );
            state.epoch
        };
        shared.repaired_epochs.fetch_add(1, Ordering::Relaxed);
        shared.notify_epoch(epoch);
        // The refine thread must queue the forwarded deltas into the
        // engine's durable log and eventually reconcile.
        if let Some(refine) = shared.refine_thread.get() {
            refine.unpark();
        }
    }
}

fn refine_loop(
    mut engine: KnnEngine,
    initial_profiles: Arc<ProfileStore>,
    shared: Arc<Shared>,
    options: RefineOptions,
    worker: Option<JoinHandle<()>>,
) -> Result<KnnEngine, ServeError> {
    let mut parked: Vec<ProfileDelta> = Vec::new();
    let result = refine_loop_inner(
        &mut engine,
        initial_profiles,
        &shared,
        &options,
        &mut parked,
    );
    // Terminal path for stop, engine failure, and normal return alike.
    // Order matters: stop and join the repair worker first so nothing
    // drains the ingest queue behind our back, then close the queue so
    // submits start failing with `Stopped`, then move everything
    // accepted but not yet in the engine's durable phase-5 log into
    // it: previously parked deltas (oldest first), deltas the worker
    // forwarded but we never queued, then the closing drain's
    // stragglers. Every delta is attempted — one failure must not drop
    // the rest — and anything that still cannot be persisted is
    // *returned* via [`ServeError::UnpersistedUpdates`], never
    // silently dropped.
    shared.stop.store(true, Ordering::Release);
    if let Some(worker) = worker {
        worker.thread().unpark();
        let _ = worker.join();
    }
    let mut leftovers = {
        let mut view = shared.view.lock().expect("view lock poisoned");
        std::mem::take(&mut view.pending_engine)
    };
    leftovers.extend(shared.ingest.close_and_drain());
    let mut errors = Vec::new();
    queue_all(
        &mut parked,
        leftovers,
        &mut |delta| engine.queue_update(delta).map_err(ServeError::from),
        &mut errors,
    );
    shared
        .queue_failures
        .fetch_add(errors.len() as u64, Ordering::Relaxed);
    if !parked.is_empty() {
        return Err(ServeError::UnpersistedUpdates {
            updates: parked,
            source: errors.pop().map(Box::new),
        });
    }
    result?;
    Ok(engine)
}

fn refine_loop_inner(
    engine: &mut KnnEngine,
    initial_profiles: Arc<ProfileStore>,
    shared: &Shared,
    options: &RefineOptions,
    parked: &mut Vec<ProfileDelta>,
) -> Result<(), ServeError> {
    let measure = engine.config().measure();
    let mut iterations_run = 0u64;
    let mut converged = false;
    // The engine-exact profile view `P(t)`, maintained incrementally:
    // cloning the previous store and replaying the drained deltas
    // mirrors exactly what the iteration's phase 5 does on disk,
    // without re-reading every partition file per publish. (This must
    // start from the engine's own export, *not* the served view — the
    // repair worker may already have patched the latter.)
    let mut engine_profiles = initial_profiles;
    // Deltas queued into the engine's log but not yet applied by an
    // iteration.
    let mut unapplied: Vec<ProfileDelta> = Vec::new();
    let mut breaker = Breaker::new(options.breaker, BREAKER_JITTER_SEED);

    while !shared.stop.load(Ordering::Acquire) {
        // While the circuit breaker is open the drain/queue step is
        // skipped entirely: undrained submits stay in the ingest queue
        // (bounded admission turns that into backpressure), forwarded
        // repair deltas stay in the view, and parked deltas are not
        // retried against a backend that just refused them.
        let queued = if breaker.remaining_open(Instant::now()).is_some() {
            Vec::new()
        } else {
            // Intake: with repair on, the worker owns the ingest queue
            // and forwards drained deltas through the view; otherwise
            // we drain the queue directly.
            let fresh = if options.repair {
                let mut view = shared.view.lock().expect("view lock poisoned");
                std::mem::take(&mut view.pending_engine)
            } else {
                shared.ingest.drain()
            };

            // Queue every delta into the engine's durable log, retrying
            // previously failed ones first. Failures park the delta
            // (and its user's later deltas, preserving order) for the
            // next pass; they do not abort the loop.
            let attempted = parked.len() + fresh.len();
            let mut errors = Vec::new();
            let queued = queue_all(
                parked,
                fresh,
                &mut |delta| engine.queue_update(delta).map_err(ServeError::from),
                &mut errors,
            );
            if !errors.is_empty() {
                shared
                    .queue_failures
                    .fetch_add(errors.len() as u64, Ordering::Relaxed);
            }
            breaker.record(Instant::now(), attempted, errors.len());
            queued
        };
        let now = Instant::now();
        shared
            .breaker_open
            .store(breaker.is_open(now), Ordering::Relaxed);
        shared.breaker_open_ms.store(
            breaker.open_total(now).as_millis() as u64,
            Ordering::Relaxed,
        );
        if !queued.is_empty() {
            // New profile data can change similarities: resume refining.
            converged = false;
        }
        unapplied.extend(queued);

        let capped = options
            .max_iterations
            .is_some_and(|max| iterations_run >= max);
        if (capped || converged) && unapplied.is_empty() {
            // Nothing to refine and no updates awaiting application:
            // park until a submit/forward/stop unparks us (or the idle
            // interval elapses and we re-check, which also retries
            // parked deltas).
            std::thread::park_timeout(options.idle_park);
            continue;
        }

        let report = engine.run_iteration()?;
        iterations_run += 1;
        if let Some(threshold) = options.convergence_threshold {
            if report.changed_fraction < threshold {
                converged = true;
            }
        }

        // Phase 5 just applied the engine's whole update log. In the
        // steady state that log is exactly `unapplied`, so the exact
        // view advances by replaying the same deltas in the same
        // order. If the counts disagree (e.g. the engine recovered
        // older updates from a pre-existing on-disk log), fall back to
        // the authoritative full export.
        if report.updates_applied == unapplied.len() as u64 {
            if !unapplied.is_empty() {
                let mut next = (*engine_profiles).clone();
                next.apply_deltas(&unapplied);
                unapplied.clear();
                engine_profiles = Arc::new(next);
            }
        } else {
            unapplied.clear();
            engine_profiles = Arc::new(engine.export_profiles()?);
        }

        // Exact publish, through the same view lock the repair worker
        // uses so epochs stay strictly ordered.
        let epoch = {
            let mut view = shared.view.lock().expect("view lock poisoned");
            let state = &mut *view;
            let mut graph = Arc::new(engine.graph().clone());
            let mut profiles = Arc::clone(&engine_profiles);
            let mut repaired = false;
            if options.repair {
                // Deltas already visible in the served view (published
                // as repaired) but not in this iteration — forwarded
                // mid-run or still parked on queue failures. Re-apply
                // and re-place them on the fresh exact state so the
                // served view never loses a published update.
                let still_pending: Vec<ProfileDelta> = parked
                    .iter()
                    .chain(state.pending_engine.iter())
                    .cloned()
                    .collect();
                if !still_pending.is_empty() {
                    Arc::make_mut(&mut profiles).apply_deltas(&still_pending);
                    repair_touched(&mut graph, &profiles, measure, &still_pending);
                    repaired = true;
                }
            }
            state.graph = graph;
            state.profiles = profiles;
            state.iteration = engine.iteration();
            state.changed_fraction = report.changed_fraction;
            state.epoch += 1;
            shared.cell.publish(
                Snapshot::new(
                    state.epoch,
                    state.iteration,
                    state.changed_fraction,
                    measure,
                    Arc::clone(&state.graph),
                    Arc::clone(&state.profiles),
                )
                .with_repaired(repaired),
            );
            state.epoch
        };
        shared.notify_epoch(epoch);
    }
    Ok(())
}

/// Control handle of the refinement loop: stop it, recover the
/// engine, or wait for publications. Dropping the handle without
/// calling [`stop`](RefineHandle::stop) detaches the loop (it keeps
/// refining until the process exits).
#[derive(Debug)]
pub struct RefineHandle {
    shared: Arc<Shared>,
    thread: JoinHandle<Result<KnnEngine, ServeError>>,
}

impl RefineHandle {
    /// Signals the loop to stop after its current iteration, joins
    /// the thread (and the repair worker, if any), and returns the
    /// engine (for persistence, batch work, or a later re-spawn).
    ///
    /// # Errors
    ///
    /// Propagates an engine error that terminated the loop early,
    /// [`ServeError::RefineLoopPanicked`] if the thread panicked, or
    /// [`ServeError::UnpersistedUpdates`] carrying every accepted
    /// update that could not be moved into the engine's durable log —
    /// accepted updates are returned, never dropped.
    pub fn stop(self) -> Result<KnnEngine, ServeError> {
        self.shared.stop.store(true, Ordering::Release);
        self.thread.thread().unpark();
        self.thread
            .join()
            .map_err(|_| ServeError::RefineLoopPanicked)?
    }

    /// Whether the loop thread is still alive.
    pub fn is_running(&self) -> bool {
        !self.thread.is_finished()
    }

    /// Blocks until snapshot `epoch` (or newer) is published, or
    /// `timeout` elapses. Returns whether the epoch was reached.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last = self.shared.published.lock().expect("publish lock poisoned");
        while *last < epoch {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, wait) = self
                .shared
                .published_cv
                .wait_timeout(last, remaining)
                .expect("publish lock poisoned");
            last = guard;
            if wait.timed_out() && *last < epoch {
                return false;
            }
        }
        true
    }

    /// The epoch of the latest published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }
}
