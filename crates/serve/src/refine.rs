//! The background refinement loop and its control handle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use knn_core::KnnEngine;

use crate::ingest::UpdateIngest;
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::{KnnService, ServeError};

/// Tuning of the refinement loop.
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// Stop refining (but keep serving and applying updates) once an
    /// iteration's edge-change fraction drops below this threshold.
    /// `None` refines forever.
    pub convergence_threshold: Option<f64>,
    /// Hard cap on *refinement* iterations. `None` is unbounded.
    /// Streamed updates still force an iteration past the cap — the
    /// visibility contract of
    /// [`submit_update`](crate::KnnService::submit_update) (an
    /// accepted update surfaces in a later snapshot) outranks the cap.
    pub max_iterations: Option<u64>,
    /// How long the loop parks when it has nothing to do (converged
    /// and no pending updates). Submitting an update or stopping the
    /// service wakes it immediately, so this only bounds the latency
    /// of convergence-threshold re-checks.
    pub idle_park: Duration,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            convergence_threshold: Some(0.01),
            max_iterations: None,
            idle_park: Duration::from_millis(20),
        }
    }
}

/// Shared state between the service, the handle, and the loop thread.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) cell: SnapshotCell,
    pub(crate) ingest: UpdateIngest,
    pub(crate) stop: AtomicBool,
    /// Last published epoch + its condvar, for `wait_for_epoch`.
    pub(crate) published: Mutex<u64>,
    pub(crate) published_cv: Condvar,
}

impl Shared {
    pub(crate) fn notify_epoch(&self, epoch: u64) {
        let mut last = self.published.lock().expect("publish lock poisoned");
        *last = epoch;
        drop(last);
        self.published_cv.notify_all();
    }
}

/// Starts serving `engine`: publishes the engine's current state as
/// snapshot epoch 0, then hands the engine to a background thread that
/// drains queued updates, runs five-phase iterations, and publishes a
/// fresh snapshot after each one.
///
/// Returns the cloneable query front-end and the (unique) control
/// handle that stops the loop and recovers the engine.
///
/// # Errors
///
/// Returns a storage error if the initial profile export fails.
pub fn spawn(
    engine: KnnEngine,
    options: RefineOptions,
) -> Result<(KnnService, RefineHandle), ServeError> {
    let initial = Snapshot::new(
        0,
        engine.iteration(),
        1.0,
        engine.config().measure(),
        Arc::new(engine.graph().clone()),
        Arc::new(engine.export_profiles()?),
    );
    let shared = Arc::new(Shared {
        cell: SnapshotCell::new(initial),
        ingest: UpdateIngest::new(engine.config().num_users()),
        stop: AtomicBool::new(false),
        published: Mutex::new(0),
        published_cv: Condvar::new(),
    });

    let loop_shared = Arc::clone(&shared);
    let thread = std::thread::Builder::new()
        .name("knn-refine".into())
        .spawn(move || refine_loop(engine, loop_shared, options))
        .expect("spawning the refinement thread");

    let service = KnnService::new(Arc::clone(&shared), thread.thread().clone());
    let handle = RefineHandle { shared, thread };
    Ok((service, handle))
}

fn refine_loop(
    mut engine: KnnEngine,
    shared: Arc<Shared>,
    options: RefineOptions,
) -> Result<KnnEngine, crate::ServeError> {
    let result = refine_loop_inner(&mut engine, &shared, &options);
    // Terminal path for stop, engine failure, and (via the panic
    // hook-free contract) normal return alike: close the ingest queue
    // so submits start failing with `Stopped`, then move anything it
    // still held into the engine's durable phase-5 log — an update
    // accepted with `Ok` is never silently dropped, it is either in a
    // published snapshot or recoverable from the engine's log.
    let stragglers = shared.ingest.close_and_drain();
    for delta in &stragglers {
        engine.queue_update(delta)?;
    }
    result?;
    Ok(engine)
}

fn refine_loop_inner(
    engine: &mut KnnEngine,
    shared: &Shared,
    options: &RefineOptions,
) -> Result<(), crate::ServeError> {
    let mut epoch = 0u64;
    let mut iterations_run = 0u64;
    let mut converged = false;
    // The served profile view, maintained incrementally: cloning the
    // previous store and replaying the drained deltas mirrors exactly
    // what the iteration's phase 5 does on disk, without re-reading
    // every partition file per publish.
    let mut profiles = Arc::clone(shared.cell.load().profiles());
    let mut unapplied: Vec<knn_sim::ProfileDelta> = Vec::new();

    while !shared.stop.load(Ordering::Acquire) {
        let drained = shared.ingest.drain();
        if !drained.is_empty() {
            // New profile data can change similarities: resume refining.
            converged = false;
            for delta in &drained {
                engine.queue_update(delta)?;
            }
            unapplied.extend(drained);
        }

        let capped = options
            .max_iterations
            .is_some_and(|max| iterations_run >= max);
        if (capped || converged) && unapplied.is_empty() {
            // Nothing to refine and no updates awaiting application:
            // park until a submit/stop unparks us (or the idle
            // interval elapses and we re-check).
            std::thread::park_timeout(options.idle_park);
            continue;
        }

        let report = engine.run_iteration()?;
        iterations_run += 1;
        if let Some(threshold) = options.convergence_threshold {
            if report.changed_fraction < threshold {
                converged = true;
            }
        }

        // Phase 5 just applied the engine's whole update log. In the
        // steady state that log is exactly `unapplied`, so the served
        // view advances by replaying the same deltas in the same
        // order. If the counts disagree (e.g. the engine recovered
        // older updates from a pre-existing on-disk log), fall back to
        // the authoritative full export.
        if report.updates_applied == unapplied.len() as u64 {
            if !unapplied.is_empty() {
                let mut next = (*profiles).clone();
                next.apply_deltas(&unapplied);
                unapplied.clear();
                profiles = Arc::new(next);
            }
        } else {
            unapplied.clear();
            profiles = Arc::new(engine.export_profiles()?);
        }

        epoch += 1;
        let next = Snapshot::new(
            epoch,
            engine.iteration(),
            report.changed_fraction,
            engine.config().measure(),
            Arc::new(engine.graph().clone()),
            Arc::clone(&profiles),
        );
        shared.cell.publish(next);
        shared.notify_epoch(epoch);
    }
    Ok(())
}

/// Control handle of the refinement loop: stop it, recover the
/// engine, or wait for publications. Dropping the handle without
/// calling [`stop`](RefineHandle::stop) detaches the loop (it keeps
/// refining until the process exits).
#[derive(Debug)]
pub struct RefineHandle {
    shared: Arc<Shared>,
    thread: JoinHandle<Result<KnnEngine, ServeError>>,
}

impl RefineHandle {
    /// Signals the loop to stop after its current iteration, joins
    /// the thread, and returns the engine (for persistence, batch
    /// work, or a later re-spawn).
    ///
    /// # Errors
    ///
    /// Propagates an engine error that terminated the loop early, or
    /// [`ServeError::RefineLoopPanicked`] if the thread panicked.
    pub fn stop(self) -> Result<KnnEngine, ServeError> {
        self.shared.stop.store(true, Ordering::Release);
        self.thread.thread().unpark();
        self.thread
            .join()
            .map_err(|_| ServeError::RefineLoopPanicked)?
    }

    /// Whether the loop thread is still alive.
    pub fn is_running(&self) -> bool {
        !self.thread.is_finished()
    }

    /// Blocks until snapshot `epoch` (or newer) is published, or
    /// `timeout` elapses. Returns whether the epoch was reached.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut last = self.shared.published.lock().expect("publish lock poisoned");
        while *last < epoch {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, wait) = self
                .shared
                .published_cv
                .wait_timeout(last, remaining)
                .expect("publish lock poisoned");
            last = guard;
            if wait.timed_out() && *last < epoch {
                return false;
            }
        }
        true
    }

    /// The epoch of the latest published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }
}
