//! Durability of accepted updates when the engine's phase-5 log
//! backend fails: a `StorageBackend` wrapper injects `append_updates`
//! failures and the tests pin the serving layer's contract — every
//! accepted update is applied, parked in the durable log, or returned
//! via [`ServeError::UnpersistedUpdates`]; never silently dropped.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use knn_core::{EngineConfig, KnnEngine};
use knn_graph::UserId;
use knn_serve::{spawn, RefineOptions, ServeError};
use knn_sim::generators::{clustered_profiles, ClusteredConfig};
use knn_sim::{ItemId, Profile, ProfileDelta, ProfileStore};
use knn_store::{IoStats, MemBackend, StorageBackend, StoreError, StreamId};

const N: usize = 120;
const K: usize = 4;
const M: usize = 4;
const SEED: u64 = 2014;

/// Wraps a [`MemBackend`] and fails `append_updates` on demand — the
/// injection point is exactly the call `KnnEngine::queue_update` uses
/// to persist a delta into the phase-5 log.
#[derive(Debug)]
struct FailingBackend {
    inner: MemBackend,
    /// `>0`: fail that many `append_updates` calls, then heal.
    /// `<0`: fail every call until healed.
    fail_appends: AtomicI64,
    appends_failed: AtomicU64,
}

impl FailingBackend {
    fn new() -> Self {
        FailingBackend {
            inner: MemBackend::new(),
            fail_appends: AtomicI64::new(0),
            appends_failed: AtomicU64::new(0),
        }
    }

    fn fail_next(&self, count: i64) {
        self.fail_appends.store(count, Ordering::SeqCst);
    }

    fn fail_all(&self) {
        self.fail_appends.store(-1, Ordering::SeqCst);
    }

    fn heal(&self) {
        self.fail_appends.store(0, Ordering::SeqCst);
    }

    fn failures(&self) -> u64 {
        self.appends_failed.load(Ordering::SeqCst)
    }

    fn should_fail(&self) -> bool {
        let mut armed = self.fail_appends.load(Ordering::SeqCst);
        loop {
            if armed == 0 {
                return false;
            }
            let next = if armed > 0 { armed - 1 } else { armed };
            match self.fail_appends.compare_exchange(
                armed,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.appends_failed.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                Err(current) => armed = current,
            }
        }
    }
}

impl StorageBackend for FailingBackend {
    fn name(&self) -> &'static str {
        "failing-mem"
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn read(&self, stream: StreamId) -> Result<Vec<u8>, StoreError> {
        self.inner.read(stream)
    }

    fn read_chunk(&self, stream: StreamId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.inner.read_chunk(stream, offset, len)
    }

    fn write(&self, stream: StreamId, payload: &[u8]) -> Result<(), StoreError> {
        self.inner.write(stream, payload)
    }

    fn delete(&self, stream: StreamId) -> Result<(), StoreError> {
        self.inner.delete(stream)
    }

    fn exists(&self, stream: StreamId) -> bool {
        self.inner.exists(stream)
    }

    fn list(&self) -> Result<Vec<StreamId>, StoreError> {
        self.inner.list()
    }

    fn append_updates(&self, bytes: &[u8]) -> Result<(), StoreError> {
        if self.should_fail() {
            return Err(StoreError::io(
                "updates.log",
                std::io::Error::other("injected append failure"),
            ));
        }
        self.inner.append_updates(bytes)
    }

    fn read_updates(&self) -> Result<Vec<u8>, StoreError> {
        self.inner.read_updates()
    }

    fn truncate_updates(&self) -> Result<(), StoreError> {
        self.inner.truncate_updates()
    }

    fn storage_usage(&self) -> Result<u64, StoreError> {
        self.inner.storage_usage()
    }
}

fn world() -> (EngineConfig, ProfileStore) {
    let (profiles, _) = clustered_profiles(
        ClusteredConfig::new(N, SEED)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    let config = EngineConfig::builder(N)
        .k(K)
        .num_partitions(M)
        .seed(SEED)
        .build()
        .expect("valid config");
    (config, profiles)
}

fn fresh_profile(tag: u32) -> Profile {
    Profile::from_unsorted_pairs(vec![(900 + tag * 2, 1.0), (901 + tag * 2, 2.0)])
        .expect("finite profile")
}

fn wait_visible(
    service: &knn_serve::KnnService,
    user: UserId,
    expected: &Profile,
    timeout: Duration,
) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if service.snapshot().profiles().get(user) == expected {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Transient log failure: the failed delta is retried and applied
/// once the backend heals, and — the mid-drain bugfix — a *different*
/// user's delta drained in the same batch is not dropped with it.
#[test]
fn transient_append_failure_loses_nothing() {
    let (config, profiles) = world();
    let backend = Arc::new(FailingBackend::new());
    let engine = KnnEngine::new_on(config, profiles, Arc::<FailingBackend>::clone(&backend))
        .expect("engine on failing backend");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: None,
            max_iterations: None,
            idle_park: Duration::from_millis(1),
            repair: false,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    // Arm one failure, then submit two users' deltas in one batch.
    // Whichever drains first eats the failure; the other must proceed.
    backend.fail_next(1);
    let p1 = fresh_profile(1);
    let p2 = fresh_profile(2);
    service
        .submit_update(ProfileDelta::replace(UserId::new(1), p1.clone()))
        .expect("accepted");
    service
        .submit_update(ProfileDelta::replace(UserId::new(2), p2.clone()))
        .expect("accepted");

    // Both become visible: the untouched user immediately, the failed
    // one on a retry pass (the injected failure self-heals after one).
    assert!(
        wait_visible(&service, UserId::new(1), &p1, Duration::from_secs(30)),
        "user 1's delta was dropped"
    );
    assert!(
        wait_visible(&service, UserId::new(2), &p2, Duration::from_secs(30)),
        "user 2's delta was dropped"
    );
    assert!(backend.failures() >= 1, "injection never fired");
    assert!(
        service.stats().queue_failures >= 1,
        "queue failure not counted"
    );

    let engine = refine.stop().expect("clean stop after heal");
    // Both deltas made it into the engine's own profile state.
    let exported = engine.export_profiles().expect("export");
    assert_eq!(exported.get(UserId::new(1)), &p1);
    assert_eq!(exported.get(UserId::new(2)), &p2);
}

/// Permanent log failure through shutdown: `stop` must return every
/// accepted-but-unpersisted delta in `UnpersistedUpdates`, in
/// per-user submission order, instead of dropping them.
#[test]
fn permanent_append_failure_returns_updates_on_stop() {
    let (config, profiles) = world();
    let backend = Arc::new(FailingBackend::new());
    let engine = KnnEngine::new_on(config, profiles, Arc::<FailingBackend>::clone(&backend))
        .expect("engine on failing backend");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: None,
            max_iterations: Some(0),
            idle_park: Duration::from_millis(1),
            repair: false,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    backend.fail_all();
    let submitted: Vec<ProfileDelta> = vec![
        ProfileDelta::replace(UserId::new(3), fresh_profile(3)),
        ProfileDelta::set(UserId::new(4), ItemId::new(950), 1.5),
        ProfileDelta::set(UserId::new(3), ItemId::new(951), 2.5),
    ];
    for delta in &submitted {
        service.submit_update(delta.clone()).expect("accepted");
    }

    let err = refine.stop().expect_err("stop must report unpersisted");
    match err {
        ServeError::UnpersistedUpdates { updates, source } => {
            assert!(source.is_some(), "last queue error not attached");
            // Exactly the accepted deltas come back, and per-user
            // submission order is preserved.
            assert_eq!(updates.len(), submitted.len());
            for delta in &submitted {
                assert!(
                    updates.iter().any(|u| u == delta),
                    "missing delta for user {}",
                    delta.user
                );
            }
            let user3: Vec<&ProfileDelta> = updates
                .iter()
                .filter(|u| u.user == UserId::new(3))
                .collect();
            assert_eq!(user3.len(), 2);
            assert_eq!(user3[0], &submitted[0], "user 3 order broken");
            assert_eq!(user3[1], &submitted[2], "user 3 order broken");
        }
        other => panic!("expected UnpersistedUpdates, got {other:?}"),
    }
    // Per-user blocking: user 3's *second* delta is parked without
    // touching the backend once its first fails, so only the two
    // head-of-line deltas generate append attempts.
    assert!(backend.failures() >= 2);
}

/// Same shutdown contract with the repair worker on: repaired
/// visibility must not launder away durability — deltas that were
/// *served* but never persisted still come back from `stop`.
#[test]
fn permanent_failure_with_repair_returns_served_updates() {
    let (config, profiles) = world();
    let backend = Arc::new(FailingBackend::new());
    let engine = KnnEngine::new_on(config, profiles, Arc::<FailingBackend>::clone(&backend))
        .expect("engine on failing backend");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: None,
            max_iterations: Some(0),
            idle_park: Duration::from_millis(1),
            repair: true,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    backend.fail_all();
    let user = UserId::new(5);
    let fresh = fresh_profile(5);
    service
        .submit_update(ProfileDelta::replace(user, fresh.clone()))
        .expect("accepted");

    // The repair worker still makes the update *visible* (placement
    // needs no storage)...
    assert!(
        wait_visible(&service, user, &fresh, Duration::from_secs(30)),
        "repair path should not depend on the update log"
    );
    assert!(service.snapshot().repaired());

    // ...but stopping surfaces that it was never persisted.
    let err = refine.stop().expect_err("stop must report unpersisted");
    match err {
        ServeError::UnpersistedUpdates { updates, .. } => {
            assert_eq!(updates.len(), 1);
            assert_eq!(updates[0], ProfileDelta::replace(user, fresh));
        }
        other => panic!("expected UnpersistedUpdates, got {other:?}"),
    }
}

/// Heal-before-stop with repair on: a delta that failed to queue
/// while parked must still reach the engine's durable log during the
/// terminal drain, and `stop` then succeeds.
#[test]
fn healed_before_stop_persists_parked_updates() {
    let (config, profiles) = world();
    let backend = Arc::new(FailingBackend::new());
    let engine = KnnEngine::new_on(config, profiles, Arc::<FailingBackend>::clone(&backend))
        .expect("engine on failing backend");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: None,
            max_iterations: Some(0),
            idle_park: Duration::from_millis(1),
            repair: true,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    backend.fail_all();
    let user = UserId::new(6);
    let fresh = fresh_profile(6);
    service
        .submit_update(ProfileDelta::replace(user, fresh.clone()))
        .expect("accepted");
    assert!(
        wait_visible(&service, user, &fresh, Duration::from_secs(30)),
        "repaired visibility"
    );
    // Wait until the queue attempt actually failed at least once, so
    // the delta is genuinely parked when the backend heals.
    let deadline = Instant::now() + Duration::from_secs(30);
    while backend.failures() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(backend.failures() >= 1, "injection never fired");

    backend.heal();
    // Stop succeeds: the parked delta reaches the durable phase-5 log
    // during the terminal drain. It is *applied* by the next
    // iteration — run one on the recovered engine to prove the log
    // really carries it.
    let mut engine = refine.stop().expect("terminal drain persists after heal");
    engine.run_iteration().expect("apply recovered log");
    let exported = engine.export_profiles().expect("export");
    assert_eq!(exported.get(user), &fresh);
}

/// Regression pin for the original mid-drain bug shape under load:
/// many users, failures injected mid-stream, nothing lost.
#[test]
fn interleaved_failures_under_load_lose_nothing() {
    let (config, profiles) = world();
    let backend = Arc::new(FailingBackend::new());
    let engine = KnnEngine::new_on(config, profiles, Arc::<FailingBackend>::clone(&backend))
        .expect("engine on failing backend");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: None,
            max_iterations: None,
            idle_park: Duration::from_millis(1),
            repair: false,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    let stop_flapping = Arc::new(AtomicBool::new(false));
    let flapper = {
        let backend = Arc::<FailingBackend>::clone(&backend);
        let stop_flapping = Arc::clone(&stop_flapping);
        std::thread::spawn(move || {
            while !stop_flapping.load(Ordering::Acquire) {
                backend.fail_next(1);
                std::thread::sleep(Duration::from_millis(1));
            }
            backend.heal();
        })
    };

    let mut finals = Vec::new();
    for round in 0..3u32 {
        for u in 0..16u32 {
            let user = UserId::new(u);
            let fresh = fresh_profile(round * 100 + u);
            service
                .submit_update(ProfileDelta::replace(user, fresh.clone()))
                .expect("accepted");
            if round == 2 {
                finals.push((user, fresh));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    stop_flapping.store(true, Ordering::Release);
    flapper.join().expect("flapper join");

    // Every user's *last* replace wins and none are dropped.
    for (user, fresh) in &finals {
        assert!(
            wait_visible(&service, *user, fresh, Duration::from_secs(60)),
            "final delta for user {user} was dropped"
        );
    }
    let engine = refine.stop().expect("clean stop after heal");
    let exported = engine.export_profiles().expect("export");
    for (user, fresh) in &finals {
        assert_eq!(exported.get(*user), fresh, "engine lost user {user}");
    }
}
