//! Concurrency contract of the serving layer: readers racing the
//! refinement loop only ever observe whole, published generations.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use knn_core::{EngineConfig, KnnEngine};
use knn_graph::{KnnGraph, UserId};
use knn_serve::{spawn, RefineOptions};
use knn_sim::generators::{clustered_profiles, ClusteredConfig};
use knn_sim::{ItemId, Profile, ProfileDelta, ProfileStore};
use knn_store::WorkingDir;

const N: usize = 160;
const K: usize = 4;
const M: usize = 4;
const SEED: u64 = 77;
const ITERATIONS: u64 = 4;

fn world() -> (EngineConfig, ProfileStore) {
    let (profiles, _) = clustered_profiles(
        ClusteredConfig::new(N, SEED)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    let config = EngineConfig::builder(N)
        .k(K)
        .num_partitions(M)
        .seed(SEED)
        .build()
        .expect("valid config");
    (config, profiles)
}

/// Runs a twin engine synchronously and records the exact graph after
/// every iteration: `expected[t]` is `G(t)`.
fn expected_generations() -> Vec<KnnGraph> {
    let (config, profiles) = world();
    let wd = WorkingDir::temp("serve_twin").expect("twin workdir");
    let mut engine = KnnEngine::new(config, profiles, wd).expect("twin engine");
    let mut expected = vec![engine.graph().clone()];
    for _ in 0..ITERATIONS {
        engine.run_iteration().expect("twin iteration");
        expected.push(engine.graph().clone());
    }
    engine.into_working_dir().destroy().expect("twin cleanup");
    expected
}

/// The tentpole guarantee: reader threads hammering the service while
/// the refinement loop swaps snapshots must only ever see graphs that
/// are byte-identical to some *completed* iteration's graph — never a
/// mixture of two generations — and each batched read must be
/// internally consistent with its snapshot's iteration number.
#[test]
fn concurrent_readers_observe_only_complete_generations() {
    let expected = Arc::new(expected_generations());

    let (config, profiles) = world();
    let wd = WorkingDir::temp("serve_live").expect("live workdir");
    let engine = KnnEngine::new(config, profiles, wd).expect("live engine");
    let options = RefineOptions {
        convergence_threshold: None,
        max_iterations: Some(ITERATIONS),
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(engine, options).expect("spawn service");

    let stop = Arc::new(AtomicBool::new(false));
    let torn_reads = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    let mut epoch_sets = Vec::new();
    for reader_id in 0..4u32 {
        let service = service.clone();
        let expected = Arc::clone(&expected);
        let stop = Arc::clone(&stop);
        let torn_reads = Arc::clone(&torn_reads);
        let epochs_seen = Arc::new(AtomicU64::new(0));
        epoch_sets.push(Arc::clone(&epochs_seen));
        readers.push(std::thread::spawn(move || {
            let mut seen = HashSet::new();
            let mut reads = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snapshot = service.snapshot();
                let t = snapshot.iteration() as usize;
                // The graph must be exactly one completed generation.
                if t >= expected.len() || *snapshot.graph().as_ref() != expected[t] {
                    torn_reads.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                // A batched query must agree with its own snapshot's
                // generation entry-for-entry.
                let users: Vec<UserId> = (0..8)
                    .map(|i| {
                        UserId::new(((reader_id as usize * 13 + i * 7 + reads as usize) % N) as u32)
                    })
                    .collect();
                let lists = service
                    .neighbors_many(&users)
                    .expect("in-range users")
                    .results;
                // Atomicity of the batch: *some single* completed
                // generation must explain every returned list at once.
                let single_generation = expected.iter().any(|gen| {
                    users
                        .iter()
                        .zip(&lists)
                        .all(|(u, list)| gen.neighbors(*u) == list.as_slice())
                });
                if !single_generation {
                    torn_reads.fetch_add(1, Ordering::Relaxed);
                }
                seen.insert(snapshot.epoch());
                reads += 1;
            }
            epochs_seen.store(seen.len() as u64, Ordering::Relaxed);
            reads
        }));
    }

    assert!(
        refine.wait_for_epoch(ITERATIONS, Duration::from_secs(120)),
        "refinement did not reach epoch {ITERATIONS}"
    );
    stop.store(true, Ordering::Release);
    let mut total_reads = 0u64;
    for reader in readers {
        total_reads += reader.join().expect("reader thread");
    }

    assert_eq!(
        torn_reads.load(Ordering::Relaxed),
        0,
        "a reader observed a torn snapshot"
    );
    assert!(total_reads > 0, "readers made no progress");
    let most_epochs = epoch_sets
        .iter()
        .map(|s| s.load(Ordering::Relaxed))
        .max()
        .expect("at least one reader");
    assert!(most_epochs >= 2, "no reader ever observed a snapshot swap");
    // The final snapshot is exactly the twin's final state.
    let last = service.snapshot();
    assert_eq!(last.iteration(), ITERATIONS);
    assert_eq!(*last.graph().as_ref(), expected[ITERATIONS as usize]);

    let engine = refine.stop().expect("stop refinement");
    assert_eq!(engine.iteration(), ITERATIONS);
    engine.into_working_dir().destroy().expect("cleanup");
}

/// Updates submitted through the service surface in a later snapshot's
/// profile view without ever disturbing a reader mid-flight.
#[test]
fn submitted_updates_become_visible_in_a_later_snapshot() {
    let (config, profiles) = world();
    let wd = WorkingDir::temp("serve_updates").expect("workdir");
    let engine = KnnEngine::new(config, profiles, wd).expect("engine");
    let options = RefineOptions {
        convergence_threshold: None,
        max_iterations: None,
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(engine, options).expect("spawn");

    let user = UserId::new(5);
    let mut replacement = Profile::new();
    replacement.set(ItemId::new(424_242), 5.0);
    let before_epoch = service.snapshot().epoch();
    service
        .submit_update(ProfileDelta::replace(user, replacement.clone()))
        .expect("valid update");

    // The update must land within a few iterations.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let updated = loop {
        let snapshot = service.snapshot();
        if snapshot.profiles().get(user) == &replacement {
            break snapshot;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "update never became visible"
        );
        refine.wait_for_epoch(snapshot.epoch() + 1, Duration::from_secs(120));
    };
    assert!(updated.epoch() > before_epoch);
    assert_eq!(service.stats().updates_drained, 1);

    let engine = refine.stop().expect("stop");
    // The engine's on-disk state agrees with what was served.
    assert_eq!(
        engine.export_profiles().expect("export").get(user),
        &replacement
    );
    engine.into_working_dir().destroy().expect("cleanup");
}

/// Ad-hoc profile queries answer from one snapshot and the anchored
/// variant agrees with the exact scan once the graph has converged.
#[test]
fn profile_queries_agree_between_scan_and_neighborhood() {
    let (config, profiles) = world();
    let probe = profiles.get(UserId::new(0)).clone();
    let wd = WorkingDir::temp("serve_queries").expect("workdir");
    let mut engine = KnnEngine::new(config, profiles, wd).expect("engine");
    // Converge offline first so the two-hop neighborhood is informative.
    engine.run_until_converged(0.02, 12).expect("converge");
    let options = RefineOptions {
        convergence_threshold: Some(1.1), // already converged: loop idles
        max_iterations: Some(0),
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(engine, options).expect("spawn");

    let exact = service.query_profile(&probe, K).expect("finite query");
    assert_eq!(exact.len(), K);
    // User 0's own profile: its top match is itself at maximal score.
    assert_eq!(exact[0].id, UserId::new(0));
    let near = service
        .query_profile_near(UserId::new(0), &probe, K)
        .expect("anchored");
    assert_eq!(near.len(), K);
    // The anchor is a candidate on both paths: the best match (user 0
    // itself, maximal self-similarity) must agree exactly.
    assert_eq!(near[0].id, exact[0].id);
    assert!((near[0].sim - exact[0].sim).abs() < 1e-6);

    assert!(service
        .query_profile_near(UserId::new(9999), &probe, K)
        .is_err());
    let stats = service.stats();
    assert_eq!(stats.profile_queries, 3);

    let engine = refine.stop().expect("stop");
    engine.into_working_dir().destroy().expect("cleanup");
}

/// The iteration cap limits refinement, not update application: an
/// update submitted after the cap is reached still forces one
/// iteration so the visibility contract holds.
#[test]
fn updates_are_applied_even_past_the_iteration_cap() {
    let (config, profiles) = world();
    let wd = WorkingDir::temp("serve_capped").expect("workdir");
    let engine = KnnEngine::new(config, profiles, wd).expect("engine");
    let options = RefineOptions {
        convergence_threshold: None,
        max_iterations: Some(1),
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(engine, options).expect("spawn");
    assert!(
        refine.wait_for_epoch(1, Duration::from_secs(120)),
        "first iteration"
    );

    let user = UserId::new(9);
    let mut fresh = Profile::new();
    fresh.set(ItemId::new(31_337), 4.0);
    service
        .submit_update(ProfileDelta::replace(user, fresh.clone()))
        .expect("accepted");

    assert!(
        refine.wait_for_epoch(2, Duration::from_secs(120)),
        "the update must force an iteration past the cap"
    );
    assert_eq!(service.snapshot().profiles().get(user), &fresh);

    let engine = refine.stop().expect("stop");
    engine.into_working_dir().destroy().expect("cleanup");
}

/// After stop, queries still answer from the final snapshot, further
/// submits fail loudly, and any update accepted before the stop is
/// either applied or parked in the engine's durable phase-5 log —
/// never silently dropped.
#[test]
fn stop_rejects_new_updates_and_preserves_accepted_ones() {
    let (config, profiles) = world();
    let wd = WorkingDir::temp("serve_stop").expect("workdir");
    let engine = KnnEngine::new(config, profiles, wd).expect("engine");
    let options = RefineOptions {
        convergence_threshold: None,
        max_iterations: None,
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(engine, options).expect("spawn");

    let user = UserId::new(4);
    let mut fresh = Profile::new();
    fresh.set(ItemId::new(55_555), 3.0);
    service
        .submit_update(ProfileDelta::replace(user, fresh.clone()))
        .expect("accepted before stop");

    // Stop races the drain on purpose: whichever side wins, the
    // accepted update must survive somewhere recoverable.
    let engine = refine.stop().expect("stop");
    let applied = engine.export_profiles().expect("export").get(user) == &fresh;
    let logged = engine.pending_updates().expect("pending") > 0;
    assert!(
        applied || logged,
        "accepted update neither applied nor parked in the phase-5 log"
    );

    // The service outlives the handle: reads still work, writes fail.
    assert_eq!(service.neighbors(user).expect("still serving").len(), K);
    let err = service.submit_update(ProfileDelta::set(user, ItemId::new(1), 1.0));
    assert!(matches!(err, Err(knn_serve::ServeError::Stopped)));

    engine.into_working_dir().destroy().expect("cleanup");
}

/// The batch contract: `neighbors_many` validates every id against the
/// snapshot before materializing anything, so one bad id anywhere in
/// the batch answers nothing (no partial results, deterministic error).
#[test]
fn neighbors_many_is_all_or_nothing() {
    let (config, profiles) = world();
    let wd = WorkingDir::temp("serve_batch").expect("workdir");
    let engine = KnnEngine::new(config, profiles, wd).expect("engine");
    let (service, refine) = spawn(engine, RefineOptions::default()).expect("spawn");

    // Bad id in front, middle, and back: all answer nothing.
    let bad = UserId::new(N as u32);
    let good = [UserId::new(0), UserId::new(1), UserId::new(2)];
    for users in [
        vec![bad, good[0], good[1]],
        vec![good[0], bad, good[1]],
        vec![good[0], good[1], bad],
    ] {
        let err = service.neighbors_many(&users).expect_err("must reject");
        assert!(
            matches!(err, knn_serve::ServeError::UnknownUser { user, .. } if user == bad),
            "error must name the offending id"
        );
    }
    // A clean batch still answers fully.
    let batch = service.neighbors_many(&good).expect("all in range");
    assert_eq!(batch.results.len(), good.len());
    assert!(batch.results.iter().all(|l| l.len() == K));

    let engine = refine.stop().expect("stop");
    engine.into_working_dir().destroy().expect("cleanup");
}

/// The backend choice threads through `spawn`: a service over a fully
/// in-memory engine serves, refines, and applies updates exactly like
/// a disk-backed one — no working directory anywhere.
#[test]
fn service_runs_fully_in_memory() {
    let (config, profiles) = world();
    let engine = KnnEngine::in_memory(config, profiles).expect("mem engine");
    assert!(engine.working_dir().is_none());
    let options = RefineOptions {
        convergence_threshold: None,
        max_iterations: None,
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    };
    let (service, refine) = spawn(engine, options).expect("spawn");

    assert_eq!(service.neighbors(UserId::new(0)).expect("serving").len(), K);

    let user = UserId::new(9);
    let mut fresh = Profile::new();
    fresh.set(ItemId::new(77_777), 2.0);
    service
        .submit_update(ProfileDelta::replace(user, fresh.clone()))
        .expect("accepted");
    assert!(
        refine.wait_for_epoch(1, Duration::from_secs(120)),
        "the in-memory loop must publish"
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    while service.snapshot().profiles().get(user) != &fresh {
        assert!(
            std::time::Instant::now() < deadline,
            "update never surfaced in a snapshot"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let engine = refine.stop().expect("stop");
    assert_eq!(engine.export_profiles().expect("export").get(user), &fresh);
    assert_eq!(engine.backend().name(), "mem");
}
