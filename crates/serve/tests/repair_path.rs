//! The fast-path repair contract: an accepted update becomes
//! queryable without waiting for (or ever running) a full refinement
//! iteration, on both the unsharded and the sharded service — plus
//! the non-finite-query guard on both query front-ends.

use std::time::{Duration, Instant};

use knn_core::{EngineConfig, KnnEngine};
use knn_graph::UserId;
use knn_serve::{spawn, spawn_sharded, RefineOptions, ServeError};
use knn_shard::ShardedEngine;
use knn_sim::generators::{clustered_profiles, ClusteredConfig};
use knn_sim::{ItemId, Profile, ProfileDelta, ProfileStore};

const N: usize = 160;
const K: usize = 4;
const M: usize = 4;
const SEED: u64 = 99;

fn world() -> (EngineConfig, ProfileStore) {
    let (profiles, _) = clustered_profiles(
        ClusteredConfig::new(N, SEED)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    let config = EngineConfig::builder(N)
        .k(K)
        .num_partitions(M)
        .seed(SEED)
        .build()
        .expect("valid config");
    (config, profiles)
}

fn repair_options() -> RefineOptions {
    RefineOptions {
        convergence_threshold: None,
        // Zero *refinement* iterations budgeted: visibility must come
        // from the repair worker. (A queued update still forces one
        // reconciling iteration past the cap — the durable log must
        // not grow unboundedly — but the repaired publish strictly
        // precedes it: both go through one view lock, and the worker
        // publishes before it forwards.)
        max_iterations: Some(0),
        idle_park: Duration::from_millis(1),
        repair: true,
        ..RefineOptions::default()
    }
}

fn fresh_profile() -> Profile {
    Profile::from_unsorted_pairs(vec![(990, 3.0), (991, 1.0)]).expect("finite profile")
}

fn nan_query() -> Profile {
    Profile::from_sorted_pairs_unchecked(vec![(ItemId::new(1), f32::NAN)])
}

/// Visibility without iterations, unsharded: the repaired snapshot
/// carries the new profile, is tagged `repaired`, and the user's row
/// was re-placed (k entries, none of them the user itself).
#[test]
fn update_visible_without_any_iteration() {
    let (config, profiles) = world();
    let engine = KnnEngine::in_memory(config, profiles).expect("engine");
    let (service, refine) = spawn(engine, repair_options()).expect("spawn");
    assert!(!service.snapshot().repaired(), "epoch 0 is exact");

    let user = UserId::new(7);
    let fresh = fresh_profile();
    service
        .submit_update(ProfileDelta::replace(user, fresh.clone()))
        .expect("accepted");

    let deadline = Instant::now() + Duration::from_secs(30);
    let snapshot = loop {
        let snapshot = service.snapshot();
        if snapshot.profiles().get(user) == &fresh {
            break snapshot;
        }
        assert!(Instant::now() < deadline, "update never became visible");
        std::thread::sleep(Duration::from_millis(1));
    };

    // The *first* epoch carrying the fresh profile is the worker's
    // repaired publish (both publishers share one view lock and the
    // worker publishes before forwarding), so a repaired epoch is
    // counted by the time the update is visible — whatever epoch this
    // particular poll happened to catch.
    let stats = service.stats();
    assert!(stats.repaired_epochs >= 1, "no repaired epoch published");
    assert_eq!(stats.updates_drained, 1);
    assert!(
        snapshot.iteration() <= 1,
        "visibility waited for refinement"
    );
    let row = snapshot.neighbors(user).expect("in range");
    assert_eq!(row.len(), K, "re-placed row is full");
    assert!(row.iter().all(|nb| nb.id != user), "no self-loop");

    // The delta also reached the engine's durable log: after at most
    // one (forced reconciling) iteration the engine's own profile
    // state carries it.
    let mut engine = refine.stop().expect("stop");
    assert!(engine.iteration() <= 1, "only the forced reconcile ran");
    if engine.export_profiles().expect("export").get(user) != &fresh {
        engine.run_iteration().expect("iterate");
    }
    assert_eq!(
        engine.export_profiles().expect("export").get(user),
        &fresh,
        "durable log lost the repaired update"
    );
}

/// Visibility without iterations, sharded: the owner shard's cell
/// republishes and a self-query finds the updated user at the top.
#[test]
fn sharded_update_visible_without_any_iteration() {
    let (config, profiles) = world();
    let engine = ShardedEngine::in_memory(config, profiles, 3).expect("sharded engine");
    let (service, refine) = spawn_sharded(engine, repair_options()).expect("spawn_sharded");

    let user = UserId::new(7);
    let fresh = fresh_profile();
    service
        .submit_update(ProfileDelta::replace(user, fresh.clone()))
        .expect("accepted");

    // The fresh profile's items are disjoint from the generated world,
    // so only the updated user can score 1.0 against it.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let top = service.query_profile(&fresh, 1).expect("finite query");
        if top.first().map(|nb| nb.id) == Some(user) && top[0].sim > 0.999 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sharded update never became visible"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let stats = service.stats();
    assert!(stats.repaired_epochs >= 1, "no repaired epoch published");
    assert_eq!(stats.updates_drained, 1);
    // The user's own row was re-placed on its owner shard.
    let row = service.neighbors(user).expect("in range");
    assert_eq!(row.len(), K);
    assert!(row.iter().all(|nb| nb.id != user));

    let engine = refine.stop().expect("stop");
    assert!(engine.iteration() <= 1, "only the forced reconcile ran");
}

/// A NaN weight in an ad-hoc query must be rejected, not ranked:
/// best-first order is `total_cmp`, under which NaN sorts above every
/// real score, so an unvalidated NaN query would return garbage as
/// the *top* result.
#[test]
fn nan_query_is_rejected_not_ranked_first() {
    let (config, profiles) = world();
    let engine = KnnEngine::in_memory(config, profiles).expect("engine");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            convergence_threshold: None,
            max_iterations: Some(0),
            idle_park: Duration::from_millis(1),
            repair: false,
            ..RefineOptions::default()
        },
    )
    .expect("spawn");

    let err = service
        .query_profile(&nan_query(), 3)
        .expect_err("NaN query");
    assert!(matches!(err, ServeError::NonFiniteQuery), "got {err:?}");
    let err = service
        .query_profile_near(UserId::new(0), &nan_query(), 3)
        .expect_err("NaN query near");
    assert!(matches!(err, ServeError::NonFiniteQuery), "got {err:?}");

    // A finite query on the same service still answers.
    let finite = Profile::from_unsorted_pairs(vec![(1, 1.0)]).expect("finite");
    assert_eq!(service.query_profile(&finite, 3).expect("finite").len(), 3);

    refine.stop().expect("stop");
}

/// The same guard on the scatter-gather front-end.
#[test]
fn sharded_nan_query_is_rejected() {
    let (config, profiles) = world();
    let engine = ShardedEngine::in_memory(config, profiles, 3).expect("sharded engine");
    let (service, refine) = spawn_sharded(
        engine,
        RefineOptions {
            convergence_threshold: None,
            max_iterations: Some(0),
            idle_park: Duration::from_millis(1),
            repair: false,
            ..RefineOptions::default()
        },
    )
    .expect("spawn_sharded");

    let err = service
        .query_profile(&nan_query(), 3)
        .expect_err("NaN query");
    assert!(matches!(err, ServeError::NonFiniteQuery), "got {err:?}");

    let finite = Profile::from_unsorted_pairs(vec![(1, 1.0)]).expect("finite");
    assert_eq!(service.query_profile(&finite, 3).expect("finite").len(), 3);

    refine.stop().expect("stop");
}
