//! Overload-path fault injection: admission control, backpressure,
//! the durable-path circuit breaker, and query-cache correctness.
//!
//! The contract under saturation: pending ingest depth never exceeds
//! the configured capacity, every failure is a typed [`ServeError`],
//! nothing panics or spins unbounded, and an update accepted with `Ok`
//! keeps the full durability guarantee.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use knn_core::{EngineConfig, KnnEngine};
use knn_graph::UserId;
use knn_serve::{spawn, AdmissionConfig, BreakerConfig, OverloadPolicy, RefineOptions, ServeError};
use knn_sim::generators::{clustered_profiles, ClusteredConfig};
use knn_sim::{Profile, ProfileDelta, ProfileStore};
use knn_store::{IoStats, MemBackend, StorageBackend, StoreError, StreamId};
use proptest::prelude::*;

const N: usize = 120;
const K: usize = 4;
const M: usize = 4;
const SEED: u64 = 2014;

/// Same injection wrapper as `fault_injection.rs`: a [`MemBackend`]
/// whose `append_updates` — the call `queue_update` persists through —
/// fails on demand.
#[derive(Debug)]
struct FailingBackend {
    inner: MemBackend,
    /// `>0`: fail that many `append_updates` calls, then heal.
    /// `<0`: fail every call until healed.
    fail_appends: AtomicI64,
    appends_failed: AtomicU64,
}

impl FailingBackend {
    fn new() -> Self {
        FailingBackend {
            inner: MemBackend::new(),
            fail_appends: AtomicI64::new(0),
            appends_failed: AtomicU64::new(0),
        }
    }

    fn fail_all(&self) {
        self.fail_appends.store(-1, Ordering::SeqCst);
    }

    fn heal(&self) {
        self.fail_appends.store(0, Ordering::SeqCst);
    }

    fn failures(&self) -> u64 {
        self.appends_failed.load(Ordering::SeqCst)
    }

    fn should_fail(&self) -> bool {
        let mut armed = self.fail_appends.load(Ordering::SeqCst);
        loop {
            if armed == 0 {
                return false;
            }
            let next = if armed > 0 { armed - 1 } else { armed };
            match self.fail_appends.compare_exchange(
                armed,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.appends_failed.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                Err(current) => armed = current,
            }
        }
    }
}

impl StorageBackend for FailingBackend {
    fn name(&self) -> &'static str {
        "failing-mem"
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn read(&self, stream: StreamId) -> Result<Vec<u8>, StoreError> {
        self.inner.read(stream)
    }

    fn read_chunk(&self, stream: StreamId, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.inner.read_chunk(stream, offset, len)
    }

    fn write(&self, stream: StreamId, payload: &[u8]) -> Result<(), StoreError> {
        self.inner.write(stream, payload)
    }

    fn delete(&self, stream: StreamId) -> Result<(), StoreError> {
        self.inner.delete(stream)
    }

    fn exists(&self, stream: StreamId) -> bool {
        self.inner.exists(stream)
    }

    fn list(&self) -> Result<Vec<StreamId>, StoreError> {
        self.inner.list()
    }

    fn append_updates(&self, bytes: &[u8]) -> Result<(), StoreError> {
        if self.should_fail() {
            return Err(StoreError::io(
                "updates.log",
                std::io::Error::other("injected append failure"),
            ));
        }
        self.inner.append_updates(bytes)
    }

    fn read_updates(&self) -> Result<Vec<u8>, StoreError> {
        self.inner.read_updates()
    }

    fn truncate_updates(&self) -> Result<(), StoreError> {
        self.inner.truncate_updates()
    }

    fn storage_usage(&self) -> Result<u64, StoreError> {
        self.inner.storage_usage()
    }
}

fn world() -> (EngineConfig, ProfileStore) {
    let (profiles, _) = clustered_profiles(
        ClusteredConfig::new(N, SEED)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    let config = EngineConfig::builder(N)
        .k(K)
        .num_partitions(M)
        .seed(SEED)
        .build()
        .expect("valid config");
    (config, profiles)
}

fn fresh_profile(tag: u32) -> Profile {
    Profile::from_unsorted_pairs(vec![(900 + tag * 2, 1.0), (901 + tag * 2, 2.0)])
        .expect("finite profile")
}

fn options() -> RefineOptions {
    RefineOptions {
        convergence_threshold: None,
        max_iterations: None,
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    }
}

/// Wedged backend + bounded admission: the breaker opens, drain stops,
/// the queue fills to capacity and **stays** there — overflow submits
/// fail with typed [`ServeError::Overloaded`], never more than
/// `capacity` deltas pend, and after healing every *accepted* update
/// is applied (durability unchanged by admission control).
#[test]
fn wedged_backend_turns_into_bounded_typed_backpressure() {
    const CAPACITY: usize = 8;
    let (config, profiles) = world();
    let backend = Arc::new(FailingBackend::new());
    let engine = KnnEngine::new_on(config, profiles, Arc::<FailingBackend>::clone(&backend))
        .expect("engine on failing backend");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            // Distinct users and Set ops: shedding cannot free space,
            // so the capacity bound is exercised exactly.
            admission: AdmissionConfig::bounded(CAPACITY),
            breaker: BreakerConfig {
                base: Duration::from_millis(50),
                cap: Duration::from_millis(200),
            },
            ..options()
        },
    )
    .expect("spawn");

    backend.fail_all();
    // Provoke a failing drain pass so the breaker opens and the queue
    // stops draining.
    service
        .submit_update(ProfileDelta::replace(UserId::new(0), fresh_profile(0)))
        .expect("first update accepted");
    let opened = Instant::now();
    while !service.stats().breaker_open {
        assert!(
            opened.elapsed() < Duration::from_secs(10),
            "breaker must open on a wedged backend"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Storm distinct users until the queue is full, then expect typed
    // rejection. Accepted count is bounded by capacity.
    let mut accepted = vec![UserId::new(0)];
    let mut rejected = 0u64;
    for u in 1..N as u32 {
        match service.submit_update(ProfileDelta::replace(UserId::new(u), fresh_profile(u))) {
            Ok(()) => accepted.push(UserId::new(u)),
            Err(ServeError::Overloaded { retry_after_hint }) => {
                assert!(retry_after_hint > Duration::ZERO);
                rejected += 1;
            }
            Err(other) => panic!("only Overloaded is expected, got {other:?}"),
        }
    }
    assert!(
        rejected > 0,
        "the storm must overflow a capacity of {CAPACITY}"
    );
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected);
    assert!(
        stats.peak_pending <= CAPACITY as u64,
        "pending depth {} exceeded capacity {CAPACITY}",
        stats.peak_pending
    );
    // Accepted at most: capacity pending + whatever the first pass
    // moved to the parked set before the breaker opened.
    assert!(accepted.len() <= CAPACITY + 1);

    // Heal: every accepted update must become visible.
    backend.heal();
    let deadline = Instant::now() + Duration::from_secs(30);
    for &user in &accepted {
        let expected = fresh_profile(user.index() as u32);
        loop {
            if service.snapshot().profiles().get(user) == &expected {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "accepted update for {user} never became visible"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let stats = service.stats();
    assert!(!stats.breaker_open, "breaker closes once the backend heals");
    assert!(stats.breaker_open_ms > 0, "open time is accounted");
    refine.stop().expect("clean stop after heal");
}

/// The breaker rate-limits attempts against a wedged backend: in a
/// fixed window the backend sees a bounded number of `append_updates`
/// calls, not one per loop pass (the loop runs ~1000 passes/s at
/// `idle_park` = 1ms — unthrottled it would hammer hundreds of
/// attempts through).
#[test]
fn breaker_throttles_a_flapping_backend() {
    let (config, profiles) = world();
    let backend = Arc::new(FailingBackend::new());
    let engine = KnnEngine::new_on(config, profiles, Arc::<FailingBackend>::clone(&backend))
        .expect("engine on failing backend");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            admission: AdmissionConfig::bounded(4),
            breaker: BreakerConfig {
                base: Duration::from_millis(25),
                cap: Duration::from_millis(100),
            },
            ..options()
        },
    )
    .expect("spawn");

    backend.fail_all();
    service
        .submit_update(ProfileDelta::replace(UserId::new(7), fresh_profile(7)))
        .expect("accepted");
    std::thread::sleep(Duration::from_millis(400));
    let failures = backend.failures();
    // 400ms at base 25ms/cap 100ms: ~6-8 backoff windows; leave slack
    // for scheduling but stay far below the unthrottled ~400.
    assert!(
        failures <= 40,
        "breaker must throttle attempts, backend saw {failures}"
    );
    assert!(service.stats().breaker_open_ms > 0);

    backend.heal();
    let deadline = Instant::now() + Duration::from_secs(30);
    let expected = fresh_profile(7);
    while service.snapshot().profiles().get(UserId::new(7)) != &expected {
        assert!(Instant::now() < deadline, "update lost after heal");
        std::thread::sleep(Duration::from_millis(2));
    }
    refine.stop().expect("clean stop");
}

/// [`OverloadPolicy::Block`] applies backpressure to the submitting
/// thread instead of its retry loop: a storm from one thread against a
/// tiny queue all lands (the drain side keeps freeing space within the
/// blocking deadline) with zero rejections and the depth bound intact.
#[test]
fn block_policy_absorbs_a_storm_within_deadline() {
    const CAPACITY: usize = 2;
    let (config, profiles) = world();
    let engine = KnnEngine::in_memory(config, profiles).expect("engine");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            admission: AdmissionConfig::bounded(CAPACITY).with_policy(OverloadPolicy::Block {
                deadline: Duration::from_secs(30),
            }),
            ..options()
        },
    )
    .expect("spawn");

    for u in 0..40u32 {
        service
            .submit_update(ProfileDelta::replace(UserId::new(u % 20), fresh_profile(u)))
            .expect("block policy admits within deadline");
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, 0);
    assert!(stats.peak_pending <= CAPACITY as u64);
    refine.stop().expect("clean stop");
}

/// A client honoring `retry_after_hint` converges once capacity frees:
/// the typed error carries enough to build a well-behaved retry loop.
#[test]
fn overloaded_retry_hint_converges_after_heal() {
    let (config, profiles) = world();
    let backend = Arc::new(FailingBackend::new());
    let engine = KnnEngine::new_on(config, profiles, Arc::<FailingBackend>::clone(&backend))
        .expect("engine on failing backend");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            admission: AdmissionConfig::bounded(2),
            breaker: BreakerConfig {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(50),
            },
            ..options()
        },
    )
    .expect("spawn");

    backend.fail_all();
    // Fill past capacity with distinct users so later submits reject.
    let mut saw_overloaded = false;
    for u in 0..10u32 {
        if service
            .submit_update(ProfileDelta::replace(UserId::new(u), fresh_profile(u)))
            .is_err()
        {
            saw_overloaded = true;
        }
    }
    assert!(saw_overloaded, "capacity 2 must overflow");

    // Heal mid-storm; a retrying client must eventually get through.
    backend.heal();
    let target = ProfileDelta::replace(UserId::new(100), fresh_profile(100));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match service.submit_update(target.clone()) {
            Ok(()) => break,
            Err(ServeError::Overloaded { retry_after_hint }) => {
                assert!(Instant::now() < deadline, "retry loop never converged");
                std::thread::sleep(retry_after_hint);
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    let expected = fresh_profile(100);
    while service.snapshot().profiles().get(UserId::new(100)) != &expected {
        assert!(Instant::now() < deadline, "retried update never applied");
        std::thread::sleep(Duration::from_millis(2));
    }
    refine.stop().expect("clean stop");
}

/// Determinism pin for the overload counters: a clean, unbounded,
/// healthy run keeps the entire overload surface at zero — the
/// counters only move when overload machinery actually engages, on
/// any thread count.
#[test]
fn clean_run_pins_overload_counters_at_zero() {
    let (config, profiles) = world();
    let engine = KnnEngine::in_memory(config, profiles).expect("engine");
    let (service, refine) = spawn(engine, options()).expect("spawn");

    for u in 0..8u32 {
        service
            .submit_update(ProfileDelta::replace(UserId::new(u), fresh_profile(u)))
            .expect("accepted");
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    for u in 0..8u32 {
        let expected = fresh_profile(u);
        while service.snapshot().profiles().get(UserId::new(u)) != &expected {
            assert!(Instant::now() < deadline, "update never visible");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.coalesced, 0);
    assert!(!stats.breaker_open);
    assert_eq!(stats.breaker_open_ms, 0);
    assert_eq!(stats.queue_failures, 0);
    assert!(stats.peak_pending <= 8);
    refine.stop().expect("clean stop");
}

/// Cache accounting on a frozen snapshot: every query is either a hit
/// or a miss, and a repeat of the same query on the same generation is
/// a hit returning the identical answer.
#[test]
fn cache_counters_account_for_every_cached_query() {
    let (config, profiles) = world();
    let engine = KnnEngine::in_memory(config, profiles).expect("engine");
    let (service, refine) = spawn(
        engine,
        RefineOptions {
            // Freeze at epoch 0: no iterations without updates, so the
            // generation — and with it the cache — is stable.
            max_iterations: Some(0),
            ..options()
        },
    )
    .expect("spawn");

    let first = service.neighbors(UserId::new(3)).expect("query");
    let second = service.neighbors(UserId::new(3)).expect("query");
    assert_eq!(first, second);
    let q = fresh_profile(9);
    let scan_first = service.query_profile(&q, K).expect("scan");
    let scan_second = service.query_profile(&q, K).expect("scan");
    assert_eq!(scan_first, scan_second);

    let stats = service.stats();
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        4,
        "every cached-path query is accounted exactly once"
    );
    assert_eq!(stats.cache_hits, 2, "both repeats hit on a frozen epoch");
    refine.stop().expect("clean stop");
}

fn small_world(n: usize) -> (EngineConfig, ProfileStore) {
    let (profiles, _) = clustered_profiles(
        ClusteredConfig::new(n, SEED)
            .with_clusters(3)
            .with_ratings(8, 2),
    );
    let config = EngineConfig::builder(n)
        .k(3)
        .num_partitions(2)
        .seed(SEED)
        .build()
        .expect("valid config");
    (config, profiles)
}

fn assert_bit_identical(a: &[knn_graph::Neighbor], b: &[knn_graph::Neighbor]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        assert_eq!(
            x.sim.to_bits(),
            y.sim.to_bits(),
            "cached answers must be bit-identical"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cache hits are bit-identical to uncached answers, across a
    /// snapshot swap: for arbitrary queries and arbitrary updates, the
    /// cached repeat equals both the first (uncached) answer and a
    /// recomputation on the held snapshot — before and after the swap.
    #[test]
    fn cache_hits_bit_identical_across_swaps(
        user in 0u32..60,
        k in 1usize..5,
        items in proptest::collection::vec((0u32..40, 1u32..50), 1..4),
        updates in proptest::collection::vec((0u32..60, 40u32..80, 1u32..50), 1..5),
    ) {
        let (config, profiles) = small_world(60);
        let engine = KnnEngine::in_memory(config, profiles).expect("engine");
        let (service, refine) = spawn(
            engine,
            RefineOptions {
                max_iterations: Some(0),
                ..options()
            },
        )
        .expect("spawn");

        let query = Profile::from_unsorted_pairs(
            items.iter().map(|&(i, w)| (i, w as f32 * 0.25)).collect::<Vec<_>>(),
        )
        .expect("finite query");

        // Epoch 0: miss then hit, both equal the snapshot's own answer.
        let held = service.snapshot();
        let uncached = service.neighbors(UserId::new(user)).expect("neighbors");
        let cached = service.neighbors(UserId::new(user)).expect("neighbors");
        assert_bit_identical(&uncached, &cached);
        assert_bit_identical(&cached, held.neighbors(UserId::new(user)).expect("held"));
        let scan_uncached = service.query_profile(&query, k).expect("scan");
        let scan_cached = service.query_profile(&query, k).expect("scan");
        assert_bit_identical(&scan_uncached, &scan_cached);
        assert_bit_identical(&scan_cached, &held.scan_top_k(&query, k));

        // Force a swap: streamed updates outrank the iteration cap.
        for &(u, item, w) in &updates {
            service
                .submit_update(ProfileDelta::set(
                    UserId::new(u),
                    knn_sim::ItemId::new(item),
                    w as f32 * 0.5,
                ))
                .expect("accepted");
        }
        prop_assert!(
            refine.wait_for_epoch(1, Duration::from_secs(30)),
            "updates must force a publish past the iteration cap"
        );

        // Post-swap: the old entries are invalid; miss-then-hit again
        // must match the *new* snapshot bit-for-bit.
        let fresh = service.snapshot();
        prop_assert!(fresh.generation() > held.generation());
        let uncached = service.neighbors(UserId::new(user)).expect("neighbors");
        let cached = service.neighbors(UserId::new(user)).expect("neighbors");
        assert_bit_identical(&uncached, &cached);
        assert_bit_identical(&cached, fresh.neighbors(UserId::new(user)).expect("fresh"));
        let scan_uncached = service.query_profile(&query, k).expect("scan");
        let scan_cached = service.query_profile(&query, k).expect("scan");
        assert_bit_identical(&scan_uncached, &scan_cached);
        assert_bit_identical(&scan_cached, &fresh.scan_top_k(&query, k));

        refine.stop().expect("clean stop");
    }
}
