//! Cluster-configured engines flow through the serving layer
//! unchanged: `spawn` and `spawn_sharded` accept an engine built with
//! the cluster partitioner and cluster-seeded `G(0)`, the refinement
//! loop publishes its generations, and the refined graph matches a
//! synchronous twin's — serving adds no nondeterminism on top of the
//! clustering pre-pass.

use std::time::Duration;

use knn_core::{EngineConfig, KnnEngine, PartitionerKind};
use knn_graph::UserId;
use knn_serve::{spawn, spawn_sharded, RefineOptions};
use knn_shard::ShardedEngine;
use knn_sim::generators::{clustered_profiles, ClusteredConfig};
use knn_sim::ProfileStore;

const N: usize = 120;
const K: usize = 4;
const M: usize = 5;
const SEED: u64 = 51;
const ITERATIONS: u64 = 3;

fn world() -> (EngineConfig, ProfileStore) {
    let (profiles, _) = clustered_profiles(
        ClusteredConfig::new(N, SEED)
            .with_clusters(4)
            .with_ratings(10, 2),
    );
    let config = EngineConfig::builder(N)
        .k(K)
        .num_partitions(M)
        .partitioner(PartitionerKind::Cluster)
        .cluster_init(true)
        .threads(2)
        .seed(SEED)
        .build()
        .expect("valid config");
    (config, profiles)
}

/// `G(t)` after `t` synchronous iterations of a cluster-configured
/// engine — the reference both serving paths must land on.
fn twin_graph() -> knn_graph::KnnGraph {
    let (config, profiles) = world();
    let mut twin = KnnEngine::in_memory(config, profiles).expect("twin engine");
    for _ in 0..ITERATIONS {
        twin.run_iteration().expect("twin iteration");
    }
    twin.graph().clone()
}

fn options() -> RefineOptions {
    RefineOptions {
        convergence_threshold: None,
        max_iterations: Some(ITERATIONS),
        idle_park: Duration::from_millis(1),
        repair: false,
        ..RefineOptions::default()
    }
}

#[test]
fn cluster_engine_serves_and_refines() {
    let expected = twin_graph();

    let (config, profiles) = world();
    let engine = KnnEngine::in_memory(config, profiles).expect("engine");
    assert!(engine.clusters().is_some(), "pre-pass did not run");
    let (service, refine) = spawn(engine, options()).expect("spawn");

    assert_eq!(service.neighbors(UserId::new(0)).expect("serving").len(), K);
    assert!(
        refine.wait_for_epoch(ITERATIONS, Duration::from_secs(120)),
        "the refinement loop never published epoch {ITERATIONS}"
    );

    let engine = refine.stop().expect("stop");
    assert_eq!(
        engine.graph(),
        &expected,
        "served refinement diverged from the synchronous twin"
    );
    assert!(
        engine.clusters().is_some(),
        "cluster table lost through serving"
    );
}

#[test]
fn cluster_engine_serves_sharded() {
    let expected = twin_graph();

    let (config, profiles) = world();
    let engine = ShardedEngine::in_memory(config, profiles, 3).expect("sharded engine");
    let (service, refine) = spawn_sharded(engine, options()).expect("spawn_sharded");

    assert_eq!(service.num_shards(), 3);
    assert_eq!(service.neighbors(UserId::new(0)).expect("serving").len(), K);
    assert!(
        refine.wait_for_epoch(ITERATIONS, Duration::from_secs(120)),
        "the sharded refinement loop never published epoch {ITERATIONS}"
    );

    let engine = refine.stop().expect("stop");
    assert_eq!(
        engine.graph(),
        &expected,
        "sharded served refinement diverged from the synchronous twin"
    );
}
