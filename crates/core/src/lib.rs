//! The five-phase out-of-core KNN engine from *"Scaling KNN Computation
//! over Large Graphs on a PC"* (Chiluka, Kermarrec, Olivares;
//! Middleware 2014).
//!
//! One iteration refines the KNN graph `G(t) → G(t+1)`: every user's
//! neighbor list is replaced by the top-`K` most similar users among
//! its neighbors and neighbors' neighbors — executed with at most two
//! partitions of profile data in memory at a time:
//!
//! 1. **Partitioning** ([`phase1`], [`partition`]) — split the `n`
//!    users into `m` balanced partitions minimizing the unique
//!    external-vertex count `Σ (N_in + N_out)`; write per-partition
//!    edge lists sorted by bridge vertex.
//! 2. **Tuple generation** ([`phase2`], [`tuple_table`]) — merge-scan
//!    the sorted lists to emit candidate tuples `(s, d)` into
//!    columnar per-bucket staging, deduplicated by radix sort and
//!    spilled as varint-delta runs when memory bounds demand it.
//! 3. **PI graph** ([`pigraph`], [`traversal`]) — build the
//!    partition-interaction graph and order the partition pairs with a
//!    traversal heuristic so that partition load/unload operations are
//!    minimized (the paper's Table 1 compares these heuristics).
//! 4. **KNN computation** ([`phase4`], [`topk`]) — walk the schedule
//!    with a two-slot partition cache, score every tuple, and keep
//!    per-user top-`K` accumulators, yielding `G(t+1)`.
//! 5. **Lazy profile updates** ([`phase5`]) — apply the update queue so
//!    that `P(t+1)` reflects changes queued during iteration `t`.
//!
//! Every phase performs its I/O through the
//! [`StorageBackend`](knn_store::StorageBackend) trait, so the same
//! loop runs out-of-core (a
//! [`DiskBackend`](knn_store::DiskBackend) over a working directory,
//! the paper's setting) or entirely in RAM (a
//! [`MemBackend`](knn_store::MemBackend) — same codec, same results,
//! no filesystem). [`KnnEngine`] drives the full loop:
//!
//! ```
//! use knn_core::{EngineConfig, KnnEngine};
//! use knn_sim::generators::{clustered_profiles, ClusteredConfig};
//! use knn_store::WorkingDir;
//!
//! # fn main() -> Result<(), knn_core::EngineError> {
//! let (profiles, _) = clustered_profiles(ClusteredConfig::new(200, 7));
//! let config = EngineConfig::builder(200)
//!     .k(4)
//!     .num_partitions(4)
//!     .seed(7)
//!     .build()?;
//! let wd = WorkingDir::temp("engine_doc")?;
//! let mut engine = KnnEngine::new(config, profiles, wd)?;
//! let report = engine.run_iteration()?;
//! assert!(report.tuples.unique > 0);
//! # engine.into_working_dir().destroy()?;
//! # Ok(())
//! # }
//! ```
//!
//! # Parallelism and the determinism guarantee
//!
//! [`EngineConfig::threads`](EngineConfig::threads) is the engine-wide
//! worker budget: phases 1, 2, 4, and 5 each fan their per-partition
//! (or per-bucket) work out over that many scoped workers, pulling
//! tasks from a work-stealing queue ([`mod@phase1`] sorts and encodes
//! partition streams concurrently, [`mod@phase2`] scans partitions
//! with per-scan tuple tables merged bucket-parallel, [`mod@phase4`]
//! scores tuple chunks on a worker pool, [`mod@phase5`] rebuilds
//! touched profile streams concurrently).
//!
//! The guarantee: **thread count never changes the answer.** Each unit
//! of work is a pure function of its partition's inputs, every
//! [`StorageBackend`](knn_store::StorageBackend) stream is written by
//! exactly one unit (the streams are disjoint), and merge points sort
//! before they write — so `G(t+1)`, every persisted stream byte, the
//! [`IterationReport`] (durations aside), and the backend's
//! [`IoStats`](knn_store::IoStats) totals are identical whether the
//! engine ran on 1 thread or 8, on disk or in RAM. The
//! `parallel_equivalence` integration suite pins exactly this across
//! threads × backends.
//!
//! The `knn-shard` crate extends the same contract across **shard
//! counts**: a sharded engine scans partitions on per-shard backends,
//! exchanges foreign buckets as extra merge inputs (via the
//! [`Phase2Provider`] hook), and produces bucket streams, graphs,
//! reports, and summed I/O totals byte/value-identical to one process
//! — pinned by the `shard_equivalence` suite.
//!
//! # Choosing a partitioner
//!
//! Placement is an I/O lever, never a correctness one: every
//! [`PartitionerKind`] produces the same refined graph for the same
//! `G(t)` (pinned by `tests/cluster_invariance.rs`), so pick by cost
//! profile:
//!
//! * [`PartitionerKind::Greedy`] (default) — the paper's objective
//!   minimizer; the best replication cost per phase-1 second for most
//!   workloads.
//! * [`PartitionerKind::Refined`] — greedy plus a local-move pass;
//!   buys a few percent of objective when iterations are long enough
//!   to amortize the extra phase-1 time.
//! * [`PartitionerKind::Cluster`] — packs the `knn-cluster` pre-pass's
//!   clusters into partitions; the right choice when profiles have
//!   community structure, where it concentrates tuples on the PI
//!   diagonal (watch `IterationReport::intra_partition_tuples` rise
//!   and `bytes_spilled` / cross-shard exchange fall). Requires the
//!   engine to run the pre-pass (it does automatically; the bare
//!   `instantiate` errors). Pair with
//!   [`EngineConfig::cluster_init`](config::EngineConfig::cluster_init)
//!   to also seed `G(0)` from intra-cluster edges and save an
//!   iteration to the recall floor on clustered data.
//! * [`PartitionerKind::Random`] / [`PartitionerKind::Contiguous`] —
//!   near-zero phase-1 cost and the worst/structure-dependent
//!   objective; baselines and id-ordered data respectively.
//!
//! # The phase-4 scoring funnel
//!
//! Phase 4 dominates iteration cost, so its scoring path removes
//! kernel evaluations whose outcome is already decided — and every
//! stage is **exact** (the refined graph is identical with the funnel
//! on or off):
//!
//! * **Symmetric pair dedup** — phase 2 stores each unordered
//!   candidate pair once ([`tuple_table::meta_bits`] direction bits);
//!   the symmetric kernel runs once per pair, its score offered along
//!   every recorded direction.
//! * **Prepared profiles** — partition loads wrap profiles in
//!   [`knn_sim::PreparedProfile`] (one-pass aggregates + block
//!   sketches); [`knn_sim::Measure::score_prepared`] is bit-identical
//!   to the classic `score` path.
//! * **Cross-iteration pair suppression** (`EngineConfig::prune_pairs`,
//!   default on) — the engine tracks per-user profile-dirty bits from
//!   phase 5 and the edge additions `G(t) ∖ G(t-1)`; pairs generated
//!   purely through old edges between clean users were already
//!   evaluated last iteration, and phase 1's accumulator seeding
//!   (each clean user's scored neighbor list) replays their verdict,
//!   so phase 4 skips them (`sims_skipped`). A fresh engine or resume
//!   has no bookkeeping, so its first iteration re-scores everything.
//! * **Bound-based filtering** (`EngineConfig::bound_filter`, default
//!   on) — [`knn_sim::Measure::upper_bound`] is an O(1) score
//!   ceiling; candidates that cannot beat the current k-th
//!   accumulator entry are dropped unevaluated (`sims_pruned`).
//!
//! Funnel decisions are taken on the driving thread against
//! bucket-start state, so the counters and the graph stay
//! thread-count- and backend-invariant; `tests/pruning_equivalence.rs`
//! pins pruned ≡ unpruned graph equality per iteration, updates
//! included. `KNN_TEST_PRUNE=0` routes the whole suite down the
//! full-rescore path.
//!
//! # The phase-1/2 tuple pipeline
//!
//! The tuple data plane is columnar end to end (see [`tuple_table`]):
//! struct-of-arrays staging with no per-offer hash probe or
//! allocation, LSD-radix sort-time dedup, a varint-delta spill codec
//! ([`knn_store::tuple_stream`], ~2 B per dense tuple vs the legacy
//! fixed-width 8), and a streaming loser-tree k-way merge whose
//! output encodes straight into the bucket streams phase 4 iterates.
//! Phase-2 staging is bounded by `spill_threshold` rows per bucket
//! or an explicit per-scan-table byte budget
//! ([`EngineConfig::tuple_table_memory`]); spill traffic is metered
//! (`IterationReport::bytes_spilled` / `spill_runs` /
//! `merge_passes`). On the phase-4 side, each partition's profiles
//! materialize into one CSR [`knn_sim::ProfileArena`] whose borrowed
//! [`knn_sim::PreparedRef`] views score bit-identically to the owned
//! prepared path. The pre-overhaul row pipeline remains available as
//! [`tuple_table::legacy`] behind
//! `EngineConfig::legacy_tuple_pipeline` — the paired baseline of the
//! `tuple_pipeline` bench, persisting byte-identical final buckets.
//!
//! The in-memory fast path is one constructor away — identical graphs
//! for identical seeds, verified by the backend-equivalence suite:
//!
//! ```
//! use knn_core::{EngineConfig, KnnEngine};
//! use knn_sim::generators::{clustered_profiles, ClusteredConfig};
//!
//! # fn main() -> Result<(), knn_core::EngineError> {
//! let (profiles, _) = clustered_profiles(ClusteredConfig::new(200, 7));
//! let config = EngineConfig::builder(200).k(4).num_partitions(4).seed(7).build()?;
//! let mut engine = KnnEngine::in_memory(config, profiles)?;
//! engine.run_iteration()?;
//! assert!(engine.working_dir().is_none(), "no filesystem involved");
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod error;
pub mod fasthash;
pub mod metrics;
pub mod partition;
pub mod phase1;
pub mod phase2;
pub mod phase4;
pub mod phase5;
pub mod pigraph;
pub mod reference;
pub mod topk;
pub mod traversal;
pub mod tuple_table;

mod engine;
mod par;

pub use config::{EngineConfig, EngineConfigBuilder};
pub use engine::{KnnEngine, Phase2Provider, ScrubReport};
pub use error::EngineError;
pub use metrics::IterationReport;
pub use partition::{Partitioner, PartitionerKind, Partitioning};
pub use pigraph::PiGraph;
pub use traversal::Heuristic;
