//! Phase 2's hash table `H`, bucketed by partition pair with spill to
//! the storage backend.
//!
//! The paper uses one hash table to deduplicate candidate tuples
//! `(s, d)` (the same two-hop pair arises once per bridge vertex, plus
//! cycles). Because a tuple's bucket `(part(s), part(d))` is a pure
//! function of the tuple, deduplicating *per bucket* is equivalent to
//! one global table — and the buckets are exactly the PI-graph edges
//! phase 4 streams, so the table writes its output directly in the
//! layout the executor needs.
//!
//! Memory is bounded by a spill threshold: a bucket whose in-memory
//! staging exceeds the threshold is flushed to a
//! [`StreamId::TupleRun`] as a sorted run; [`TupleTable::finalize`]
//! merges runs, deduplicates, rewrites each final bucket stream, and
//! returns the resulting [`PiGraph`].

use std::collections::{BTreeMap, HashSet};

use knn_store::backend::{read_pairs, write_pairs};
use knn_store::{StorageBackend, StreamId};

use crate::partition::Partitioning;
use crate::{EngineError, PiGraph};

/// Statistics of one phase-2 run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TupleTableStats {
    /// Tuples offered (before dedup).
    pub offered: u64,
    /// Unique tuples kept.
    pub unique: u64,
    /// Duplicates rejected.
    pub duplicates: u64,
    /// Spill runs written before finalize.
    pub spills: u64,
}

/// The bucketed, spilling tuple hash table.
pub struct TupleTable<'a> {
    backend: &'a dyn StorageBackend,
    partitioning: &'a Partitioning,
    spill_threshold: usize,
    /// In-memory staging per directed bucket.
    staging: BTreeMap<(u32, u32), Vec<(u32, u32)>>,
    /// Per-bucket dedup sets for the staged (unspilled) portion.
    seen: BTreeMap<(u32, u32), HashSet<(u32, u32)>>,
    /// Buckets that have spilled runs on disk (run count).
    spilled: BTreeMap<(u32, u32), u32>,
    counters: TupleTableStats,
}

impl<'a> TupleTable<'a> {
    /// Creates a table writing buckets through `backend`, spilling any
    /// bucket whose staging exceeds `spill_threshold` tuples.
    ///
    /// # Panics
    ///
    /// Panics if `spill_threshold == 0`.
    pub fn new(
        backend: &'a dyn StorageBackend,
        partitioning: &'a Partitioning,
        spill_threshold: usize,
    ) -> Self {
        assert!(spill_threshold > 0, "spill threshold must be positive");
        TupleTable {
            backend,
            partitioning,
            spill_threshold,
            staging: BTreeMap::new(),
            seen: BTreeMap::new(),
            spilled: BTreeMap::new(),
            counters: TupleTableStats::default(),
        }
    }

    /// Offers the tuple `(s, d)`; self-tuples (`s == d`) are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] if a spill write fails.
    pub fn offer(&mut self, s: u32, d: u32) -> Result<(), EngineError> {
        if s == d {
            return Ok(());
        }
        self.counters.offered += 1;
        let key = (
            self.partitioning.partition_of(knn_graph::UserId::new(s)),
            self.partitioning.partition_of(knn_graph::UserId::new(d)),
        );
        let seen = self.seen.entry(key).or_default();
        if !seen.insert((s, d)) {
            self.counters.duplicates += 1;
            return Ok(());
        }
        let staged = self.staging.entry(key).or_default();
        staged.push((s, d));
        if staged.len() >= self.spill_threshold {
            self.spill(key)?;
        }
        Ok(())
    }

    fn spill(&mut self, key: (u32, u32)) -> Result<(), EngineError> {
        let run_idx = *self.spilled.get(&key).unwrap_or(&0);
        let staged = self.staging.get_mut(&key).expect("spill of unknown bucket");
        staged.sort_unstable();
        write_pairs(
            self.backend,
            StreamId::TupleRun(key.0, key.1, run_idx),
            staged,
        )?;
        staged.clear();
        // The per-bucket seen set must survive spills for global
        // dedup correctness; only the staging vector is freed.
        self.spilled.insert(key, run_idx + 1);
        self.counters.spills += 1;
        Ok(())
    }

    /// Flushes and merges every bucket to its final stream, returning
    /// the PI graph (bucket → tuple count) and the run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] on I/O failure.
    pub fn finalize(mut self) -> Result<(PiGraph, TupleTableStats), EngineError> {
        let mut pi = PiGraph::new(self.partitioning.num_partitions());
        let keys: Vec<(u32, u32)> = self
            .staging
            .keys()
            .chain(self.spilled.keys())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for key in keys {
            let mut tuples: Vec<(u32, u32)> = self.staging.remove(&key).unwrap_or_default();
            if let Some(&runs) = self.spilled.get(&key) {
                for run in 0..runs {
                    let stream = StreamId::TupleRun(key.0, key.1, run);
                    tuples.extend(read_pairs(self.backend, stream)?);
                    self.backend.delete(stream)?;
                }
            }
            // Runs were deduplicated globally at offer time; sort for
            // deterministic, scan-friendly bucket files.
            tuples.sort_unstable();
            debug_assert!(
                tuples.windows(2).all(|w| w[0] != w[1]),
                "dedup invariant broken"
            );
            if tuples.is_empty() {
                continue;
            }
            write_pairs(self.backend, StreamId::TupleBucket(key.0, key.1), &tuples)?;
            self.counters.unique += tuples.len() as u64;
            pi.add_bucket(key.0, key.1, tuples.len() as u64);
        }
        Ok((pi, self.counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_store::MemBackend;

    fn setup(n: usize, m: usize) -> (MemBackend, Partitioning) {
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        (MemBackend::new(), p)
    }

    fn read_bucket(b: &dyn StorageBackend, i: u32, j: u32) -> Vec<(u32, u32)> {
        read_pairs(b, StreamId::TupleBucket(i, j)).unwrap()
    }

    #[test]
    fn dedups_within_bucket() {
        let (b, p) = setup(4, 2);
        let mut t = TupleTable::new(&b, &p, 1000);
        for _ in 0..3 {
            t.offer(0, 1).unwrap(); // bucket (0, 1): users 0→p0, 1→p1
        }
        t.offer(0, 3).unwrap(); // also bucket (0, 1)
        let (pi, st) = t.finalize().unwrap();
        assert_eq!(st.offered, 4);
        assert_eq!(st.duplicates, 2);
        assert_eq!(st.unique, 2);
        assert_eq!(pi.bucket_weight(0, 1), 2);
        assert_eq!(read_bucket(&b, 0, 1), vec![(0, 1), (0, 3)]);
    }

    #[test]
    fn self_tuples_ignored() {
        let (b, p) = setup(4, 2);
        let mut t = TupleTable::new(&b, &p, 1000);
        t.offer(2, 2).unwrap();
        let (pi, st) = t.finalize().unwrap();
        assert_eq!(st.offered, 0);
        assert_eq!(pi.total_tuples(), 0);
    }

    #[test]
    fn spill_and_merge_preserves_exact_tuple_set() {
        let (b, p) = setup(100, 4);
        // Tiny threshold forces many spills.
        let mut t = TupleTable::new(&b, &p, 3);
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for s in 0..50u32 {
            for d in 50..60u32 {
                t.offer(s, d).unwrap();
                // Offer every tuple twice: dedup must hold across spills.
                t.offer(s, d).unwrap();
                expected.push((s, d));
            }
        }
        let (pi, st) = t.finalize().unwrap();
        assert!(st.spills > 0, "threshold should have forced spills");
        assert_eq!(st.unique as usize, expected.len());
        assert_eq!(st.duplicates as usize, expected.len());
        // Re-read all buckets and compare with the expected set.
        let mut got = Vec::new();
        for ((i, j), _) in pi.iter_buckets() {
            got.extend(read_bucket(&b, i, j));
        }
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn buckets_key_by_partition_pair() {
        let (b, p) = setup(6, 3); // user u → partition u % 3
        let mut t = TupleTable::new(&b, &p, 100);
        t.offer(0, 1).unwrap(); // p0 → p1
        t.offer(1, 0).unwrap(); // p1 → p0
        t.offer(3, 4).unwrap(); // p0 → p1 again
        t.offer(2, 5).unwrap(); // p2 → p2 (users 2 and 5 share partition 2)
        let (pi, _) = t.finalize().unwrap();
        assert_eq!(pi.bucket_weight(0, 1), 2);
        assert_eq!(pi.bucket_weight(1, 0), 1);
        assert_eq!(pi.bucket_weight(2, 2), 1);
        assert_eq!(pi.num_pairs(), 1);
        assert_eq!(pi.self_pairs(), vec![2]);
    }

    #[test]
    fn run_files_are_cleaned_up() {
        let (b, p) = setup(20, 2);
        let mut t = TupleTable::new(&b, &p, 2);
        for s in 0..10u32 {
            t.offer(s, (s + 1) % 20).unwrap();
        }
        let (_, st) = t.finalize().unwrap();
        assert!(st.spills > 0);
        // Only final bucket streams remain.
        assert!(b
            .list()
            .unwrap()
            .iter()
            .all(|s| matches!(s, StreamId::TupleBucket(..))));
    }

    #[test]
    fn empty_table_finalizes_to_empty_pi() {
        let (b, p) = setup(4, 2);
        let t = TupleTable::new(&b, &p, 10);
        let (pi, st) = t.finalize().unwrap();
        assert_eq!(pi.total_tuples(), 0);
        assert_eq!(st.offered, 0);
    }
}
