use std::fmt;

use knn_graph::GraphError;
use knn_store::StoreError;

/// Errors produced by the out-of-core engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// Invalid engine configuration.
    Config {
        /// What is wrong.
        detail: String,
    },
    /// The supplied graph/profile inputs disagree with the
    /// configuration (e.g. wrong vertex count).
    InputMismatch {
        /// What disagrees.
        detail: String,
    },
    /// A queued profile update is invalid (unknown user, non-finite
    /// weight).
    InvalidUpdate {
        /// What is wrong.
        detail: String,
    },
    /// Storage-layer failure.
    Store(StoreError),
    /// Graph-layer failure.
    Graph(GraphError),
}

impl EngineError {
    /// Builds a configuration error.
    pub fn config(detail: impl Into<String>) -> Self {
        EngineError::Config {
            detail: detail.into(),
        }
    }

    /// Builds an input-mismatch error.
    pub fn input(detail: impl Into<String>) -> Self {
        EngineError::InputMismatch {
            detail: detail.into(),
        }
    }

    /// Builds an invalid-update error.
    pub fn update(detail: impl Into<String>) -> Self {
        EngineError::InvalidUpdate {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            EngineError::InputMismatch { detail } => write!(f, "input mismatch: {detail}"),
            EngineError::InvalidUpdate { detail } => write!(f, "invalid profile update: {detail}"),
            EngineError::Store(e) => write!(f, "storage error: {e}"),
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Store(e) => Some(e),
            EngineError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<knn_cluster::ClusterError> for EngineError {
    fn from(e: knn_cluster::ClusterError) -> Self {
        match e {
            knn_cluster::ClusterError::Config(detail) => EngineError::Config { detail },
            knn_cluster::ClusterError::Store(e) => EngineError::Store(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<EngineError>();
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<EngineError> = vec![
            EngineError::config("m must be positive"),
            EngineError::input("graph has 3 vertices, config says 4"),
            EngineError::update("user 99 out of range"),
            EngineError::Store(StoreError::corrupt("/f", "bad")),
            EngineError::Graph(GraphError::SelfLoop {
                vertex: knn_graph::UserId::new(0),
            }),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn sources_are_exposed() {
        use std::error::Error;
        assert!(EngineError::Store(StoreError::corrupt("/f", "x"))
            .source()
            .is_some());
        assert!(EngineError::config("x").source().is_none());
    }
}
