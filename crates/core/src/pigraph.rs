//! The partition-interaction (PI) graph — phase 3's data structure.
//!
//! Each node is a partition; a directed edge `(Ri, Rj)` stands for the
//! bucket of tuples `{(s, d) : s ∈ Ri, d ∈ Rj}` produced by phase 2.
//! Processing requires co-loading `Ri` and `Rj`, so the traversal
//! works over **unordered pairs**: when `{Ri, Rj}` are resident, both
//! buckets `(i, j)` and `(j, i)` are scored (self-pairs `(i, i)` need
//! only one resident partition).

use std::collections::BTreeMap;

/// The partition-interaction graph with per-bucket tuple counts.
///
/// ```
/// use knn_core::PiGraph;
///
/// let mut pi = PiGraph::new(3);
/// pi.add_bucket(0, 1, 10);
/// pi.add_bucket(1, 0, 5);
/// pi.add_bucket(2, 2, 7);
/// assert_eq!(pi.pair_weight(0, 1), 15);       // both directions
/// assert_eq!(pi.pair_weight(2, 2), 7);        // self-pair
/// assert_eq!(pi.degree(0), 1);
/// assert_eq!(pi.num_pairs(), 1);              // self-pairs not counted
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PiGraph {
    m: usize,
    /// Directed bucket tuple counts, keyed `(src, dst)`; `BTreeMap`
    /// keeps every iteration order deterministic.
    buckets: BTreeMap<(u32, u32), u64>,
}

impl PiGraph {
    /// Creates an empty PI graph over `m` partitions.
    pub fn new(m: usize) -> Self {
        PiGraph {
            m,
            buckets: BTreeMap::new(),
        }
    }

    /// Number of partitions (nodes).
    pub fn num_partitions(&self) -> usize {
        self.m
    }

    /// Registers (or accumulates into) the directed bucket `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range or `count == 0`.
    pub fn add_bucket(&mut self, i: u32, j: u32, count: u64) {
        assert!(
            (i as usize) < self.m && (j as usize) < self.m,
            "partition out of range"
        );
        assert!(count > 0, "empty buckets must not be registered");
        *self.buckets.entry((i, j)).or_insert(0) += count;
    }

    /// The tuple count of the directed bucket `(i, j)` (0 if absent).
    pub fn bucket_weight(&self, i: u32, j: u32) -> u64 {
        self.buckets.get(&(i, j)).copied().unwrap_or(0)
    }

    /// Iterates directed buckets `((i, j), count)` in key order.
    pub fn iter_buckets(&self) -> impl Iterator<Item = ((u32, u32), u64)> + '_ {
        self.buckets.iter().map(|(&k, &v)| (k, v))
    }

    /// Combined tuple count of the unordered pair `{i, j}`: both
    /// directed buckets for `i != j`, the single self-bucket for
    /// `i == j`.
    pub fn pair_weight(&self, i: u32, j: u32) -> u64 {
        if i == j {
            self.bucket_weight(i, i)
        } else {
            self.bucket_weight(i, j) + self.bucket_weight(j, i)
        }
    }

    /// All unordered pairs `{i, j}` (as `(min, max)`) with nonzero
    /// weight, **excluding** self-pairs, in deterministic order.
    pub fn unordered_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self
            .buckets
            .keys()
            .filter(|&&(i, j)| i != j)
            .map(|&(i, j)| if i < j { (i, j) } else { (j, i) })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Partitions with a nonzero self-bucket `(i, i)`, ascending.
    pub fn self_pairs(&self) -> Vec<u32> {
        self.buckets
            .keys()
            .filter(|&&(i, j)| i == j)
            .map(|&(i, _)| i)
            .collect()
    }

    /// Distinct neighbor partitions of `i` (either direction, `!= i`),
    /// ascending.
    pub fn neighbors(&self, i: u32) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .buckets
            .keys()
            .filter_map(|&(a, b)| {
                if a == i && b != i {
                    Some(b)
                } else if b == i && a != i {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of distinct neighbor partitions of `i`.
    pub fn degree(&self, i: u32) -> usize {
        self.neighbors(i).len()
    }

    /// Number of unordered non-self pairs.
    pub fn num_pairs(&self) -> usize {
        self.unordered_pairs().len()
    }

    /// Total tuples across all buckets.
    pub fn total_tuples(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Builds the PI graph a plain graph's edges would induce if that
    /// graph *were* the PI structure — the reading the paper uses for
    /// its Table-1 evaluation ("if the PI graph structure were to
    /// resemble these networks"). Each undirected input pair becomes a
    /// weight-1 pair.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= m`.
    pub fn from_network_shape(m: usize, undirected_pairs: &[(u32, u32)]) -> Self {
        let mut pi = PiGraph::new(m);
        for &(a, b) in undirected_pairs {
            pi.add_bucket(a, b, 1);
        }
        pi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PiGraph {
        let mut pi = PiGraph::new(4);
        pi.add_bucket(0, 1, 3);
        pi.add_bucket(1, 0, 2);
        pi.add_bucket(0, 2, 1);
        pi.add_bucket(3, 3, 9);
        pi
    }

    #[test]
    fn weights_accumulate() {
        let mut pi = PiGraph::new(2);
        pi.add_bucket(0, 1, 2);
        pi.add_bucket(0, 1, 3);
        assert_eq!(pi.bucket_weight(0, 1), 5);
    }

    #[test]
    fn pair_weight_sums_both_directions() {
        let pi = sample();
        assert_eq!(pi.pair_weight(0, 1), 5);
        assert_eq!(pi.pair_weight(1, 0), 5);
        assert_eq!(pi.pair_weight(0, 2), 1);
        assert_eq!(pi.pair_weight(3, 3), 9);
        assert_eq!(pi.pair_weight(1, 2), 0);
    }

    #[test]
    fn unordered_pairs_dedupe_directions() {
        let pi = sample();
        assert_eq!(pi.unordered_pairs(), vec![(0, 1), (0, 2)]);
        assert_eq!(pi.num_pairs(), 2);
    }

    #[test]
    fn self_pairs_listed_separately() {
        let pi = sample();
        assert_eq!(pi.self_pairs(), vec![3]);
    }

    #[test]
    fn neighbors_and_degree() {
        let pi = sample();
        assert_eq!(pi.neighbors(0), vec![1, 2]);
        assert_eq!(pi.degree(0), 2);
        assert_eq!(pi.degree(3), 0, "self-pair adds no neighbor");
        assert_eq!(pi.neighbors(2), vec![0]);
    }

    #[test]
    fn total_tuples_sums_everything() {
        assert_eq!(sample().total_tuples(), 15);
    }

    #[test]
    fn from_network_shape_maps_pairs() {
        let pi = PiGraph::from_network_shape(3, &[(0, 1), (1, 2)]);
        assert_eq!(pi.num_pairs(), 2);
        assert_eq!(pi.total_tuples(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_bucket() {
        let mut pi = PiGraph::new(2);
        pi.add_bucket(0, 5, 1);
    }

    #[test]
    #[should_panic(expected = "empty buckets")]
    fn rejects_zero_weight() {
        let mut pi = PiGraph::new(2);
        pi.add_bucket(0, 1, 0);
    }
}
