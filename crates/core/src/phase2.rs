//! Phase 2: candidate tuple generation and deduplication.
//!
//! Streams each partition's sorted in-edge and out-edge streams once,
//! joining on the bridge vertex `v`: every `(s, v)` in-edge crossed
//! with every `(v, d)` out-edge yields the two-hop candidate `(s, d)`,
//! and the out-edges themselves are the direct candidates `(v, d)` —
//! together the "neighbors and neighbors' neighbors" set the paper's
//! KNN step scores. Uniqueness is enforced by the hash table
//! ([`crate::tuple_table::TupleTable`]).
//!
//! Partitions are scanned **in parallel**: every scan owns a private
//! [`TupleTable`] spilling into its own run namespace, and
//! [`crate::tuple_table::merge_parts`] folds the per-scan outputs into
//! the final bucket streams. The algorithm is the same at every thread
//! count — only the distribution of scans over workers changes — so
//! tuple buckets, [`PiGraph`] weights, and [`TupleTableStats`] are
//! identical whether phase 2 ran on one thread or eight.

use knn_graph::EdgeAdditions;
use knn_store::backend::read_pairs;
use knn_store::{StorageBackend, StreamId};

use crate::par;
use crate::partition::Partitioning;
use crate::tuple_table::{legacy, merge_parts, BucketMeta, TupleSink, TupleTable, TupleTableStats};
use crate::{EngineError, PiGraph};

/// Output of phase 2: the PI graph over the written tuple buckets plus
/// dedup statistics and the per-bucket tuple metadata (direction bits
/// always; old-path bits when an edge-addition oracle was supplied).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase2Output {
    /// The partition-interaction graph (bucket tuple counts).
    pub pi: PiGraph,
    /// Tuple-table statistics.
    pub stats: TupleTableStats,
    /// Per-bucket tuple metadata, aligned with each bucket stream's
    /// sorted tuple order: which directions of each canonical tuple
    /// exist (phase 4 scores each unordered pair once and offers along
    /// these), and which were already evaluated last iteration.
    pub tuple_meta: BucketMeta,
}

/// Options of one phase-2 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase2Options {
    /// Per-bucket staging row count that triggers a spill.
    pub spill_threshold: usize,
    /// Optional per-scan-table staging byte budget (see
    /// [`TupleTable::with_memory_budget`]); peak phase-2 staging is
    /// then at most `min(threads, partitions) × budget`.
    pub tuple_table_memory: Option<usize>,
    /// Worker budget for the partition scans and the bucket merge.
    pub threads: usize,
    /// Route through the pre-overhaul row-based pipeline
    /// ([`legacy`]) — the paired baseline of the `tuple_pipeline`
    /// bench. Final buckets, metadata, and dedup stats are identical
    /// either way; only the data plane differs.
    pub legacy_pipeline: bool,
}

impl Phase2Options {
    /// Options with the given spill threshold and worker budget, no
    /// byte budget, columnar pipeline.
    pub fn new(spill_threshold: usize, threads: usize) -> Self {
        Phase2Options {
            spill_threshold,
            tuple_table_memory: None,
            threads,
            legacy_pipeline: false,
        }
    }
}

/// Runs phase 2 over the edge streams written by
/// [`crate::phase1::write_partition_edges`], scanning partitions
/// across up to `options.threads` workers.
///
/// With an `additions` oracle (the edges of `G(t)` absent from
/// `G(t-1)`), every offered tuple is tagged with whether its
/// generating path consists entirely of **old** edges — such a pair
/// was already generated and evaluated last iteration, which is what
/// lets phase 4 skip its kernel evaluation. The tag does not change
/// the tuple set, the bucket bytes, the PI graph, or the stats (the
/// old-path bits live in the returned [`BucketMeta`] and, transiently,
/// in the spill runs the merge consumes).
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failure or corrupt edge
/// streams.
pub fn generate_tuples(
    partitioning: &Partitioning,
    backend: &dyn StorageBackend,
    options: &Phase2Options,
    additions: Option<&EdgeAdditions>,
) -> Result<Phase2Output, EngineError> {
    backend.clear_tuples()?;
    let m = partitioning.num_partitions();
    let (pi, stats, tuple_meta) = if options.legacy_pipeline {
        let parts = par::run_indexed(m, options.threads, |p| {
            let p = p as u32;
            let mut table = legacy::LegacyTupleTable::with_namespace(
                backend,
                partitioning,
                options.spill_threshold,
                p,
            );
            scan_partition(p, backend, &mut table, additions)?;
            Ok(table.into_parts())
        })?;
        legacy::merge_legacy_parts(backend, m, parts, options.threads)?
    } else {
        let all: Vec<u32> = (0..m as u32).collect();
        let parts = scan_tables(partitioning, backend, options, additions, &all)?;
        merge_parts(backend, m, parts, options.threads)?
    };
    Ok(Phase2Output {
        pi,
        stats,
        tuple_meta,
    })
}

/// Scans the given `partitions` (columnar pipeline), returning one
/// [`TableParts`](crate::tuple_table::TableParts) per partition in the
/// given order. This is [`generate_tuples`]'s scan half, exposed so a
/// sharded driver can scan only the partitions a shard owns, extract
/// the foreign buckets, and feed the rest into
/// [`crate::tuple_table::merge_parts_with_exchange`]. Each table's run
/// namespace is its **partition id** (not its slot in `partitions`),
/// so spill-run stream names are identical however partitions are
/// divided among callers.
///
/// # Errors
///
/// Returns [`EngineError::Store`] on I/O failure or corrupt edge
/// streams.
pub fn scan_tables(
    partitioning: &Partitioning,
    backend: &dyn StorageBackend,
    options: &Phase2Options,
    additions: Option<&EdgeAdditions>,
    partitions: &[u32],
) -> Result<Vec<crate::tuple_table::TableParts>, EngineError> {
    par::run_indexed(partitions.len(), options.threads, |idx| {
        let p = partitions[idx];
        let mut table =
            TupleTable::with_namespace(backend, partitioning, options.spill_threshold, p)
                .with_memory_budget(options.tuple_table_memory);
        scan_partition(p, backend, &mut table, additions)?;
        Ok(table.into_parts())
    })
}

/// Scans one partition's edge streams, offering every direct and
/// two-hop candidate to `table` (tagged with path age when an oracle
/// is present). Generic over the sink so both pipelines share the
/// scan.
pub fn scan_partition<T: TupleSink>(
    p: u32,
    backend: &dyn StorageBackend,
    table: &mut T,
    additions: Option<&EdgeAdditions>,
) -> Result<(), EngineError> {
    // Rows are (bridge, other), sorted by bridge then other.
    let in_rows = read_pairs(backend, StreamId::InEdges(p))?;
    let out_rows = read_pairs(backend, StreamId::OutEdges(p))?;

    // An edge is "old" when it is not among this iteration's
    // additions; a path is old when every edge on it is.
    let edge_is_old = |s: u32, d: u32| additions.is_some_and(|a| !a.is_added(s, d));

    // Direct candidates: each out-edge (v, d) of G(t).
    for &(v, d) in &out_rows {
        table.offer_flagged(v, d, edge_is_old(v, d))?;
    }

    // Two-hop candidates: group both lists by bridge and cross.
    let (mut i, mut j) = (0usize, 0usize);
    while i < in_rows.len() && j < out_rows.len() {
        let bridge = in_rows[i].0;
        match bridge.cmp(&out_rows[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = in_rows[i..].partition_point(|r| r.0 == bridge) + i;
                let j_end = out_rows[j..].partition_point(|r| r.0 == bridge) + j;
                for &(_, s) in &in_rows[i..i_end] {
                    // The in-leg s → bridge is shared by every tuple
                    // of this group; check it once.
                    let in_leg_old = edge_is_old(s, bridge);
                    for &(_, d) in &out_rows[j..j_end] {
                        table.offer_flagged(s, d, in_leg_old && edge_is_old(bridge, d))?;
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(())
}

/// Reference tuple set for a KNN graph: all direct edges plus all
/// two-hop pairs `(s, d)` with `s → v → d`, excluding self-pairs.
/// Used by tests and the reference engine to validate
/// [`generate_tuples`].
pub fn reference_tuple_set(graph: &knn_graph::KnnGraph) -> std::collections::HashSet<(u32, u32)> {
    let n = graph.num_vertices();
    let mut set = std::collections::HashSet::new();
    // In-neighbor lists: sources per bridge.
    let mut sources: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (s, nb) in graph.iter_edges() {
        set.insert((s.raw(), nb.id.raw()));
        sources[nb.id.index()].push(s.raw());
    }
    for v in 0..n as u32 {
        let bridge = knn_graph::UserId::new(v);
        for &s in &sources[bridge.index()] {
            for d_nb in graph.neighbors(bridge) {
                if s != d_nb.id.raw() {
                    set.insert((s, d_nb.id.raw()));
                }
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::write_partition_edges;
    use knn_graph::{KnnGraph, Neighbor, UserId};
    use knn_store::MemBackend;

    fn setup(n: usize, m: usize) -> (MemBackend, Partitioning) {
        let assignment: Vec<u32> = (0..n).map(|u| (u % m) as u32).collect();
        let p = Partitioning::from_assignment(assignment, m).unwrap();
        (MemBackend::new(), p)
    }

    fn run_phase2(g: &KnnGraph, b: &dyn StorageBackend, p: &Partitioning) -> Phase2Output {
        write_partition_edges(g, p, b, 1, None).unwrap();
        generate_tuples(p, b, &Phase2Options::new(1 << 16, 1), None).unwrap()
    }

    /// Expands the canonical buckets back to the directed tuple view
    /// (what the reference engine scores) via the direction bits.
    fn all_tuples(
        out: &Phase2Output,
        b: &dyn StorageBackend,
    ) -> std::collections::HashSet<(u32, u32)> {
        use crate::tuple_table::meta_bits;
        let mut set = std::collections::HashSet::new();
        for ((i, j), _) in out.pi.iter_buckets() {
            for (idx, (u, v, _)) in knn_store::backend::read_tuples(b, StreamId::TupleBucket(i, j))
                .unwrap()
                .into_iter()
                .enumerate()
            {
                let bits = out.tuple_meta.bits((i, j), idx);
                if bits & meta_bits::FWD != 0 {
                    set.insert((u, v));
                }
                if bits & meta_bits::BWD != 0 {
                    set.insert((v, u));
                }
            }
        }
        set
    }

    #[test]
    fn path_graph_generates_direct_and_two_hop() {
        // 0→1→2: direct (0,1),(1,2); two-hop (0,2).
        let (b, p) = setup(3, 2);
        let mut g = KnnGraph::new(3, 2);
        g.insert(UserId::new(0), Neighbor::new(UserId::new(1), 0.5));
        g.insert(UserId::new(1), Neighbor::new(UserId::new(2), 0.5));
        let out = run_phase2(&g, &b, &p);
        let got = all_tuples(&out, &b);
        let expected: std::collections::HashSet<(u32, u32)> =
            [(0, 1), (1, 2), (0, 2)].into_iter().collect();
        assert_eq!(got, expected);
        assert_eq!(out.stats.unique, 3);
    }

    #[test]
    fn cycle_deduplicates_and_skips_self() {
        // Triangle 0→1→2→0: two-hop pairs include (0,2),(1,0),(2,1);
        // (0,0) etc. are skipped as self-tuples.
        let (b, p) = setup(3, 3);
        let mut g = KnnGraph::new(3, 1);
        g.insert(UserId::new(0), Neighbor::new(UserId::new(1), 0.5));
        g.insert(UserId::new(1), Neighbor::new(UserId::new(2), 0.5));
        g.insert(UserId::new(2), Neighbor::new(UserId::new(0), 0.5));
        let out = run_phase2(&g, &b, &p);
        let got = all_tuples(&out, &b);
        assert_eq!(got, reference_tuple_set(&g));
        assert!(got.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn diamond_counts_duplicate_once() {
        // a→b→d and a→c→d: tuple (a,d) generated via two bridges.
        let (b, p) = setup(4, 2);
        let mut g = KnnGraph::new(4, 2);
        let nb = |id: u32| Neighbor::new(UserId::new(id), 0.5);
        g.insert(UserId::new(0), nb(1));
        g.insert(UserId::new(0), nb(2));
        g.insert(UserId::new(1), nb(3));
        g.insert(UserId::new(2), nb(3));
        let out = run_phase2(&g, &b, &p);
        assert!(
            out.stats.duplicates >= 1,
            "diamond tuple must be deduplicated"
        );
        let got = all_tuples(&out, &b);
        assert_eq!(got, reference_tuple_set(&g));
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..5u64 {
            let n = 40;
            let g = KnnGraph::random_init(n, 4, seed);
            let (b, p) = setup(n, 5);
            let out = run_phase2(&g, &b, &p);
            let got = all_tuples(&out, &b);
            assert_eq!(got, reference_tuple_set(&g), "seed {seed}");
            assert_eq!(out.tuple_meta.num_directed() as usize, got.len());
            assert!(out.stats.unique as usize <= got.len());
        }
    }

    #[test]
    fn pi_graph_weights_match_bucket_contents() {
        let (b, p) = setup(30, 4);
        let g = KnnGraph::random_init(30, 3, 9);
        let out = run_phase2(&g, &b, &p);
        for ((i, j), w) in out.pi.iter_buckets() {
            let rows = knn_store::backend::read_tuples(&b, StreamId::TupleBucket(i, j)).unwrap();
            assert_eq!(rows.len() as u64, w);
            for (s, d, _) in rows {
                assert_eq!(p.partition_of(UserId::new(s)), i);
                assert_eq!(p.partition_of(UserId::new(d)), j);
            }
        }
    }

    /// The tuple metadata against brute-force oracles: each direction
    /// bit matches membership in the directed reference tuple set, and
    /// each old-path bit matches the directed tuple set of the
    /// shared-edge (old ∩ new) subgraph.
    #[test]
    fn tuple_meta_matches_brute_force_path_analysis() {
        use crate::tuple_table::meta_bits;
        for seed in [3u64, 8] {
            let n = 40;
            let old_g = KnnGraph::random_init(n, 4, seed);
            // Perturb: rebuild with a different seed so a realistic
            // mix of edges is shared/new.
            let new_g = KnnGraph::random_init(n, 4, seed + 100);
            let additions = new_g.additions_since(&old_g);
            let (b, p) = setup(n, 4);
            write_partition_edges(&new_g, &p, &b, 1, None).unwrap();
            let out =
                generate_tuples(&p, &b, &Phase2Options::new(1 << 16, 1), Some(&additions)).unwrap();

            // Brute-force oracles: the directed tuple sets of the new
            // graph and of the shared-edge subgraph.
            let directed = reference_tuple_set(&new_g);
            let mut shared = KnnGraph::new(n, 4);
            for (s, nb) in new_g.iter_edges() {
                if !additions.is_added(s.raw(), nb.id.raw()) {
                    shared.insert(s, nb);
                }
            }
            let old_pairs = reference_tuple_set(&shared);

            let mut checked = 0usize;
            let mut old_count = 0usize;
            for ((i, j), _) in out.pi.iter_buckets() {
                let bucket =
                    knn_store::backend::read_tuples(&b, StreamId::TupleBucket(i, j)).unwrap();
                for (idx, &(u, v, _)) in bucket.iter().enumerate() {
                    let bits = out.tuple_meta.bits((i, j), idx);
                    let label = format!("seed {seed}: tuple ({u}, {v})");
                    assert_eq!(
                        bits & meta_bits::FWD != 0,
                        directed.contains(&(u, v)),
                        "{label} FWD"
                    );
                    assert_eq!(
                        bits & meta_bits::BWD != 0,
                        directed.contains(&(v, u)),
                        "{label} BWD"
                    );
                    assert_eq!(
                        bits & meta_bits::OLD_FWD != 0,
                        old_pairs.contains(&(u, v)),
                        "{label} OLD_FWD"
                    );
                    assert_eq!(
                        bits & meta_bits::OLD_BWD != 0,
                        old_pairs.contains(&(v, u)),
                        "{label} OLD_BWD"
                    );
                    checked += 1;
                    old_count += (bits & (meta_bits::OLD_FWD | meta_bits::OLD_BWD) != 0) as usize;
                }
            }
            assert_eq!(checked as u64, out.stats.unique);
            assert!(old_count > 0, "seed {seed}: some paths must be old");
            assert!(
                (old_count as u64) < out.stats.unique,
                "seed {seed}: some paths must be new"
            );
        }
    }

    /// Tagging tuples never changes what is persisted: bucket bytes,
    /// PI graph, and stats are identical with and without the oracle.
    #[test]
    fn oracle_does_not_change_buckets_or_stats() {
        let n = 30;
        let g = KnnGraph::random_init(n, 3, 17);
        let additions = g.additions_since(&KnnGraph::new(n, 3)); // everything new
        let mut outputs = Vec::new();
        for oracle in [None, Some(&additions)] {
            let (b, p) = setup(n, 3);
            write_partition_edges(&g, &p, &b, 1, None).unwrap();
            let out = generate_tuples(&p, &b, &Phase2Options::new(1 << 16, 1), oracle).unwrap();
            let mut streams: Vec<(StreamId, Vec<u8>)> = b
                .list()
                .unwrap()
                .into_iter()
                .map(|s| (s, b.read(s).unwrap()))
                .collect();
            streams.sort_by_key(|&(s, _)| s);
            outputs.push((out.pi, out.stats, streams));
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    /// The pipeline knob is output-invariant: the legacy row pipeline
    /// and the columnar pipeline persist identical buckets and report
    /// identical PI graphs, metadata, and dedup stats for real scans,
    /// oracle included (spill counts legitimately differ).
    #[test]
    fn legacy_pipeline_flag_is_output_invariant() {
        let n = 50;
        let old_g = KnnGraph::random_init(n, 4, 5);
        let g = KnnGraph::random_init(n, 4, 55);
        let additions = g.additions_since(&old_g);
        for spill_threshold in [2usize, 1 << 16] {
            let mut outputs = Vec::new();
            for legacy in [false, true] {
                let (b, p) = setup(n, 4);
                write_partition_edges(&g, &p, &b, 1, None).unwrap();
                let mut opts = Phase2Options::new(spill_threshold, 2);
                opts.legacy_pipeline = legacy;
                let out = generate_tuples(&p, &b, &opts, Some(&additions)).unwrap();
                let mut streams: Vec<(StreamId, Vec<u8>)> = b
                    .list()
                    .unwrap()
                    .into_iter()
                    .filter(|s| matches!(s, StreamId::TupleBucket(..)))
                    .map(|s| (s, b.read(s).unwrap()))
                    .collect();
                streams.sort_by_key(|&(s, _)| s);
                outputs.push((
                    out.pi,
                    (out.stats.offered, out.stats.unique, out.stats.duplicates),
                    out.tuple_meta,
                    streams,
                ));
            }
            assert_eq!(outputs[0], outputs[1], "spill={spill_threshold}");
        }
    }

    #[test]
    fn empty_graph_produces_no_tuples() {
        let (b, p) = setup(4, 2);
        let g = KnnGraph::new(4, 2);
        let out = run_phase2(&g, &b, &p);
        assert_eq!(out.pi.total_tuples(), 0);
        assert_eq!(out.stats.offered, 0);
    }

    #[test]
    fn stale_buckets_from_previous_iteration_are_cleared() {
        let (b, p) = setup(3, 2);
        knn_store::backend::write_pairs(&b, StreamId::TupleBucket(1, 1), &[(9, 9)]).unwrap();
        let g = KnnGraph::new(3, 2);
        let _ = run_phase2(&g, &b, &p);
        assert!(
            !b.exists(StreamId::TupleBucket(1, 1)),
            "stale bucket must be removed"
        );
    }

    /// The determinism guarantee at the phase boundary: identical
    /// buckets (bytes included), PI graph, and stats at every thread
    /// count, on spill-heavy configurations too.
    #[test]
    fn thread_count_does_not_change_phase2_output() {
        for spill_threshold in [1usize, 4, 1 << 16] {
            let n = 60;
            let g = KnnGraph::random_init(n, 4, 21);
            type Reference = (Phase2Output, Vec<(StreamId, Vec<u8>)>);
            let mut reference: Option<Reference> = None;
            for threads in [1usize, 2, 4] {
                let (b, p) = setup(n, 5);
                write_partition_edges(&g, &p, &b, threads, None).unwrap();
                let out =
                    generate_tuples(&p, &b, &Phase2Options::new(spill_threshold, threads), None)
                        .unwrap();
                let mut streams: Vec<(StreamId, Vec<u8>)> = b
                    .list()
                    .unwrap()
                    .into_iter()
                    .filter(|s| matches!(s, StreamId::TupleBucket(..)))
                    .map(|s| (s, b.read(s).unwrap()))
                    .collect();
                streams.sort_by_key(|&(s, _)| s);
                match &reference {
                    None => reference = Some((out, streams)),
                    Some((ref_out, ref_streams)) => {
                        assert_eq!(ref_out, &out, "threads={threads} spill={spill_threshold}");
                        assert_eq!(
                            ref_streams, &streams,
                            "bucket bytes diverged at threads={threads} spill={spill_threshold}"
                        );
                    }
                }
            }
        }
    }
}
