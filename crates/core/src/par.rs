//! The engine-wide partition-parallel executor.
//!
//! Phases 1, 2, 4, and 5 are embarrassingly parallel across
//! partitions (or partition-pair buckets). [`run_indexed`] is the one
//! primitive they all share: execute `tasks` independent jobs on up to
//! `threads` scoped workers pulling indices from a work-stealing
//! counter, and return the results **in index order** regardless of
//! completion order. Job `i` always performs exactly the same work, so
//! everything a job computes — and everything it writes to the storage
//! stream it alone owns — is identical at every thread count; callers
//! that must serialize commits can also write the returned values in
//! index order themselves. This is the mechanism behind the engine's
//! determinism guarantee (see the crate docs).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::channel;

use crate::EngineError;

/// Runs `f(0..tasks)` across at most `threads` workers, returning the
/// results in index order.
///
/// With `threads <= 1` (or fewer than two tasks) the jobs run inline
/// on the caller's thread — the parallel and sequential paths execute
/// the *same* per-index closure, which is what makes their outputs
/// bit-for-bit comparable. The first error wins and aborts the
/// remaining queue (in-flight jobs still finish; an erroring iteration
/// is discarded wholesale by the engine, so partial side effects are
/// moot).
///
/// # Errors
///
/// Propagates the first `Err` any job returns, by index order for the
/// inline path and by completion order for the pooled path.
pub(crate) fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Result<Vec<T>, EngineError>
where
    T: Send,
    F: Fn(usize) -> Result<T, EngineError> + Sync,
{
    let workers = threads.max(1).min(tasks);
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = channel::unbounded::<(usize, Result<T, EngineError>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, abort, f) = (&next, &abort, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks || abort.load(Ordering::Relaxed) {
                    break;
                }
                let result = f(i);
                if result.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        let mut first_err: Option<EngineError> = None;
        while let Ok((i, result)) = rx.recv() {
            match result {
                Ok(value) => slots[i] = Some(value),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every index either completed or errored"))
            .collect())
    })
}

/// Like [`run_indexed`], but each task *consumes* its element of
/// `items`: `f(i, items[i])` runs once per index, with ownership moved
/// to whichever worker picks the index up. This is the shape phase
/// work usually has — a per-partition payload built up front, then
/// sorted/encoded on a worker — and it centralizes the cell-and-take
/// machinery that hand-off otherwise requires at every call site.
///
/// # Errors
///
/// Same as [`run_indexed`].
pub(crate) fn run_indexed_owned<T, U, F>(
    items: Vec<T>,
    threads: usize,
    f: F,
) -> Result<Vec<U>, EngineError>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> Result<U, EngineError> + Sync,
{
    let cells: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    run_indexed(cells.len(), threads, |i| {
        let item = cells[i]
            .lock()
            .expect("task cell poisoned")
            .take()
            .expect("each task consumes its item exactly once");
        f(i, item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 9] {
            let got = run_indexed(20, threads, |i| Ok(i * i)).unwrap();
            let want: Vec<usize> = (0..20).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let got: Vec<u32> = run_indexed(0, 4, |_| Ok(0)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn an_error_aborts_the_run() {
        for threads in [1, 4] {
            let err = run_indexed(50, threads, |i| {
                if i == 7 {
                    Err(EngineError::input("job 7 failed"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert!(
                err.to_string().contains("job 7 failed"),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn owned_items_move_to_their_task() {
        for threads in [1, 4] {
            let items: Vec<String> = (0..12).map(|i| format!("item{i}")).collect();
            let got = run_indexed_owned(items, threads, |i, s| Ok(format!("{i}:{s}"))).unwrap();
            let want: Vec<String> = (0..12).map(|i| format!("{i}:item{i}")).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        run_indexed(100, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
