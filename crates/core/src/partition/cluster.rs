//! Locality-aware partitioner: pack the pre-pass clusters into `m`
//! balanced partitions.

use std::sync::Arc;

use knn_cluster::ClusterAssignment;
use knn_graph::DiGraph;

use crate::partition::{Partitioner, Partitioning};
use crate::EngineError;

/// Packs the users of a [`ClusterAssignment`] into `m` balanced
/// partitions, keeping each cluster's users together wherever the
/// balance cap `⌈n/m⌉` allows.
///
/// Unlike the graph partitioners, this one ignores the interaction
/// graph entirely: the cluster labels already encode profile locality,
/// and packing by label is what shrinks cross-partition tuple volume.
/// The algorithm is pure and seedless:
///
/// 1. split every cluster (members ascending) into chunks of at most
///    `⌈n/m⌉` users;
/// 2. place chunks largest-first (ties → lower cluster, then lower
///    chunk index) into the partition with the most free space (ties →
///    lowest partition index) — classic LPT packing;
/// 3. while any partition is empty and `m ≤ n`, move one user out of a
///    largest partition — the cluster splitter can therefore never
///    produce an empty partition silently.
///
/// Deterministic by construction: no RNG, no thread-dependent state.
pub struct ClusterPartitioner {
    clusters: Option<Arc<ClusterAssignment>>,
}

impl ClusterPartitioner {
    /// Builds a partitioner over a concrete cluster assignment (the
    /// form the engine constructs internally).
    pub fn new(clusters: Arc<ClusterAssignment>) -> Self {
        ClusterPartitioner {
            clusters: Some(clusters),
        }
    }

    /// The assignment-less form produced by
    /// [`PartitionerKind::instantiate`](crate::partition::PartitionerKind::instantiate):
    /// it cannot partition (the engine must supply the cluster
    /// assignment) and says so loudly when asked.
    pub fn unbound() -> Self {
        ClusterPartitioner { clusters: None }
    }
}

impl Partitioner for ClusterPartitioner {
    fn partition(&self, graph: &DiGraph, m: usize) -> Result<Partitioning, EngineError> {
        let Some(clusters) = &self.clusters else {
            return Err(EngineError::config(
                "ClusterPartitioner has no cluster assignment: PartitionerKind::Cluster is \
                 engine-managed (the engine runs the knn-cluster pre-pass and binds its \
                 assignment); construct ClusterPartitioner::new(assignment) to use it directly",
            ));
        };
        if clusters.num_users() != graph.num_vertices() {
            return Err(EngineError::config(format!(
                "cluster assignment covers {} users but the graph has {} vertices",
                clusters.num_users(),
                graph.num_vertices()
            )));
        }
        pack_clusters(clusters, m)
    }

    fn name(&self) -> &'static str {
        "cluster"
    }
}

/// The packing core (see [`ClusterPartitioner`] for the algorithm).
pub(crate) fn pack_clusters(
    clusters: &ClusterAssignment,
    m: usize,
) -> Result<Partitioning, EngineError> {
    let n = clusters.num_users();
    if m == 0 || m > n.max(1) {
        return Err(EngineError::config(format!(
            "cluster packing needs 1..={} partitions, got {m}",
            n.max(1)
        )));
    }
    let cap = n.div_ceil(m);

    // 1. Chunk every cluster at the balance cap.
    let members = clusters.members();
    let mut chunks: Vec<(u32, u32, Vec<u32>)> = Vec::new(); // (cluster, chunk idx, users)
    for (c, users) in members.iter().enumerate() {
        for (i, chunk) in users.chunks(cap).enumerate() {
            chunks.push((c as u32, i as u32, chunk.to_vec()));
        }
    }

    // 2. LPT packing: largest chunk first into the partition with the
    // most free space. If a partition fits the chunk whole, the
    // max-free partition is one such; when none does, the chunk splits
    // across the freest partitions (Σ free = m·cap − placed ≥
    // remaining, so placement always succeeds).
    chunks.sort_by(|a, b| {
        b.2.len()
            .cmp(&a.2.len())
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut assignment = vec![0u32; n];
    let mut sizes = vec![0usize; m];
    for (_, _, users) in &chunks {
        let mut rest: &[u32] = users;
        while !rest.is_empty() {
            let mut target = 0usize;
            let mut best_free = 0usize;
            for (p, &size) in sizes.iter().enumerate() {
                let free = cap - size;
                if free > best_free {
                    best_free = free;
                    target = p;
                }
            }
            if best_free == 0 {
                return Err(EngineError::config(
                    "cluster packing overflow (internal invariant violated)",
                ));
            }
            let take = rest.len().min(best_free);
            for &u in &rest[..take] {
                assignment[u as usize] = target as u32;
            }
            sizes[target] += take;
            rest = &rest[take..];
        }
    }

    // 3. No silent empties: m ≤ n guarantees a donor exists.
    while let Some(empty) = sizes.iter().position(|&s| s == 0) {
        let donor = (0..m)
            .max_by_key(|&p| (sizes[p], std::cmp::Reverse(p)))
            .expect("m ≥ 1");
        if sizes[donor] <= 1 {
            return Err(EngineError::config(
                "cluster packing cannot fill every partition (m > n?)",
            ));
        }
        // Move the donor's highest user id (deterministic pick).
        let moved = assignment
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &p)| p as usize == donor)
            .map(|(u, _)| u)
            .expect("donor partition is non-empty");
        assignment[moved] = empty as u32;
        sizes[donor] -= 1;
        sizes[empty] += 1;
    }

    Partitioning::from_assignment(assignment, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::assert_balanced;
    use knn_cluster::ClusterAssignment;

    fn clusters(labels: Vec<u32>, k: u32) -> Arc<ClusterAssignment> {
        Arc::new(ClusterAssignment::new(labels, k).unwrap())
    }

    fn graph(n: usize) -> DiGraph {
        DiGraph::new(n)
    }

    #[test]
    fn small_clusters_stay_whole() {
        // 4 clusters of 3 users into m=4, cap 3: one cluster per
        // partition, no cluster split.
        let c = clusters((0..12).map(|u| u / 3).collect(), 4);
        let p = ClusterPartitioner::new(Arc::clone(&c))
            .partition(&graph(12), 4)
            .unwrap();
        assert_balanced(&p);
        for users in (0..4u32).map(|i| p.users_of(i)) {
            let labels: Vec<u32> = users.iter().map(|u| c.label_of(u.raw())).collect();
            assert!(labels.windows(2).all(|w| w[0] == w[1]), "cluster split");
        }
    }

    #[test]
    fn oversized_cluster_splits_deterministically() {
        // One cluster of 10 into m=3, cap 4: must split into 4+4+2.
        let c = clusters(vec![0; 10], 1);
        let part = ClusterPartitioner::new(Arc::clone(&c));
        let a = part.partition(&graph(10), 3).unwrap();
        let b = part.partition(&graph(10), 3).unwrap();
        assert_eq!(a, b);
        assert_balanced(&a);
        assert!((0..3u32).all(|i| !a.users_of(i).is_empty()));
    }

    #[test]
    fn no_partition_left_empty() {
        // 2 clusters of 4 into m=4, cap 2 → 4 chunks, all partitions
        // busy. And a skewed case: 1 cluster of 7 + 1 of 1, m=4.
        for (labels, k, m) in [
            ((0..8).map(|u| u / 4).collect::<Vec<u32>>(), 2, 4),
            (vec![0, 0, 0, 0, 0, 0, 0, 1], 2, 4),
            ((0..5).map(|_| 0).collect(), 1, 5),
        ] {
            let n = labels.len();
            let p = ClusterPartitioner::new(clusters(labels, k))
                .partition(&graph(n), m)
                .unwrap();
            assert_balanced(&p);
            for i in 0..m as u32 {
                assert!(!p.users_of(i).is_empty(), "partition {i} empty");
            }
        }
    }

    #[test]
    fn unbound_partitioner_refuses_loudly() {
        let err = ClusterPartitioner::unbound()
            .partition(&graph(4), 2)
            .unwrap_err();
        assert!(err.to_string().contains("no cluster assignment"), "{err}");
    }

    #[test]
    fn mismatched_user_counts_rejected() {
        let c = clusters(vec![0, 0, 0], 1);
        assert!(ClusterPartitioner::new(c).partition(&graph(4), 2).is_err());
    }

    #[test]
    fn invalid_m_rejected() {
        let c = clusters(vec![0, 1], 2);
        let part = ClusterPartitioner::new(c);
        assert!(part.partition(&graph(2), 0).is_err());
        assert!(part.partition(&graph(2), 3).is_err(), "m > n");
        assert!(part.partition(&graph(2), 2).is_ok());
    }
}
