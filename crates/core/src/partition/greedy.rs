//! Streaming greedy partitioner (LDG-style).

use knn_graph::DiGraph;

use super::{Partitioner, Partitioning};
use crate::EngineError;

/// Streaming greedy placement: users are processed hubs-first
/// (descending total degree) and each is placed in the partition — with
/// remaining capacity — already holding the most of its neighbors.
/// Placing a user next to its neighbors is exactly what shrinks the
/// paper's objective: the user stops being a "unique external vertex"
/// for those partitions.
///
/// Deterministic: ties in degree order are broken by a seeded hash,
/// ties in placement by fullest-then-lowest-index partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyPartitioner {
    seed: u64,
}

impl GreedyPartitioner {
    /// Creates a greedy partitioner; `seed` only jitters the
    /// processing order among equal-degree users.
    pub fn new(seed: u64) -> Self {
        GreedyPartitioner { seed }
    }
}

/// A cheap deterministic mix for seeded tie-breaking.
fn mix(seed: u64, x: u64) -> u64 {
    let mut h = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h
}

impl Partitioner for GreedyPartitioner {
    fn partition(&self, graph: &DiGraph, m: usize) -> Result<Partitioning, EngineError> {
        let n = graph.num_vertices();
        if m == 0 || m > n.max(1) {
            return Err(EngineError::config(format!("m={m} invalid for n={n}")));
        }
        let cap = n.div_ceil(m);

        // Combined (in + out) neighbor lists drive placement affinity.
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (s, d) in graph.iter_edges() {
            neighbors[s.index()].push(d.raw());
            neighbors[d.index()].push(s.raw());
        }

        // Hubs first: the big neighbor lists constrain placement most.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&u| {
            (
                std::cmp::Reverse(neighbors[u as usize].len()),
                mix(self.seed, u as u64),
            )
        });

        const UNASSIGNED: u32 = u32::MAX;
        let mut assignment = vec![UNASSIGNED; n];
        let mut sizes = vec![0usize; m];
        let mut affinity = vec![0u32; m]; // scratch, reset per user

        for &u in &order {
            for &v in &neighbors[u as usize] {
                let p = assignment[v as usize];
                if p != UNASSIGNED {
                    affinity[p as usize] += 1;
                }
            }
            // Best = max affinity among partitions with space; ties →
            // smallest current size, then lowest index.
            let mut best: Option<(u32, usize, usize)> = None; // (aff, size, idx)
            for p in 0..m {
                if sizes[p] >= cap {
                    continue;
                }
                let key = (affinity[p], sizes[p], p);
                let better = match best {
                    None => true,
                    Some((ba, bs, bi)) => {
                        key.0 > ba || (key.0 == ba && (key.1 < bs || (key.1 == bs && p < bi)))
                    }
                };
                if better {
                    best = Some(key);
                }
            }
            let (_, _, chosen) = best.expect("capacity sums to >= n, a slot always exists");
            assignment[u as usize] = chosen as u32;
            sizes[chosen] += 1;
            // Reset scratch.
            for &v in &neighbors[u as usize] {
                let p = assignment[v as usize];
                if p != UNASSIGNED {
                    affinity[p as usize] = 0;
                }
            }
            affinity[chosen] = 0;
        }

        Partitioning::from_assignment(assignment, m)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::objective::replication_cost;
    use crate::partition::{assert_balanced, RandomPartitioner};
    use knn_graph::generators::{chung_lu, ChungLuConfig};

    #[test]
    fn balanced_and_deterministic() {
        let edges = chung_lu(ChungLuConfig::new(200, 600, 3));
        let g = DiGraph::from_undirected_edges(200, edges).unwrap();
        let a = GreedyPartitioner::new(7).partition(&g, 8).unwrap();
        let b = GreedyPartitioner::new(7).partition(&g, 8).unwrap();
        assert_balanced(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn keeps_cliques_together() {
        // Two directed 4-cliques, no inter-edges: the optimal 2-way
        // partitioning separates them.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for a in 0..4 {
                for b in 0..4 {
                    if a != b {
                        edges.push((base + a, base + b));
                    }
                }
            }
        }
        let g = DiGraph::from_edges(8, edges).unwrap();
        let p = GreedyPartitioner::new(0).partition(&g, 2).unwrap();
        for clique in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
            let parts: std::collections::HashSet<u32> = clique
                .iter()
                .map(|&u| p.partition_of(knn_graph::UserId::new(u)))
                .collect();
            assert_eq!(parts.len(), 1, "clique split across partitions");
        }
    }

    #[test]
    fn beats_random_on_clustered_graphs() {
        let edges = chung_lu(ChungLuConfig::new(300, 1200, 9));
        let g = DiGraph::from_undirected_edges(300, edges).unwrap();
        let greedy = GreedyPartitioner::new(1).partition(&g, 6).unwrap();
        let random = RandomPartitioner::new(1).partition(&g, 6).unwrap();
        let (cg, cr) = (replication_cost(&g, &greedy), replication_cost(&g, &random));
        assert!(cg < cr, "greedy {cg} should beat random {cr}");
    }

    #[test]
    fn handles_empty_graph() {
        let g = DiGraph::new(10);
        let p = GreedyPartitioner::new(0).partition(&g, 3).unwrap();
        assert_balanced(&p);
    }

    #[test]
    fn rejects_invalid_m() {
        let g = DiGraph::new(3);
        assert!(GreedyPartitioner::new(0).partition(&g, 0).is_err());
        assert!(GreedyPartitioner::new(0).partition(&g, 9).is_err());
    }
}
