//! The paper's partitioning objective.
//!
//! For partition `Ri`, `N_in(i)` is the number of **unique source
//! vertices** of in-edges `(s, v), v ∈ Vi`, and `N_out(i)` the number
//! of **unique destination vertices** of out-edges `(v, d), v ∈ Vi`.
//! The objective is `min Σᵢ (N_in(i) + N_out(i))`.
//!
//! Equivalently (and how we compute it): for every vertex `x`,
//! `Σᵢ N_in(i)` counts the number of distinct partitions that contain
//! at least one out-neighbor of `x`, and `Σᵢ N_out(i)` the partitions
//! containing an in-neighbor — the *replication factor* of `x` in each
//! direction. Lower replication means fewer partitions need `x`'s data,
//! hence less phase-4 I/O.

use knn_graph::DiGraph;

use super::Partitioning;

/// Computes `Σᵢ (N_in(i) + N_out(i))` for a partitioning of `graph`.
///
/// # Panics
///
/// Panics if the partitioning covers a different number of users than
/// the graph has vertices.
pub fn replication_cost(graph: &DiGraph, partitioning: &Partitioning) -> u64 {
    assert_eq!(
        graph.num_vertices(),
        partitioning.num_users(),
        "partitioning and graph disagree on n"
    );
    let m = partitioning.num_partitions();
    let n = graph.num_vertices();
    // For each vertex: bitset of partitions containing its
    // out-neighbors (contributes to those partitions' N_in) and its
    // in-neighbors (contributes to N_out).
    let words = m.div_ceil(64);
    let mut out_parts = vec![0u64; n * words];
    let mut in_parts = vec![0u64; n * words];
    for (s, d) in graph.iter_edges() {
        let ps = partitioning.partition_of(s) as usize;
        let pd = partitioning.partition_of(d) as usize;
        // Edge (s, d): d's partition holds an out-neighbor of s —
        // s is a unique in-edge source for partition of d... no:
        // the in-edge (s, d) belongs to partition of d, with source s.
        out_parts[s.index() * words + pd / 64] |= 1 << (pd % 64);
        // The out-edge (s, d) belongs to partition of s, with dest d.
        in_parts[d.index() * words + ps / 64] |= 1 << (ps % 64);
    }
    let popcount = |bits: &[u64]| bits.iter().map(|w| w.count_ones() as u64).sum::<u64>();
    popcount(&out_parts) + popcount(&in_parts)
}

/// Computes the per-partition breakdown `(N_in(i), N_out(i))`.
///
/// Useful for reports; `replication_cost` equals the sum of both
/// columns.
///
/// # Panics
///
/// Panics on vertex-count mismatch, as in [`replication_cost`].
pub fn per_partition_counts(graph: &DiGraph, partitioning: &Partitioning) -> Vec<(u64, u64)> {
    assert_eq!(graph.num_vertices(), partitioning.num_users());
    let m = partitioning.num_partitions();
    let mut in_sources: Vec<std::collections::HashSet<u32>> =
        vec![std::collections::HashSet::new(); m];
    let mut out_dests: Vec<std::collections::HashSet<u32>> =
        vec![std::collections::HashSet::new(); m];
    for (s, d) in graph.iter_edges() {
        let pd = partitioning.partition_of(d) as usize;
        let ps = partitioning.partition_of(s) as usize;
        // (s, d) is an in-edge of partition(d) with source s,
        // and an out-edge of partition(s) with destination d.
        in_sources[pd].insert(s.raw());
        out_dests[ps].insert(d.raw());
    }
    (0..m)
        .map(|i| (in_sources[i].len() as u64, out_dests[i].len() as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::DiGraph;

    fn two_partition(assignment: Vec<u32>) -> Partitioning {
        Partitioning::from_assignment(assignment, 2).unwrap()
    }

    #[test]
    fn fast_path_matches_per_partition_breakdown() {
        let g = DiGraph::from_edges(
            6,
            [
                (0, 1),
                (0, 4),
                (1, 2),
                (2, 0),
                (3, 5),
                (4, 3),
                (5, 1),
                (5, 0),
            ],
        )
        .unwrap();
        for assignment in [
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 1, 0, 1, 0, 1],
            vec![1, 1, 0, 0, 1, 0],
        ] {
            let p = two_partition(assignment);
            let breakdown = per_partition_counts(&g, &p);
            let total: u64 = breakdown.iter().map(|&(a, b)| a + b).sum();
            assert_eq!(replication_cost(&g, &p), total);
        }
    }

    #[test]
    fn clustered_assignment_beats_scattered() {
        // Two 3-cliques (directed both ways) joined by one edge.
        let mut edges = Vec::new();
        for &(a, b) in &[(0, 1), (1, 2), (0, 2)] {
            edges.push((a, b));
            edges.push((b, a));
        }
        for &(a, b) in &[(3, 4), (4, 5), (3, 5)] {
            edges.push((a, b));
            edges.push((b, a));
        }
        edges.push((2, 3));
        let g = DiGraph::from_edges(6, edges).unwrap();
        let clustered = two_partition(vec![0, 0, 0, 1, 1, 1]);
        let scattered = two_partition(vec![0, 1, 0, 1, 0, 1]);
        assert!(
            replication_cost(&g, &clustered) < replication_cost(&g, &scattered),
            "clustered {} vs scattered {}",
            replication_cost(&g, &clustered),
            replication_cost(&g, &scattered)
        );
    }

    #[test]
    fn empty_graph_costs_zero() {
        let g = DiGraph::new(4);
        let p = two_partition(vec![0, 0, 1, 1]);
        assert_eq!(replication_cost(&g, &p), 0);
    }

    #[test]
    fn single_edge_costs_two() {
        // One edge (0,1): source 0 is one unique in-source for
        // partition(1); dest 1 is one unique out-dest for partition(0).
        let g = DiGraph::from_edges(2, [(0, 1)]).unwrap();
        let p = Partitioning::from_assignment(vec![0, 1], 2).unwrap();
        assert_eq!(replication_cost(&g, &p), 2);
        let same = Partitioning::from_assignment(vec![0, 0], 1).unwrap();
        assert_eq!(replication_cost(&g, &same), 2);
    }

    #[test]
    fn many_partition_bitset_path_works() {
        // m > 64 exercises the multi-word bitset.
        let n = 130;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n, edges).unwrap();
        let assignment: Vec<u32> = (0..n as u32).collect();
        let p = Partitioning::from_assignment(assignment, n).unwrap();
        // Chain: each vertex except ends has one in + one out partner,
        // each in its own partition: cost = 2*(n-1).
        assert_eq!(replication_cost(&g, &p), 2 * (n as u64 - 1));
    }
}
