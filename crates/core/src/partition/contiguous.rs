//! Contiguous id-range partitioner.

use knn_graph::DiGraph;

use super::{Partitioner, Partitioning};
use crate::EngineError;

/// Assigns users to partitions by contiguous id ranges: users
/// `0..⌈n/m⌉` to partition 0, and so on. Ignores graph structure — the
/// paper's baseline layout and the cheapest possible phase 1.
///
/// ```
/// use knn_core::partition::{ContiguousPartitioner, Partitioner};
/// use knn_graph::{DiGraph, UserId};
///
/// let g = DiGraph::new(6);
/// let p = ContiguousPartitioner.partition(&g, 3).unwrap();
/// assert_eq!(p.partition_of(UserId::new(0)), 0);
/// assert_eq!(p.partition_of(UserId::new(5)), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContiguousPartitioner;

impl Partitioner for ContiguousPartitioner {
    fn partition(&self, graph: &DiGraph, m: usize) -> Result<Partitioning, EngineError> {
        let n = graph.num_vertices();
        if m == 0 || m > n.max(1) {
            return Err(EngineError::config(format!("m={m} invalid for n={n}")));
        }
        let cap = n.div_ceil(m);
        let assignment: Vec<u32> = (0..n).map(|u| (u / cap) as u32).collect();
        Partitioning::from_assignment(assignment, m)
    }

    fn name(&self) -> &'static str {
        "contiguous"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::assert_balanced;

    #[test]
    fn ranges_are_contiguous_and_balanced() {
        let g = DiGraph::new(10);
        let p = ContiguousPartitioner.partition(&g, 3).unwrap();
        assert_balanced(&p);
        // cap = 4: partitions sizes 4, 4, 2.
        assert_eq!(p.users_of(0).len(), 4);
        assert_eq!(p.users_of(1).len(), 4);
        assert_eq!(p.users_of(2).len(), 2);
    }

    #[test]
    fn exact_division() {
        let g = DiGraph::new(9);
        let p = ContiguousPartitioner.partition(&g, 3).unwrap();
        for i in 0..3 {
            assert_eq!(p.users_of(i).len(), 3);
        }
    }

    #[test]
    fn single_partition() {
        let g = DiGraph::new(5);
        let p = ContiguousPartitioner.partition(&g, 1).unwrap();
        assert_eq!(p.users_of(0).len(), 5);
    }

    #[test]
    fn rejects_invalid_m() {
        let g = DiGraph::new(3);
        assert!(ContiguousPartitioner.partition(&g, 0).is_err());
        assert!(ContiguousPartitioner.partition(&g, 4).is_err());
    }
}
