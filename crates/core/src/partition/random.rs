//! Seeded random balanced partitioner.

use knn_graph::DiGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{Partitioner, Partitioning};
use crate::EngineError;

/// Assigns a random permutation of users to contiguous partition
/// chunks: perfectly balanced, structure-oblivious, deterministic in
/// the seed. The worst reasonable baseline for the replication
/// objective — useful as the ablation floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomPartitioner {
    seed: u64,
}

impl RandomPartitioner {
    /// Creates a random partitioner with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPartitioner { seed }
    }
}

/// Stream salt: decorrelates this component's RNG from other users of
/// the same seed (e.g. a dataset generator shuffling an identical-
/// length id vector would otherwise produce the *same* permutation and
/// silently align the partitioning with the graph structure).
const SALT: u64 = 0x7061_7274_5f72_6e64; // "part_rnd"

impl Partitioner for RandomPartitioner {
    fn partition(&self, graph: &DiGraph, m: usize) -> Result<Partitioning, EngineError> {
        let n = graph.num_vertices();
        if m == 0 || m > n.max(1) {
            return Err(EngineError::config(format!("m={m} invalid for n={n}")));
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ SALT);
        order.shuffle(&mut rng);
        let cap = n.div_ceil(m);
        let mut assignment = vec![0u32; n];
        for (pos, &u) in order.iter().enumerate() {
            assignment[u as usize] = (pos / cap) as u32;
        }
        Partitioning::from_assignment(assignment, m)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::assert_balanced;

    #[test]
    fn balanced_and_deterministic() {
        let g = DiGraph::new(20);
        let a = RandomPartitioner::new(5).partition(&g, 4).unwrap();
        let b = RandomPartitioner::new(5).partition(&g, 4).unwrap();
        let c = RandomPartitioner::new(6).partition(&g, 4).unwrap();
        assert_balanced(&a);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn differs_from_contiguous_with_high_probability() {
        let g = DiGraph::new(100);
        let r = RandomPartitioner::new(1).partition(&g, 10).unwrap();
        let contiguous: Vec<u32> = (0..100).map(|u| (u / 10) as u32).collect();
        assert_ne!(r.assignment(), contiguous.as_slice());
    }

    #[test]
    fn rejects_invalid_m() {
        let g = DiGraph::new(3);
        assert!(RandomPartitioner::new(0).partition(&g, 0).is_err());
    }
}
