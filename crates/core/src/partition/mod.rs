//! Phase 1 partitioners: split the `n` users into `m` balanced
//! partitions minimizing the paper's objective `Σᵢ (N_in(i) + N_out(i))`
//! — the count of unique in-edge sources plus unique out-edge
//! destinations per partition, i.e. the vertex-replication cost that
//! phase 4 will pay in partition I/O.

mod cluster;
mod contiguous;
mod greedy;
pub mod objective;
mod random;
mod refine;

pub use cluster::ClusterPartitioner;
pub use contiguous::ContiguousPartitioner;
pub use greedy::GreedyPartitioner;
pub use random::RandomPartitioner;
pub use refine::RefinePartitioner;

use knn_graph::{DiGraph, UserId};

use crate::EngineError;

/// An assignment of every user to one of `m` partitions, balanced to
/// `⌈n/m⌉` users per partition.
///
/// ```
/// use knn_core::partition::Partitioning;
/// use knn_graph::UserId;
///
/// let p = Partitioning::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
/// assert_eq!(p.partition_of(UserId::new(2)), 1);
/// assert_eq!(p.users_of(0), &[UserId::new(0), UserId::new(1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<u32>,
    num_partitions: usize,
    users: Vec<Vec<UserId>>,
}

impl Partitioning {
    /// Builds a partitioning from an explicit user→partition map.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if a partition id is `>= m` or
    /// any partition exceeds the balance bound `⌈n/m⌉`.
    pub fn from_assignment(assignment: Vec<u32>, m: usize) -> Result<Self, EngineError> {
        if m == 0 {
            return Err(EngineError::config("m must be positive"));
        }
        let n = assignment.len();
        let cap = n.div_ceil(m);
        let mut users: Vec<Vec<UserId>> = vec![Vec::new(); m];
        for (u, &p) in assignment.iter().enumerate() {
            if p as usize >= m {
                return Err(EngineError::config(format!(
                    "user {u} assigned to partition {p} but m={m}"
                )));
            }
            users[p as usize].push(UserId::new(u as u32));
            if users[p as usize].len() > cap {
                return Err(EngineError::config(format!(
                    "partition {p} exceeds balance bound {cap} users"
                )));
            }
        }
        Ok(Partitioning {
            assignment,
            num_partitions: m,
            users,
        })
    }

    /// Number of partitions `m`.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of users `n`.
    pub fn num_users(&self) -> usize {
        self.assignment.len()
    }

    /// The partition containing `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn partition_of(&self, user: UserId) -> u32 {
        self.assignment[user.index()]
    }

    /// The users of partition `p`, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `p >= m`.
    pub fn users_of(&self, p: u32) -> &[UserId] {
        &self.users[p as usize]
    }

    /// The raw assignment vector (index = user id).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The maximum allowed partition size `⌈n/m⌉`.
    pub fn capacity(&self) -> usize {
        self.num_users().div_ceil(self.num_partitions)
    }
}

/// A phase-1 partitioning algorithm.
///
/// Implementations must produce balanced partitions (≤ `⌈n/m⌉` users
/// each) deterministically for a given graph and seed.
pub trait Partitioner {
    /// Partitions the vertices of `graph` into `m` balanced partitions.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for invalid `m`.
    fn partition(&self, graph: &DiGraph, m: usize) -> Result<Partitioning, EngineError>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Selector for the built-in partitioners (used by [`crate::EngineConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum PartitionerKind {
    /// Contiguous id ranges (no structure awareness; fastest).
    Contiguous,
    /// Seeded random balanced assignment.
    Random,
    /// Streaming greedy placement minimizing new vertex replication
    /// (default).
    #[default]
    Greedy,
    /// Greedy followed by swap-refinement passes.
    Refined,
    /// Locality-aware packing of the `knn-cluster` pre-pass clusters
    /// (profile locality, not graph structure). Engine-managed: the
    /// engine runs the clustering pre-pass and binds its assignment;
    /// [`instantiate`](PartitionerKind::instantiate) alone yields an
    /// unbound partitioner that refuses to run.
    Cluster,
}

impl PartitionerKind {
    /// All built-in kinds, for sweeps.
    pub const ALL: [PartitionerKind; 5] = [
        PartitionerKind::Contiguous,
        PartitionerKind::Random,
        PartitionerKind::Greedy,
        PartitionerKind::Refined,
        PartitionerKind::Cluster,
    ];

    /// Instantiates the partitioner with the given seed.
    ///
    /// [`Cluster`](PartitionerKind::Cluster) yields an **unbound**
    /// [`ClusterPartitioner`] whose `partition` fails with a config
    /// error: it needs the engine-computed cluster assignment, which a
    /// bare kind + seed cannot supply (the engine binds it via
    /// [`ClusterPartitioner::new`]).
    pub fn instantiate(self, seed: u64) -> Box<dyn Partitioner> {
        match self {
            PartitionerKind::Contiguous => Box::new(ContiguousPartitioner),
            PartitionerKind::Random => Box::new(RandomPartitioner::new(seed)),
            PartitionerKind::Greedy => Box::new(GreedyPartitioner::new(seed)),
            PartitionerKind::Refined => Box::new(RefinePartitioner::new(
                GreedyPartitioner::new(seed),
                2,
                seed,
            )),
            PartitionerKind::Cluster => Box::new(ClusterPartitioner::unbound()),
        }
    }
}

impl std::fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PartitionerKind::Contiguous => "contiguous",
            PartitionerKind::Random => "random",
            PartitionerKind::Greedy => "greedy",
            PartitionerKind::Refined => "refined",
            PartitionerKind::Cluster => "cluster",
        };
        f.write_str(s)
    }
}

/// Shared helper asserting the balance contract in tests.
#[cfg(test)]
pub(crate) fn assert_balanced(p: &Partitioning) {
    let cap = p.capacity();
    for i in 0..p.num_partitions() as u32 {
        assert!(
            p.users_of(i).len() <= cap,
            "partition {i} has {} users, cap {cap}",
            p.users_of(i).len()
        );
    }
    // Every user appears exactly once.
    let total: usize = (0..p.num_partitions() as u32)
        .map(|i| p.users_of(i).len())
        .sum();
    assert_eq!(total, p.num_users());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignment_validates_range_and_balance() {
        assert!(Partitioning::from_assignment(vec![0, 1, 2], 2).is_err());
        assert!(
            Partitioning::from_assignment(vec![0, 0, 0], 2).is_err(),
            "cap is 2"
        );
        let p = Partitioning::from_assignment(vec![0, 1, 0, 1], 2).unwrap();
        assert_balanced(&p);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn users_of_is_sorted() {
        let p = Partitioning::from_assignment(vec![1, 0, 1, 0], 2).unwrap();
        assert_eq!(p.users_of(0), &[UserId::new(1), UserId::new(3)]);
        assert_eq!(p.users_of(1), &[UserId::new(0), UserId::new(2)]);
    }

    #[test]
    fn kind_instantiates_all() {
        let g = DiGraph::from_edges(6, [(0, 1), (2, 3), (4, 5)]).unwrap();
        for kind in PartitionerKind::ALL {
            assert!(!kind.to_string().is_empty());
            if kind == PartitionerKind::Cluster {
                // Cluster is engine-managed: the bare instantiation
                // must refuse rather than partition without labels.
                assert!(kind.instantiate(1).partition(&g, 3).is_err());
                continue;
            }
            let p = kind.instantiate(1).partition(&g, 3).unwrap();
            assert_balanced(&p);
        }
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(Partitioning::from_assignment(vec![], 0).is_err());
    }
}
