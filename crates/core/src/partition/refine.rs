//! Swap-refinement on top of any base partitioner.

use knn_graph::DiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use super::{Partitioner, Partitioning};
use crate::EngineError;

/// Improves a base partitioning by hill-climbing on user swaps: each
/// pass samples random cross-partition user pairs and applies a swap
/// whenever it lowers the replication objective. Swapping (rather than
/// moving) preserves exact balance by construction.
#[derive(Debug, Clone)]
pub struct RefinePartitioner<P> {
    inner: P,
    passes: usize,
    seed: u64,
}

impl<P: Partitioner> RefinePartitioner<P> {
    /// Wraps `inner` with `passes` refinement passes (each pass tries
    /// `2n` sampled swaps).
    pub fn new(inner: P, passes: usize, seed: u64) -> Self {
        RefinePartitioner {
            inner,
            passes,
            seed,
        }
    }
}

impl<P: Partitioner> Partitioner for RefinePartitioner<P> {
    fn partition(&self, graph: &DiGraph, m: usize) -> Result<Partitioning, EngineError> {
        let base = self.inner.partition(graph, m)?;
        if m < 2 {
            return Ok(base);
        }
        let n = graph.num_vertices();
        let mut assignment = base.assignment().to_vec();

        // Directional adjacency for localized objective deltas.
        let mut out_nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (s, d) in graph.iter_edges() {
            out_nbrs[s.index()].push(d.raw());
            in_nbrs[d.index()].push(s.raw());
        }

        // Local objective share of vertex v: the number of distinct
        // partitions among its out-neighbors plus among its in-neighbors.
        let local = |assignment: &[u32], v: u32| -> u64 {
            let mut parts: HashSet<u32> = HashSet::new();
            let mut total = 0u64;
            for list in [&out_nbrs[v as usize], &in_nbrs[v as usize]] {
                parts.clear();
                for &x in list.iter() {
                    parts.insert(assignment[x as usize]);
                }
                total += parts.len() as u64;
            }
            total
        };

        // Salted: keep this stream independent of same-seed components.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7061_7274_5f72_6566); // "part_ref"
        for _ in 0..self.passes {
            let mut improved = false;
            for _ in 0..2 * n {
                let u = rng.random_range(0..n as u32);
                let w = rng.random_range(0..n as u32);
                let (pu, pw) = (assignment[u as usize], assignment[w as usize]);
                if u == w || pu == pw {
                    continue;
                }
                // Vertices whose local share a swap can change: the
                // swapped pair and everyone adjacent to either.
                let mut affected: HashSet<u32> = HashSet::from([u, w]);
                for x in [u, w] {
                    affected.extend(out_nbrs[x as usize].iter().copied());
                    affected.extend(in_nbrs[x as usize].iter().copied());
                }
                let before: u64 = affected.iter().map(|&v| local(&assignment, v)).sum();
                assignment[u as usize] = pw;
                assignment[w as usize] = pu;
                let after: u64 = affected.iter().map(|&v| local(&assignment, v)).sum();
                if after >= before {
                    // Revert: not an improvement.
                    assignment[u as usize] = pu;
                    assignment[w as usize] = pw;
                } else {
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        Partitioning::from_assignment(assignment, m)
    }

    fn name(&self) -> &'static str {
        "refined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::objective::replication_cost;
    use crate::partition::{assert_balanced, RandomPartitioner};
    use knn_graph::generators::{chung_lu, ChungLuConfig};

    fn test_graph(seed: u64) -> DiGraph {
        let edges = chung_lu(ChungLuConfig::new(150, 500, seed));
        DiGraph::from_undirected_edges(150, edges).unwrap()
    }

    #[test]
    fn refinement_never_worsens_the_objective() {
        let g = test_graph(1);
        let base = RandomPartitioner::new(3).partition(&g, 5).unwrap();
        let refined = RefinePartitioner::new(RandomPartitioner::new(3), 2, 7)
            .partition(&g, 5)
            .unwrap();
        assert!(
            replication_cost(&g, &refined) <= replication_cost(&g, &base),
            "refined {} vs base {}",
            replication_cost(&g, &refined),
            replication_cost(&g, &base)
        );
        assert_balanced(&refined);
    }

    #[test]
    fn refinement_improves_random_substantially() {
        let g = test_graph(2);
        let base = RandomPartitioner::new(0).partition(&g, 5).unwrap();
        let refined = RefinePartitioner::new(RandomPartitioner::new(0), 3, 1)
            .partition(&g, 5)
            .unwrap();
        assert!(replication_cost(&g, &refined) < replication_cost(&g, &base));
    }

    #[test]
    fn partition_sizes_preserved_exactly() {
        let g = test_graph(3);
        let base = RandomPartitioner::new(1).partition(&g, 7).unwrap();
        let refined = RefinePartitioner::new(RandomPartitioner::new(1), 2, 2)
            .partition(&g, 7)
            .unwrap();
        for p in 0..7u32 {
            assert_eq!(base.users_of(p).len(), refined.users_of(p).len());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = test_graph(4);
        let a = RefinePartitioner::new(RandomPartitioner::new(5), 2, 9)
            .partition(&g, 4)
            .unwrap();
        let b = RefinePartitioner::new(RandomPartitioner::new(5), 2, 9)
            .partition(&g, 4)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_partition_is_passthrough() {
        let g = test_graph(5);
        let p = RefinePartitioner::new(RandomPartitioner::new(0), 2, 0)
            .partition(&g, 1)
            .unwrap();
        assert_eq!(p.users_of(0).len(), 150);
    }
}
